//! Compare all design points and idealizations on one workload.
//!
//! The quick way to see the Section IV analysis from the command line:
//!
//! ```text
//! cargo run -p asr-accel --release --example design_points [states] [frames] [beam]
//! ```

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::synth::{SynthConfig, SynthWfst};

fn main() {
    let arg = |i: usize| {
        std::env::args()
            .nth(i)
            .map(|s| s.parse().expect("numeric argument"))
    };
    let states: usize = arg(1).unwrap_or(200_000);
    let frames: usize = arg(2).map(|f: usize| f).unwrap_or(100);
    let beam: f32 = std::env::args()
        .nth(3)
        .map(|s| s.parse().expect("numeric beam"))
        .unwrap_or(12.0);

    let wfst = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(6))
        .expect("synthetic WFST");
    let scores = AcousticTable::random(frames, wfst.num_phones() as usize, (0.5, 4.0), 99);

    let mut configs: Vec<(String, AcceleratorConfig)> = DesignPoint::ALL
        .iter()
        .map(|&d| {
            (
                d.label().to_owned(),
                AcceleratorConfig::for_design(d).with_beam(beam),
            )
        })
        .collect();
    for (label, f) in [
        (
            "perfect-arc",
            &(|c: &mut AcceleratorConfig| c.perfect_arc_cache = true)
                as &dyn Fn(&mut AcceleratorConfig),
        ),
        ("perfect-state", &|c: &mut AcceleratorConfig| {
            c.perfect_state_cache = true
        }),
        ("perfect-token", &|c: &mut AcceleratorConfig| {
            c.perfect_token_cache = true
        }),
    ] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(beam);
        f(&mut cfg);
        configs.push((label.to_owned(), cfg));
    }
    configs.push((
        "perfect-all".to_owned(),
        AcceleratorConfig::for_design(DesignPoint::Base)
            .with_beam(beam)
            .with_perfect_caches(),
    ));
    configs.push((
        "ideal-hash".to_owned(),
        AcceleratorConfig::for_design(DesignPoint::Base)
            .with_beam(beam)
            .with_ideal_hash(),
    ));

    let mut base_cycles = 0u64;
    println!(
        "{:<16} {:>12} {:>9} {:>9} {:>24} {:>28}",
        "config", "cycles", "speedup", "cyc/arc", "miss (arc/state/token)", "traffic MB (s/a/t/o)"
    );
    for (name, cfg) in configs {
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("simulation");
        let s = &r.stats;
        if base_cycles == 0 {
            base_cycles = s.cycles;
        }
        let t = &s.traffic;
        println!(
            "{:<16} {:>12} {:>8.2}x {:>9.2} {:>9.2}/{:.2}/{:.2} {:>13.1}/{:.1}/{:.1}/{:.1}",
            name,
            s.cycles,
            base_cycles as f64 / s.cycles as f64,
            s.cycles_per_arc(),
            s.arc_cache.miss_ratio(),
            s.state_cache.miss_ratio(),
            s.token_cache.miss_ratio(),
            t.states as f64 / 1e6,
            t.arcs as f64 / 1e6,
            t.tokens as f64 / 1e6,
            t.overflow as f64 / 1e6,
        );
    }
}
