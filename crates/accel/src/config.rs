//! Accelerator configuration: Table I of the paper, plus the feature flags
//! distinguishing the evaluated design points (ASIC, ASIC+State, ASIC+Arc,
//! ASIC+State&Arc) and the idealized modes used in the Section IV analysis
//! (perfect caches, ideal hash).

use serde::{Deserialize, Serialize};

/// Geometry of one of the accelerator's on-chip caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line: usize,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero or non-divisible sizes).
    pub fn sets(&self) -> usize {
        assert!(self.line > 0 && self.ways > 0 && self.capacity > 0);
        let lines = self.capacity / self.line;
        assert!(
            lines.is_multiple_of(self.ways),
            "capacity not divisible into ways"
        );
        lines / self.ways
    }
}

/// Conventional hardware prefetchers evaluated (and rejected) by Section
/// IV-A: "we implemented and evaluated different state-of-the-art hardware
/// prefetchers, and our results show that these schemes produce slowdowns
/// and increase energy due to the useless prefetches that they generate."
/// These predict addresses from the miss stream; the paper's decoupled
/// architecture instead *computes* them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HwPrefetcher {
    /// No conventional prefetcher (the paper's configurations).
    #[default]
    None,
    /// Next-line: on a demand miss to line `L`, also fetch `L + 1`.
    NextLine,
    /// Stride: on a miss, fetch `L + (L - previous miss line)`
    /// (reference \[23\] of the paper).
    Stride,
}

/// The design points evaluated in Figures 9-14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPoint {
    /// Base accelerator (Section III).
    Base,
    /// Base + bandwidth-saving state layout (Section IV-B).
    StateOpt,
    /// Base + decoupled arc prefetcher (Section IV-A).
    ArcPrefetch,
    /// Both techniques (the paper's final configuration).
    StateAndArc,
}

impl DesignPoint {
    /// All four design points in paper order.
    pub const ALL: [DesignPoint; 4] = [
        DesignPoint::Base,
        DesignPoint::StateOpt,
        DesignPoint::ArcPrefetch,
        DesignPoint::StateAndArc,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DesignPoint::Base => "ASIC",
            DesignPoint::StateOpt => "ASIC+State",
            DesignPoint::ArcPrefetch => "ASIC+Arc",
            DesignPoint::StateAndArc => "ASIC+State&Arc",
        }
    }

    /// Whether the state-layout optimization is active.
    pub fn state_opt(self) -> bool {
        matches!(self, DesignPoint::StateOpt | DesignPoint::StateAndArc)
    }

    /// Whether the arc prefetcher is active.
    pub fn arc_prefetch(self) -> bool {
        matches!(self, DesignPoint::ArcPrefetch | DesignPoint::StateAndArc)
    }
}

/// Full accelerator configuration. Defaults reproduce Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Clock frequency in Hz (Table I: 600 MHz).
    pub frequency_hz: u64,
    /// State cache geometry (512 KB, 4-way, 64 B lines).
    pub state_cache: CacheConfig,
    /// Arc cache geometry (1 MB, 4-way, 64 B lines).
    pub arc_cache: CacheConfig,
    /// Token cache geometry (512 KB, 2-way, 64 B lines).
    pub token_cache: CacheConfig,
    /// Acoustic Likelihood Buffer capacity in bytes (64 KB, double
    /// buffered).
    pub acoustic_buffer: usize,
    /// Entries per hash table (32K; 768 KB of storage each).
    pub hash_entries: usize,
    /// Maximum in-flight memory requests at the controller (32).
    pub mem_inflight: usize,
    /// Main memory latency in cycles (50 cycles = 83 ns at 600 MHz).
    pub mem_latency: u64,
    /// In-flight states at the State Issuer (8).
    pub state_inflight: usize,
    /// In-flight arcs at the Arc Issuer (8); the prefetcher widens this to
    /// the FIFO depth.
    pub arc_inflight: usize,
    /// In-flight tokens at the Token Issuer (32).
    pub token_inflight: usize,
    /// Entries in the Arc FIFO / Request FIFO / Reorder Buffer (64).
    pub prefetch_fifo: usize,
    /// Maximum *concurrently outstanding* cache-miss fills in the base
    /// (non-prefetching) in-order pipeline. Table I's in-flight counts
    /// describe pipeline occupancy across all stages; in the base design a
    /// miss stalls the stage, so only the requests already past the tag
    /// check can overlap — the paper's Section IV observation that the
    /// ASIC "has to wait for main memory to serve the data". Two
    /// outstanding fills reproduces the published base operating point
    /// (~8.3 cycles/arc, 0.88x of the GPU); the prefetcher replaces this
    /// limit with the 64-entry FIFO.
    pub base_miss_overlap: usize,
    /// Comparator count `N` of the bandwidth-saving State Issuer (16).
    pub state_opt_threshold: usize,
    /// Which design point to simulate.
    pub design: DesignPoint,
    /// Beam width used by the search.
    pub beam: f32,
    /// Idealization: State cache never misses (Section IV analysis).
    pub perfect_state_cache: bool,
    /// Idealization: Arc cache never misses.
    pub perfect_arc_cache: bool,
    /// Idealization: Token cache never misses.
    pub perfect_token_cache: bool,
    /// Idealization: hash accesses always take one cycle.
    pub ideal_hash: bool,
    /// Conventional hardware prefetcher on the Arc cache (the Section
    /// IV-A baseline the paper rejects). Independent of
    /// [`DesignPoint::ArcPrefetch`], which is the paper's decoupled
    /// computed-address architecture.
    pub hw_prefetcher: HwPrefetcher,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            frequency_hz: 600_000_000,
            state_cache: CacheConfig {
                capacity: 512 * 1024,
                ways: 4,
                line: 64,
            },
            arc_cache: CacheConfig {
                capacity: 1024 * 1024,
                ways: 4,
                line: 64,
            },
            token_cache: CacheConfig {
                capacity: 512 * 1024,
                ways: 2,
                line: 64,
            },
            acoustic_buffer: 64 * 1024,
            hash_entries: 32 * 1024,
            mem_inflight: 32,
            mem_latency: 50,
            state_inflight: 8,
            arc_inflight: 8,
            token_inflight: 32,
            prefetch_fifo: 64,
            base_miss_overlap: 2,
            state_opt_threshold: 16,
            design: DesignPoint::Base,
            beam: 8.0,
            perfect_state_cache: false,
            perfect_arc_cache: false,
            perfect_token_cache: false,
            ideal_hash: false,
            hw_prefetcher: HwPrefetcher::None,
        }
    }
}

impl AcceleratorConfig {
    /// Table I configuration for a given design point.
    pub fn for_design(design: DesignPoint) -> Self {
        Self {
            design,
            ..Self::default()
        }
    }

    /// The paper's final configuration (both memory-system techniques).
    pub fn final_design() -> Self {
        Self::for_design(DesignPoint::StateAndArc)
    }

    /// All caches perfect (the 2.11x analysis of Section IV).
    pub fn with_perfect_caches(mut self) -> Self {
        self.perfect_state_cache = true;
        self.perfect_arc_cache = true;
        self.perfect_token_cache = true;
        self
    }

    /// Ideal single-cycle hash (the +2.8% analysis of Section IV).
    pub fn with_ideal_hash(mut self) -> Self {
        self.ideal_hash = true;
        self
    }

    /// Replaces the beam width.
    pub fn with_beam(mut self, beam: f32) -> Self {
        self.beam = beam;
        self
    }

    /// Effective in-order arc window: the prefetch FIFO depth when the
    /// prefetcher is on, the stall-bounded overlap otherwise.
    pub fn arc_window(&self) -> usize {
        if self.design.arc_prefetch() {
            self.prefetch_fifo
        } else {
            self.base_miss_overlap.min(self.arc_inflight).max(1)
        }
    }

    /// Effective in-order state window. Unlike the Arc Issuer, the State
    /// Issuer is naturally decoupled — it walks the hash table's token
    /// list without waiting on downstream stages — so all of Table I's 8
    /// in-flight states can be outstanding fills.
    pub fn state_window(&self) -> usize {
        self.state_inflight.max(1)
    }

    /// Seconds per clock cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.frequency_hz as f64
    }

    /// Bytes of storage in one hash table (24-byte entries: likelihood,
    /// backpointer address, state index, next pointer — 768 KB at 32K
    /// entries, matching Table I).
    pub fn hash_bytes(&self) -> usize {
        self.hash_entries * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.frequency_hz, 600_000_000);
        assert_eq!(c.state_cache.capacity, 512 * 1024);
        assert_eq!(c.arc_cache.capacity, 1024 * 1024);
        assert_eq!(c.token_cache.capacity, 512 * 1024);
        assert_eq!(c.token_cache.ways, 2);
        assert_eq!(c.hash_entries, 32 * 1024);
        assert_eq!(c.mem_inflight, 32);
        assert_eq!(c.mem_latency, 50);
        assert_eq!(c.state_inflight, 8);
        assert_eq!(c.arc_inflight, 8);
        assert_eq!(c.token_inflight, 32);
        assert_eq!(c.prefetch_fifo, 64);
        assert_eq!(c.state_opt_threshold, 16);
        // 83 ns at 600 MHz, as quoted in Section V.
        let ns = c.mem_latency as f64 * c.cycle_seconds() * 1e9;
        assert!((ns - 83.3).abs() < 1.0);
        // 768 KB per hash table.
        assert_eq!(c.hash_bytes(), 768 * 1024);
    }

    #[test]
    fn cache_geometry_is_consistent() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.state_cache.sets(), 2048);
        assert_eq!(c.arc_cache.sets(), 4096);
        assert_eq!(c.token_cache.sets(), 4096);
    }

    #[test]
    fn design_points_toggle_features() {
        assert!(!DesignPoint::Base.state_opt());
        assert!(!DesignPoint::Base.arc_prefetch());
        assert!(DesignPoint::StateOpt.state_opt());
        assert!(DesignPoint::ArcPrefetch.arc_prefetch());
        assert!(DesignPoint::StateAndArc.state_opt());
        assert!(DesignPoint::StateAndArc.arc_prefetch());
        assert_eq!(DesignPoint::ALL.len(), 4);
    }

    #[test]
    fn arc_window_widens_with_prefetch() {
        let base = AcceleratorConfig::for_design(DesignPoint::Base);
        let pf = AcceleratorConfig::for_design(DesignPoint::ArcPrefetch);
        assert_eq!(base.arc_window(), 2, "stall-bounded overlap in the base");
        assert_eq!(pf.arc_window(), 64, "FIFO depth with the prefetcher");
        assert_eq!(base.state_window(), 8, "decoupled State Issuer");
        assert_eq!(pf.state_window(), 8);
    }

    #[test]
    fn idealization_builders_set_flags() {
        let c = AcceleratorConfig::default()
            .with_perfect_caches()
            .with_ideal_hash();
        assert!(c.perfect_state_cache && c.perfect_arc_cache && c.perfect_token_cache);
        assert!(c.ideal_hash);
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(DesignPoint::Base.label(), "ASIC");
        assert_eq!(DesignPoint::StateAndArc.label(), "ASIC+State&Arc");
    }
}
