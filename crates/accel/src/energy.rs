//! Energy, power and area models.
//!
//! The paper estimates power/area with Synopsys Design Compiler (logic) and
//! CACTI (SRAM arrays, DRAM) at 28 nm. Neither tool ships with this
//! reproduction, so this module substitutes an event-based model of the
//! same methodology: per-event energies scaled by structure size (a
//! CACTI-style square-root capacity law for SRAM reads), a per-line DRAM
//! energy, per-FP-op and per-pipeline-slot logic energies, plus leakage
//! proportional to SRAM capacity. The default constants are chosen so the
//! modelled accelerator lands in the paper's published 389-462 mW envelope
//! at its operating point; every figure then reports *relative* energy
//! exactly as the paper does. See DESIGN.md's substitution log.

use crate::config::AcceleratorConfig;
use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// Tunable energy constants (28 nm-ish defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// SRAM read/write energy in nJ for a 1 MB array; scales with
    /// `sqrt(capacity_mb)` (CACTI-like).
    pub sram_nj_at_1mb: f64,
    /// Energy per 64-byte DRAM line transfer, in nJ (LPDDR-class).
    pub dram_line_nj: f64,
    /// Energy per floating-point add/compare, in pJ.
    pub fp_op_pj: f64,
    /// Pipeline/control energy per issued operation (token or arc slot),
    /// in pJ.
    pub pipeline_op_pj: f64,
    /// Leakage per MB of on-chip SRAM, in mW.
    pub sram_leak_mw_per_mb: f64,
    /// Logic leakage, in mW.
    pub logic_leak_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        // 28 nm-class starting values (LPDDR ~5 nJ per 64 B line, SRAM
        // read ~0.3 nJ/MB^0.5, ~5 pJ FP ops, tens of mW SRAM leakage),
        // jointly rescaled so the *base* accelerator's energy advantage
        // over the modelled GPU reproduces the paper's published 171x on
        // the standard workload (see EXPERIMENTS.md fig11).
        Self {
            sram_nj_at_1mb: 0.29,
            dram_line_nj: 5.0,
            fp_op_pj: 4.2,
            pipeline_op_pj: 16.6,
            sram_leak_mw_per_mb: 33.0,
            logic_leak_mw: 16.6,
        }
    }
}

impl EnergyParams {
    /// Read energy (joules) of an SRAM array of `bytes` capacity.
    pub fn sram_access_j(&self, bytes: usize) -> f64 {
        let mb = bytes as f64 / (1024.0 * 1024.0);
        self.sram_nj_at_1mb * mb.sqrt() * 1e-9
    }
}

/// Per-component energy of one decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// State/Arc/Token cache access energy (J).
    pub caches_j: f64,
    /// Hash table access energy (J).
    pub hash_j: f64,
    /// Acoustic Likelihood Buffer reads (J).
    pub acoustic_j: f64,
    /// Off-chip DRAM transfer energy (J).
    pub dram_j: f64,
    /// FP datapath + pipeline control energy (J).
    pub logic_j: f64,
    /// Leakage over the decode duration (J).
    pub leakage_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.caches_j + self.hash_j + self.acoustic_j + self.dram_j + self.logic_j + self.leakage_j
    }

    /// Average power in watts over `seconds`.
    pub fn power_w(&self, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        self.total_j() / seconds
    }
}

/// The energy model: applies [`EnergyParams`] to a run's [`SimStats`].
#[derive(Debug, Clone, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Model with explicit constants.
    pub fn new(params: EnergyParams) -> Self {
        Self { params }
    }

    /// The constants in use.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the energy of one simulated decode.
    pub fn energy(&self, cfg: &AcceleratorConfig, stats: &SimStats) -> EnergyBreakdown {
        let p = &self.params;
        let caches_j = stats.state_cache.accesses() as f64
            * p.sram_access_j(cfg.state_cache.capacity)
            + stats.arc_cache.accesses() as f64 * p.sram_access_j(cfg.arc_cache.capacity)
            + stats.token_cache.accesses() as f64 * p.sram_access_j(cfg.token_cache.capacity);
        // Each hash cycle is one SRAM touch (home bucket or chain hop).
        let hash_j = stats.hash.cycles as f64 * p.sram_access_j(cfg.hash_bytes());
        let acoustic_j = stats.arcs_processed as f64 * p.sram_access_j(cfg.acoustic_buffer);
        let total_bytes = stats.traffic.search_bytes() + stats.traffic.acoustic;
        let dram_j = (total_bytes as f64 / 64.0) * p.dram_line_nj * 1e-9;
        let logic_j = (stats.fp_adds + stats.fp_compares) as f64 * p.fp_op_pj * 1e-12
            + (stats.tokens_fetched + stats.arc_fetches) as f64 * p.pipeline_op_pj * 1e-12;
        let sram_mb = (cfg.state_cache.capacity
            + cfg.arc_cache.capacity
            + cfg.token_cache.capacity
            + 2 * cfg.hash_bytes()
            + cfg.acoustic_buffer) as f64
            / (1024.0 * 1024.0);
        let leak_w = (sram_mb * p.sram_leak_mw_per_mb + p.logic_leak_mw) * 1e-3;
        let leakage_j = leak_w * stats.seconds(cfg.frequency_hz);
        EnergyBreakdown {
            caches_j,
            hash_j,
            acoustic_j,
            dram_j,
            logic_j,
            leakage_j,
        }
    }
}

/// Area accounting (mm² at 28 nm).
///
/// The paper reports 24.06 mm² for the base accelerator; the prefetcher's
/// FIFOs/ROB add 0.05% and the State Issuer's comparators/offset table add
/// 0.02%, for 24.09 mm² total. The SRAM/logic split below follows a
/// CACTI-like 2.5 mm²/MB SRAM density, with the remainder attributed to
/// the pipeline logic, so ablations that resize caches shift area
/// plausibly.
#[derive(Debug, Clone, Copy, Default)]
pub struct AreaModel;

/// Component areas in mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// All cache arrays.
    pub caches_mm2: f64,
    /// Both hash tables.
    pub hash_mm2: f64,
    /// Acoustic Likelihood Buffer.
    pub acoustic_mm2: f64,
    /// Pipeline and control logic.
    pub logic_mm2: f64,
    /// Prefetcher FIFOs + Reorder Buffer (present only when enabled).
    pub prefetch_mm2: f64,
    /// Direct-index comparators + offset table (present only when enabled).
    pub state_opt_mm2: f64,
}

impl AreaReport {
    /// Total die area.
    pub fn total_mm2(&self) -> f64 {
        self.caches_mm2
            + self.hash_mm2
            + self.acoustic_mm2
            + self.logic_mm2
            + self.prefetch_mm2
            + self.state_opt_mm2
    }
}

/// Paper-reported total for the base design.
pub const PAPER_BASE_AREA_MM2: f64 = 24.06;
/// SRAM density assumed by the split (mm² per MB at 28 nm).
pub const SRAM_MM2_PER_MB: f64 = 2.5;

impl AreaModel {
    /// Computes the area of `cfg`'s design point.
    pub fn area(&self, cfg: &AcceleratorConfig) -> AreaReport {
        let mb = |bytes: usize| bytes as f64 / (1024.0 * 1024.0);
        let caches_mm2 = SRAM_MM2_PER_MB
            * (mb(cfg.state_cache.capacity)
                + mb(cfg.arc_cache.capacity)
                + mb(cfg.token_cache.capacity));
        let hash_mm2 = SRAM_MM2_PER_MB * 2.0 * mb(cfg.hash_bytes());
        let acoustic_mm2 = SRAM_MM2_PER_MB * mb(cfg.acoustic_buffer);
        // Logic absorbs the remainder of the paper's 24.06 mm² at the
        // default (Table I) geometry.
        let default_sram = {
            let d = AcceleratorConfig::default();
            SRAM_MM2_PER_MB
                * (mb(d.state_cache.capacity)
                    + mb(d.arc_cache.capacity)
                    + mb(d.token_cache.capacity)
                    + 2.0 * mb(d.hash_bytes())
                    + mb(d.acoustic_buffer))
        };
        let logic_mm2 = PAPER_BASE_AREA_MM2 - default_sram;
        let prefetch_mm2 = if cfg.design.arc_prefetch() {
            PAPER_BASE_AREA_MM2 * 0.0005 // +0.05% (Section VI)
        } else {
            0.0
        };
        let state_opt_mm2 = if cfg.design.state_opt() {
            PAPER_BASE_AREA_MM2 * 0.0002 // +0.02% (Section VI)
        } else {
            0.0
        };
        AreaReport {
            caches_mm2,
            hash_mm2,
            acoustic_mm2,
            logic_mm2,
            prefetch_mm2,
            state_opt_mm2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;

    #[test]
    fn sram_energy_scales_sublinearly() {
        let p = EnergyParams::default();
        let half = p.sram_access_j(512 * 1024);
        let full = p.sram_access_j(1024 * 1024);
        assert!(full > half);
        assert!(full < 2.0 * half, "sqrt scaling");
        assert!((full - 0.29e-9).abs() < 1e-12);
    }

    #[test]
    fn energy_breakdown_sums() {
        let b = EnergyBreakdown {
            caches_j: 1.0,
            hash_j: 2.0,
            acoustic_j: 3.0,
            dram_j: 4.0,
            logic_j: 5.0,
            leakage_j: 6.0,
        };
        assert_eq!(b.total_j(), 21.0);
        assert_eq!(b.power_w(3.0), 7.0);
        assert_eq!(b.power_w(0.0), 0.0);
    }

    #[test]
    fn more_traffic_means_more_energy() {
        let cfg = AcceleratorConfig::default();
        let model = EnergyModel::default();
        let mut small = SimStats {
            cycles: 1000,
            ..SimStats::default()
        };
        small.traffic.arcs = 64 * 100;
        let mut big = small.clone();
        big.traffic.arcs = 64 * 10_000;
        assert!(model.energy(&cfg, &big).total_j() > model.energy(&cfg, &small).total_j());
    }

    #[test]
    fn leakage_grows_with_time() {
        let cfg = AcceleratorConfig::default();
        let model = EnergyModel::default();
        let short = SimStats {
            cycles: 1_000,
            ..SimStats::default()
        };
        let long = SimStats {
            cycles: 1_000_000,
            ..SimStats::default()
        };
        assert!(model.energy(&cfg, &long).leakage_j > 100.0 * model.energy(&cfg, &short).leakage_j);
    }

    #[test]
    fn base_area_matches_paper() {
        let area = AreaModel.area(&AcceleratorConfig::for_design(DesignPoint::Base));
        assert!((area.total_mm2() - PAPER_BASE_AREA_MM2).abs() < 1e-9);
        assert_eq!(area.prefetch_mm2, 0.0);
        assert_eq!(area.state_opt_mm2, 0.0);
    }

    #[test]
    fn final_design_area_matches_paper() {
        let area = AreaModel.area(&AcceleratorConfig::for_design(DesignPoint::StateAndArc));
        // 24.06 * (1 + 0.0005 + 0.0002) ~= 24.077, the paper rounds to
        // 24.09; accept the sub-0.1% band.
        let total = area.total_mm2();
        assert!(total > PAPER_BASE_AREA_MM2);
        assert!((total - 24.09).abs() < 0.05, "got {total}");
        assert!(area.prefetch_mm2 > 0.0 && area.state_opt_mm2 > 0.0);
        // Negligible additions, as the paper stresses.
        assert!(area.prefetch_mm2 / total < 0.001);
        assert!(area.state_opt_mm2 / total < 0.001);
    }

    #[test]
    fn bigger_caches_cost_area() {
        let mut cfg = AcceleratorConfig::default();
        let small = AreaModel.area(&cfg).caches_mm2;
        cfg.arc_cache.capacity = 4 * 1024 * 1024;
        let big = AreaModel.area(&cfg).caches_mm2;
        assert!(big > small);
    }
}
