//! The accelerator's token hash tables (Section III).
//!
//! Two hash tables track the active tokens of the current and next frame.
//! Each entry stores the token's likelihood, the main-memory address of its
//! backpointer, the state index, and a next-pointer linking all active
//! entries for the next frame's State Issuer walk. Collisions chain into a
//! backup buffer; when the backup buffer fills, entries spill to the
//! Overflow Buffer in main memory — rare at 32K entries (Figure 5), and
//! costly when it happens.
//!
//! Timing model: an access that lands on its home bucket takes one cycle;
//! each chained entry traversed adds a cycle; an access that must touch the
//! overflow buffer pays a main-memory round trip (accounted by the caller
//! through the DRAM model so contention is shared).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of one hash access (lookup-or-insert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashAccess {
    /// `true` if the state was already present (the access updates the
    /// stored likelihood rather than allocating).
    pub existing: bool,
    /// On-chip cycles spent (home bucket + chain traversal).
    pub cycles: u64,
    /// `true` if the entry lives in (or had to be placed in) the overflow
    /// buffer in main memory.
    pub overflow: bool,
}

/// Aggregate hash-table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashStats {
    /// Total accesses.
    pub requests: u64,
    /// Total on-chip cycles spent serving them.
    pub cycles: u64,
    /// Accesses that had to traverse at least one chained entry.
    pub collisions: u64,
    /// Accesses that touched the main-memory overflow buffer.
    pub overflow_accesses: u64,
    /// Peak occupancy (distinct states) seen in a frame.
    pub peak_occupancy: u64,
}

impl HashStats {
    /// Average cycles per request (Figure 5's y-axis); 1.0 when idle.
    pub fn avg_cycles_per_request(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.cycles as f64 / self.requests as f64
        }
    }
}

/// One token hash table.
///
/// # Example
///
/// ```
/// use asr_accel::hash::HashTable;
///
/// let mut table = HashTable::new(32 * 1024, false);
/// let first = table.access(42); // insert
/// assert!(!first.existing);
/// assert_eq!(first.cycles, 1);
/// let again = table.access(42); // likelihood update
/// assert!(again.existing);
/// assert_eq!(table.occupancy(), 1);
/// assert_eq!(table.walk(), &[42]);
/// ```
#[derive(Debug, Clone)]
pub struct HashTable {
    entries: usize,
    backup_capacity: usize,
    ideal: bool,
    /// Chain length per bucket (0 = empty).
    chain_len: Vec<u16>,
    /// Position of each resident state within its bucket chain
    /// (0 = home slot). Insertion order is preserved for the walk.
    index: HashMap<u32, u32>,
    /// Insertion-ordered list of states (the hardware's linked list).
    order: Vec<u32>,
    backup_used: usize,
    overflow_used: usize,
    stats: HashStats,
}

impl HashTable {
    /// Creates a table with `entries` home buckets. The backup buffer holds
    /// `entries / 2` chained entries before spilling to memory. `ideal`
    /// makes every access single-cycle (Section IV analysis).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize, ideal: bool) -> Self {
        assert!(entries > 0, "hash table needs at least one entry");
        Self {
            entries,
            backup_capacity: entries / 2,
            ideal,
            chain_len: vec![0; entries],
            index: HashMap::new(),
            order: Vec::new(),
            backup_used: 0,
            overflow_used: 0,
            stats: HashStats::default(),
        }
    }

    #[inline]
    fn bucket(&self, state: u32) -> usize {
        // Multiplicative hashing; stable across platforms.
        (state.wrapping_mul(2_654_435_761) as usize) % self.entries
    }

    /// Looks up `state`, inserting it if absent. Returns the timing and
    /// placement outcome.
    pub fn access(&mut self, state: u32) -> HashAccess {
        self.stats.requests += 1;
        if self.ideal {
            self.stats.cycles += 1;
            let existing = self.index.contains_key(&state);
            if !existing {
                self.index.insert(state, 0);
                self.order.push(state);
            }
            self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.index.len() as u64);
            return HashAccess {
                existing,
                cycles: 1,
                overflow: false,
            };
        }
        let bucket = self.bucket(state);
        if let Some(&pos) = self.index.get(&state) {
            // Traverse the chain up to the entry's position.
            let cycles = 1 + pos as u64;
            let overflow = self.position_overflows(pos);
            self.stats.cycles += cycles;
            if pos > 0 {
                self.stats.collisions += 1;
            }
            if overflow {
                self.stats.overflow_accesses += 1;
            }
            return HashAccess {
                existing: true,
                cycles,
                overflow,
            };
        }
        // Insert at the tail of the bucket's chain.
        let pos = self.chain_len[bucket] as u32;
        let cycles = 1 + pos as u64;
        let mut overflow = false;
        if pos > 0 {
            self.stats.collisions += 1;
            if self.backup_used < self.backup_capacity {
                self.backup_used += 1;
            } else {
                self.overflow_used += 1;
                overflow = true;
            }
        }
        if self.position_overflows(pos) {
            overflow = true;
        }
        if overflow {
            self.stats.overflow_accesses += 1;
        }
        self.chain_len[bucket] = self.chain_len[bucket].saturating_add(1);
        self.index.insert(state, pos);
        self.order.push(state);
        self.stats.cycles += cycles;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.index.len() as u64);
        HashAccess {
            existing: false,
            cycles,
            overflow,
        }
    }

    /// `true` when a chain position would live in the memory-backed
    /// overflow region (backup buffer exhausted).
    fn position_overflows(&self, pos: u32) -> bool {
        pos > 0 && self.backup_used >= self.backup_capacity && self.overflow_used > 0
    }

    /// Number of distinct states resident.
    pub fn occupancy(&self) -> usize {
        self.index.len()
    }

    /// The active states in insertion order — the linked-list walk the
    /// State Issuer performs at the start of a frame.
    pub fn walk(&self) -> &[u32] {
        &self.order
    }

    /// Clears contents for the next frame (counters are kept).
    pub fn clear(&mut self) {
        self.chain_len.iter_mut().for_each(|c| *c = 0);
        self.index.clear();
        self.order.clear();
        self.backup_used = 0;
        self.overflow_used = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HashStats {
        self.stats
    }

    /// Number of home buckets.
    pub fn entries(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_inserts_second_updates() {
        let mut h = HashTable::new(1024, false);
        let a = h.access(42);
        assert!(!a.existing);
        assert_eq!(a.cycles, 1);
        let b = h.access(42);
        assert!(b.existing);
        assert_eq!(b.cycles, 1);
        assert_eq!(h.occupancy(), 1);
    }

    #[test]
    fn collisions_cost_extra_cycles() {
        // Force collisions with a single-bucket table.
        let mut h = HashTable::new(1, false);
        assert_eq!(h.access(1).cycles, 1);
        assert_eq!(h.access(2).cycles, 2);
        assert_eq!(h.access(3).cycles, 3);
        // Re-access of a chained entry pays its chain position again.
        assert_eq!(h.access(2).cycles, 2);
        assert!(h.stats().collisions >= 3);
    }

    #[test]
    fn walk_preserves_insertion_order() {
        let mut h = HashTable::new(64, false);
        for s in [5u32, 1, 9, 3] {
            h.access(s);
        }
        h.access(1); // update, not re-insert
        assert_eq!(h.walk(), &[5, 1, 9, 3]);
    }

    #[test]
    fn clear_resets_contents_keeps_stats() {
        let mut h = HashTable::new(64, false);
        h.access(1);
        h.access(2);
        h.clear();
        assert_eq!(h.occupancy(), 0);
        assert!(h.walk().is_empty());
        assert_eq!(h.stats().requests, 2);
        // Post-clear, the same state inserts fresh.
        assert!(!h.access(1).existing);
    }

    #[test]
    fn overflow_kicks_in_when_backup_exhausts() {
        // 2 buckets -> backup capacity 1: the second collision overflows.
        let mut h = HashTable::new(2, false);
        let mut overflowed = false;
        for s in 0..16u32 {
            overflowed |= h.access(s).overflow;
        }
        assert!(overflowed);
        assert!(h.stats().overflow_accesses > 0);
    }

    #[test]
    fn large_table_rarely_collides() {
        let mut h = HashTable::new(32 * 1024, false);
        for s in 0..1000u32 {
            h.access(s * 7919);
        }
        let stats = h.stats();
        assert!(
            stats.avg_cycles_per_request() < 1.1,
            "avg {:.3}",
            stats.avg_cycles_per_request()
        );
        assert_eq!(stats.overflow_accesses, 0);
    }

    #[test]
    fn small_table_collides_often() {
        let mut small = HashTable::new(1024, false);
        for s in 0..4000u32 {
            small.access(s * 7919);
        }
        let mut big = HashTable::new(64 * 1024, false);
        for s in 0..4000u32 {
            big.access(s * 7919);
        }
        assert!(
            small.stats().avg_cycles_per_request() > big.stats().avg_cycles_per_request(),
            "Figure 5 trend: fewer entries, more cycles per request"
        );
    }

    #[test]
    fn ideal_hash_is_single_cycle() {
        let mut h = HashTable::new(1, true);
        for s in 0..100u32 {
            assert_eq!(h.access(s).cycles, 1);
        }
        assert_eq!(h.stats().avg_cycles_per_request(), 1.0);
        assert_eq!(h.stats().collisions, 0);
    }

    #[test]
    fn peak_occupancy_tracks_distinct_states() {
        let mut h = HashTable::new(64, false);
        for s in 0..10u32 {
            h.access(s);
        }
        assert_eq!(h.stats().peak_occupancy, 10);
    }
}
