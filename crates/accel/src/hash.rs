//! Timing model of the accelerator's token hash tables (Section III).
//!
//! Two hash tables track the active tokens of the current and next frame.
//! Each entry stores the token's likelihood, the main-memory address of its
//! backpointer, the state index, and a next-pointer linking all active
//! entries for the next frame's State Issuer walk. Collisions chain into a
//! backup buffer; when the backup buffer fills, entries spill to the
//! Overflow Buffer in main memory — rare at 32K entries (Figure 5), and
//! costly when it happens.
//!
//! Since the simulator's *functional* search moved onto
//! [`asr_decoder::token_table::TokenTable`], this module no longer stores
//! any search state: the token table's slots are the source of truth for
//! which states are live and in what order they were inserted (its active
//! list *is* the hardware's linked-list walk). What remains here is pure
//! timing, keyed off the same per-state slots — an epoch-tagged chain
//! position per state, chain lengths per bucket, and the backup/overflow
//! occupancy — driven by one [`HashTable::access`] per observed insert
//! attempt.
//!
//! Timing model: an access that lands on its home bucket takes one cycle;
//! each chained entry traversed adds a cycle; an access that must touch the
//! overflow buffer pays a main-memory round trip (accounted by the caller
//! through the DRAM model so contention is shared).

use serde::{Deserialize, Serialize};

/// Result of one hash access (lookup-or-insert).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashAccess {
    /// `true` if the state was already present (the access updates the
    /// stored likelihood rather than allocating).
    pub existing: bool,
    /// On-chip cycles spent (home bucket + chain traversal).
    pub cycles: u64,
    /// `true` if the entry lives in (or had to be placed in) the overflow
    /// buffer in main memory.
    pub overflow: bool,
}

/// Aggregate hash-table counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashStats {
    /// Total accesses.
    pub requests: u64,
    /// Total on-chip cycles spent serving them.
    pub cycles: u64,
    /// Accesses that had to traverse at least one chained entry.
    pub collisions: u64,
    /// Accesses that touched the main-memory overflow buffer.
    pub overflow_accesses: u64,
    /// Peak occupancy (distinct states) seen in a frame.
    pub peak_occupancy: u64,
}

impl HashStats {
    /// Average cycles per request (Figure 5's y-axis); 1.0 when idle.
    pub fn avg_cycles_per_request(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.cycles as f64 / self.requests as f64
        }
    }
}

/// Timing model of one token hash table.
///
/// # Example
///
/// ```
/// use asr_accel::hash::HashTable;
///
/// let mut table = HashTable::new(32 * 1024, false);
/// let first = table.access(42); // insert
/// assert!(!first.existing);
/// assert_eq!(first.cycles, 1);
/// let again = table.access(42); // likelihood update
/// assert!(again.existing);
/// assert_eq!(table.occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HashTable {
    entries: usize,
    backup_capacity: usize,
    ideal: bool,
    /// Chain length per bucket (0 = empty).
    chain_len: Vec<u16>,
    /// Chain position per state slot (0 = home slot), mirroring the token
    /// table's dense state-indexed layout; grown on demand to the highest
    /// state seen.
    pos: Vec<u32>,
    /// Epoch tag per state slot; a position is valid only when its tag
    /// matches [`HashTable::epoch`], so [`HashTable::clear`] is one bump.
    pos_epoch: Vec<u32>,
    epoch: u32,
    /// Distinct states resident this epoch.
    occupancy: usize,
    backup_used: usize,
    overflow_used: usize,
    stats: HashStats,
}

impl HashTable {
    /// Creates a table with `entries` home buckets. The backup buffer holds
    /// `entries / 2` chained entries before spilling to memory. `ideal`
    /// makes every access single-cycle (Section IV analysis).
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`.
    pub fn new(entries: usize, ideal: bool) -> Self {
        assert!(entries > 0, "hash table needs at least one entry");
        Self {
            entries,
            backup_capacity: entries / 2,
            ideal,
            chain_len: vec![0; entries],
            pos: Vec::new(),
            pos_epoch: Vec::new(),
            epoch: 1,
            occupancy: 0,
            backup_used: 0,
            overflow_used: 0,
            stats: HashStats::default(),
        }
    }

    #[inline]
    fn bucket(&self, state: u32) -> usize {
        // Multiplicative hashing; stable across platforms.
        (state.wrapping_mul(2_654_435_761) as usize) % self.entries
    }

    /// Grows the per-state slot arrays to cover `state`; amortized by
    /// doubling, and a no-op once sized to the graph.
    #[inline]
    fn slot(&mut self, state: u32) -> usize {
        let slot = state as usize;
        if slot >= self.pos.len() {
            let len = (slot + 1).next_power_of_two();
            self.pos.resize(len, 0);
            self.pos_epoch.resize(len, 0);
        }
        slot
    }

    /// Pre-sizes the per-state slot arrays for a graph of `num_states`
    /// states so steady-state accesses never reallocate.
    pub fn reserve_states(&mut self, num_states: usize) {
        if num_states > self.pos.len() {
            self.pos.resize(num_states, 0);
            self.pos_epoch.resize(num_states, 0);
        }
    }

    /// Looks up `state`, inserting it if absent. Returns the timing and
    /// placement outcome.
    pub fn access(&mut self, state: u32) -> HashAccess {
        self.stats.requests += 1;
        let slot = self.slot(state);
        let existing = self.pos_epoch[slot] == self.epoch;
        if self.ideal {
            self.stats.cycles += 1;
            if !existing {
                self.pos_epoch[slot] = self.epoch;
                self.pos[slot] = 0;
                self.occupancy += 1;
            }
            self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy as u64);
            return HashAccess {
                existing,
                cycles: 1,
                overflow: false,
            };
        }
        if existing {
            // Traverse the chain up to the entry's position.
            let pos = self.pos[slot];
            let cycles = 1 + pos as u64;
            let overflow = self.position_overflows(pos);
            self.stats.cycles += cycles;
            if pos > 0 {
                self.stats.collisions += 1;
            }
            if overflow {
                self.stats.overflow_accesses += 1;
            }
            return HashAccess {
                existing: true,
                cycles,
                overflow,
            };
        }
        // Insert at the tail of the bucket's chain.
        let bucket = self.bucket(state);
        let pos = self.chain_len[bucket] as u32;
        let cycles = 1 + pos as u64;
        let mut overflow = false;
        if pos > 0 {
            self.stats.collisions += 1;
            if self.backup_used < self.backup_capacity {
                self.backup_used += 1;
            } else {
                self.overflow_used += 1;
                overflow = true;
            }
        }
        if self.position_overflows(pos) {
            overflow = true;
        }
        if overflow {
            self.stats.overflow_accesses += 1;
        }
        self.chain_len[bucket] = self.chain_len[bucket].saturating_add(1);
        self.pos_epoch[slot] = self.epoch;
        self.pos[slot] = pos;
        self.occupancy += 1;
        self.stats.cycles += cycles;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.occupancy as u64);
        HashAccess {
            existing: false,
            cycles,
            overflow,
        }
    }

    /// `true` when a chain position would live in the memory-backed
    /// overflow region (backup buffer exhausted).
    fn position_overflows(&self, pos: u32) -> bool {
        pos > 0 && self.backup_used >= self.backup_capacity && self.overflow_used > 0
    }

    /// Number of distinct states resident.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Clears contents for the next frame (counters are kept). One epoch
    /// bump invalidates every state slot — the same constant-time clear as
    /// the token table it shadows; only the bucket chain lengths are wiped.
    pub fn clear(&mut self) {
        self.chain_len.iter_mut().for_each(|c| *c = 0);
        if self.epoch == u32::MAX {
            // Epoch wrap: the only O(n) tag reset, once every 2^32 frames.
            self.pos_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.occupancy = 0;
        self.backup_used = 0;
        self.overflow_used = 0;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HashStats {
        self.stats
    }

    /// Number of home buckets.
    pub fn entries(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_inserts_second_updates() {
        let mut h = HashTable::new(1024, false);
        let a = h.access(42);
        assert!(!a.existing);
        assert_eq!(a.cycles, 1);
        let b = h.access(42);
        assert!(b.existing);
        assert_eq!(b.cycles, 1);
        assert_eq!(h.occupancy(), 1);
    }

    #[test]
    fn collisions_cost_extra_cycles() {
        // Force collisions with a single-bucket table.
        let mut h = HashTable::new(1, false);
        assert_eq!(h.access(1).cycles, 1);
        assert_eq!(h.access(2).cycles, 2);
        assert_eq!(h.access(3).cycles, 3);
        // Re-access of a chained entry pays its chain position again.
        assert_eq!(h.access(2).cycles, 2);
        assert!(h.stats().collisions >= 3);
    }

    #[test]
    fn clear_resets_contents_keeps_stats() {
        let mut h = HashTable::new(64, false);
        h.access(1);
        h.access(2);
        h.clear();
        assert_eq!(h.occupancy(), 0);
        assert_eq!(h.stats().requests, 2);
        // Post-clear, the same state inserts fresh.
        assert!(!h.access(1).existing);
    }

    #[test]
    fn overflow_kicks_in_when_backup_exhausts() {
        // 2 buckets -> backup capacity 1: the second collision overflows.
        let mut h = HashTable::new(2, false);
        let mut overflowed = false;
        for s in 0..16u32 {
            overflowed |= h.access(s).overflow;
        }
        assert!(overflowed);
        assert!(h.stats().overflow_accesses > 0);
    }

    #[test]
    fn large_table_rarely_collides() {
        let mut h = HashTable::new(32 * 1024, false);
        for s in 0..1000u32 {
            h.access(s * 7919);
        }
        let stats = h.stats();
        assert!(
            stats.avg_cycles_per_request() < 1.1,
            "avg {:.3}",
            stats.avg_cycles_per_request()
        );
        assert_eq!(stats.overflow_accesses, 0);
    }

    #[test]
    fn small_table_collides_often() {
        let mut small = HashTable::new(1024, false);
        for s in 0..4000u32 {
            small.access(s * 7919);
        }
        let mut big = HashTable::new(64 * 1024, false);
        for s in 0..4000u32 {
            big.access(s * 7919);
        }
        assert!(
            small.stats().avg_cycles_per_request() > big.stats().avg_cycles_per_request(),
            "Figure 5 trend: fewer entries, more cycles per request"
        );
    }

    #[test]
    fn ideal_hash_is_single_cycle() {
        let mut h = HashTable::new(1, true);
        for s in 0..100u32 {
            assert_eq!(h.access(s).cycles, 1);
        }
        assert_eq!(h.stats().avg_cycles_per_request(), 1.0);
        assert_eq!(h.stats().collisions, 0);
    }

    #[test]
    fn peak_occupancy_tracks_distinct_states() {
        let mut h = HashTable::new(64, false);
        for s in 0..10u32 {
            h.access(s);
        }
        assert_eq!(h.stats().peak_occupancy, 10);
    }

    #[test]
    fn reserve_states_presizes_slots() {
        let mut h = HashTable::new(64, false);
        h.reserve_states(1000);
        assert!(!h.access(999).existing);
        assert_eq!(h.occupancy(), 1);
    }

    #[test]
    fn epoch_clear_is_equivalent_to_fresh_table() {
        let mut cleared = HashTable::new(8, false);
        for s in 0..20u32 {
            cleared.access(s);
        }
        cleared.clear();
        let mut fresh = HashTable::new(8, false);
        for s in (0..20u32).rev() {
            assert_eq!(cleared.access(s), fresh.access(s));
        }
        assert_eq!(cleared.occupancy(), fresh.occupancy());
    }
}
