//! Cycle-accurate simulator of the MICRO 2016 ultra low-power Viterbi
//! search accelerator (Yazdani, Segura, Arnau, Gonzalez).
//!
//! This crate is the paper's primary contribution rebuilt in Rust: a
//! hardware model of the five-stage speech-recognition pipeline of Figure 3
//! together with the two memory-system techniques the paper proposes —
//! the decoupled access-execute **arc prefetcher** (Section IV-A) and the
//! **bandwidth-saving state layout** (Section IV-B) — plus the energy and
//! area models behind Figures 11, 12 and 14.
//!
//! * [`config`] — Table I parameters and the four design points.
//! * [`mem`] — State/Arc/Token caches, DRAM + memory controller, address
//!   map.
//! * [`hash`] — the dual token hash tables with collision chains and the
//!   main-memory overflow buffer.
//! * [`prefetch`] — the in-order issue/commit window realizing the Arc
//!   FIFO / Request FIFO / Reorder Buffer ensemble.
//! * [`sim`] — the execution-driven, cycle-stepped simulator.
//! * [`energy`] — event-based energy/power model and area accounting.
//! * [`stats`] — counters and derived metrics.
//!
//! # Quick start
//!
//! ```
//! use asr_accel::config::{AcceleratorConfig, DesignPoint};
//! use asr_accel::sim::Simulator;
//! use asr_acoustic::scores::AcousticTable;
//! use asr_wfst::synth::{SynthConfig, SynthWfst};
//!
//! let wfst = SynthWfst::generate(&SynthConfig::with_states(2_000))?;
//! let scores = AcousticTable::random(10, wfst.num_phones() as usize, (0.5, 4.0), 7);
//! let sim = Simulator::new(AcceleratorConfig::for_design(DesignPoint::StateAndArc));
//! let result = sim.decode_wfst(&wfst, &scores)?;
//! assert!(result.stats.cycles > 0);
//! println!("decode took {} cycles", result.stats.cycles);
//! # Ok::<(), asr_wfst::WfstError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod energy;
pub mod hash;
pub mod mem;
pub mod prefetch;
pub mod report;
pub mod sim;
pub mod stats;

pub use config::{AcceleratorConfig, DesignPoint};
pub use sim::{PreparedWfst, SimResult, Simulator};
pub use stats::SimStats;
