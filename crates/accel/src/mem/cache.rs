//! Set-associative cache timing model (tags only, true LRU).
//!
//! The accelerator's three caches (State, Arc, Token — Table I) are modelled
//! at tag granularity: the simulator tracks which 64-byte lines are
//! resident, hit/miss counts, and write-back traffic. Data values flow
//! through the functional layer; only addresses matter here.

use crate::config::CacheConfig;
use serde::{Deserialize, Serialize};

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line resident; single-cycle access.
    Hit,
    /// Line absent; a fill from memory is required. Carries the evicted
    /// dirty line's address when the victim needs writing back.
    Miss {
        /// Dirty victim to write back, if any.
        writeback: Option<u64>,
    },
}

impl Access {
    /// Returns `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (each implies one line fill).
    pub misses: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Lines installed by a hardware prefetcher (not demand fills).
    pub prefetch_fills: u64,
    /// Demand hits on prefetched lines (useful prefetches).
    pub prefetch_hits: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 for an untouched cache).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool, // installed by a prefetcher, not yet demanded
    lru: u64,         // larger = more recently used
}

/// The tag array of one cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    ways: Vec<Way>, // sets * ways, row-major by set
    stats: CacheStats,
    tick: u64,
    /// Perfect mode: every access hits (Section IV idealization).
    perfect: bool,
}

impl Cache {
    /// Builds an empty cache.
    pub fn new(cfg: CacheConfig, perfect: bool) -> Self {
        let sets = cfg.sets();
        Self {
            cfg,
            sets,
            ways: vec![Way::default(); sets * cfg.ways],
            stats: CacheStats::default(),
            tick: 0,
            perfect,
        }
    }

    /// Line-aligns an address.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line as u64 - 1)
    }

    /// Accesses `addr`; `write` marks the line dirty. On a miss the line is
    /// allocated immediately (the timing layer decides when its data is
    /// usable).
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.tick += 1;
        if self.perfect {
            self.stats.hits += 1;
            return Access::Hit;
        }
        let line = self.line_addr(addr);
        let set = (line / self.cfg.line as u64) as usize % self.sets;
        let base = set * self.cfg.ways;
        let ways = &mut self.ways[base..base + self.cfg.ways];

        // Hit?
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == line) {
            w.lru = self.tick;
            w.dirty |= write;
            if w.prefetched {
                w.prefetched = false;
                self.stats.prefetch_hits += 1;
            }
            self.stats.hits += 1;
            return Access::Hit;
        }
        // Miss: pick the invalid or least-recently-used way.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("cache has at least one way");
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(victim.tag)
        } else {
            None
        };
        *victim = Way {
            tag: line,
            valid: true,
            dirty: write,
            prefetched: false,
            lru: self.tick,
        };
        Access::Miss { writeback }
    }

    /// Installs `addr`'s line on behalf of a hardware prefetcher. Returns
    /// `false` (and does nothing) when the line is already resident —
    /// a useless-but-harmless prefetch; `true` when a line was brought in,
    /// potentially evicting useful data (pollution). Prefetch installs do
    /// not count as demand hits/misses.
    pub fn prefetch(&mut self, addr: u64) -> bool {
        if self.perfect {
            return false;
        }
        self.tick += 1;
        let line = self.line_addr(addr);
        let set = (line / self.cfg.line as u64) as usize % self.sets;
        let base = set * self.cfg.ways;
        let ways = &mut self.ways[base..base + self.cfg.ways];
        if ways.iter().any(|w| w.valid && w.tag == line) {
            return false;
        }
        self.stats.prefetch_fills += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("cache has at least one way");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Way {
            tag: line,
            valid: true,
            dirty: false,
            prefetched: true,
            // Inserted at LRU-but-one priority: prefetches should not
            // displace the hottest lines on arrival.
            lru: self.tick.saturating_sub(1),
        };
        true
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Resets counters (not contents) — used between warm-up and measured
    /// phases.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates everything and clears counters.
    pub fn clear(&mut self) {
        for w in &mut self.ways {
            *w = Way::default();
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512 B.
        Cache::new(
            CacheConfig {
                capacity: 512,
                ways: 2,
                line: 64,
            },
            false,
        )
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).is_hit());
        assert!(c.access(0x100, false).is_hit());
        assert!(c.access(0x13F, false).is_hit(), "same line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: line addresses differ by
        // sets*line = 256 bytes.
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // refresh line 0
        c.access(0x200, false); // evicts 0x100
        assert!(c.access(0x000, false).is_hit());
        assert!(!c.access(0x100, false).is_hit());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x100, false);
        match c.access(0x200, false) {
            // 0x000 is LRU and dirty.
            Access::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            Access::Hit => panic!("expected a miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        match c.access(0x200, false) {
            Access::Miss { writeback } => assert_eq!(writeback, None),
            Access::Hit => panic!("expected a miss"),
        }
    }

    #[test]
    fn perfect_cache_always_hits() {
        let mut c = Cache::new(
            CacheConfig {
                capacity: 512,
                ways: 2,
                line: 64,
            },
            true,
        );
        for i in 0..100u64 {
            assert!(c.access(i * 4096, false).is_hit());
        }
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x040, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_large_strides_thrash() {
        let mut c = tiny();
        // 64 distinct lines into a 8-line cache: mostly misses on re-walk.
        for round in 0..2 {
            for i in 0..64u64 {
                let hit = c.access(i * 64, false).is_hit();
                if round == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn clear_resets_contents_and_stats() {
        let mut c = tiny();
        c.access(0x0, true);
        c.clear();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0x0, false).is_hit());
    }
}
