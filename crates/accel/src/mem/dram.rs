//! Off-chip DRAM and memory-controller timing model.
//!
//! Section V models a 4 GB DRAM with CACTI: a 50-cycle (83 ns) access
//! latency at the accelerator's 600 MHz. The controller supports 32
//! in-flight requests (Table I) and issues at most one new request per
//! cycle (command-bus serialization). Requests complete
//! `latency` cycles after issue; a full in-flight window delays the issue
//! of the next request until the oldest completes — the mechanism that
//! turns a miss *burst* into bandwidth-bound, rather than latency-bound,
//! behaviour once the prefetcher exposes enough parallelism.
//!
//! The model also keeps per-kind traffic counters for Figure 13's
//! states/arcs/tokens/overflow breakdown.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a memory request was for (Figure 13 categories, plus the acoustic
/// DMA which the paper accounts separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficKind {
    /// WFST state records.
    States,
    /// WFST arc records.
    Arcs,
    /// Token backpointer/word writes (and their line fills/writebacks).
    Tokens,
    /// Hash overflow buffer spills.
    Overflow,
    /// Acoustic score DMA from the GPU.
    Acoustic,
}

impl TrafficKind {
    /// The four off-chip categories shown in Figure 13.
    pub const FIGURE13: [TrafficKind; 4] = [
        TrafficKind::States,
        TrafficKind::Arcs,
        TrafficKind::Tokens,
        TrafficKind::Overflow,
    ];
}

/// Byte counters per traffic kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// State-record bytes fetched.
    pub states: u64,
    /// Arc-record bytes fetched.
    pub arcs: u64,
    /// Token bytes (fills + writebacks).
    pub tokens: u64,
    /// Overflow-buffer bytes.
    pub overflow: u64,
    /// Acoustic DMA bytes.
    pub acoustic: u64,
}

impl TrafficStats {
    /// Adds `bytes` to the counter for `kind`.
    pub fn add(&mut self, kind: TrafficKind, bytes: u64) {
        match kind {
            TrafficKind::States => self.states += bytes,
            TrafficKind::Arcs => self.arcs += bytes,
            TrafficKind::Tokens => self.tokens += bytes,
            TrafficKind::Overflow => self.overflow += bytes,
            TrafficKind::Acoustic => self.acoustic += bytes,
        }
    }

    /// Off-chip bytes in the Figure 13 accounting (excludes acoustic DMA,
    /// which the paper draws over the GPU link).
    pub fn search_bytes(&self) -> u64 {
        self.states + self.arcs + self.tokens + self.overflow
    }

    /// Byte count for one kind.
    pub fn get(&self, kind: TrafficKind) -> u64 {
        match kind {
            TrafficKind::States => self.states,
            TrafficKind::Arcs => self.arcs,
            TrafficKind::Tokens => self.tokens,
            TrafficKind::Overflow => self.overflow,
            TrafficKind::Acoustic => self.acoustic,
        }
    }
}

/// The DRAM + controller timing model.
///
/// Requests arrive from the simulator's scoreboard in *program* order, not
/// time order (a later-called request may be ready earlier), so the model
/// must be order-insensitive: time is divided into service epochs of
/// `latency` cycles, each epoch serving at most `inflight_limit` requests.
/// A request ready at cycle `r` completes at `r + latency` plus one full
/// service window for every `inflight_limit` requests already claiming
/// `r`'s epoch — the queueing delay of an overloaded controller. Peak
/// bandwidth is therefore `inflight_limit / latency` lines per cycle
/// (32/50 = 0.64 at Table I parameters), and an isolated request sees the
/// bare 50-cycle latency.
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    inflight_limit: usize,
    line_bytes: u64,
    // Number of requests that have claimed each service epoch.
    epoch_load: HashMap<u64, u32>,
    traffic: TrafficStats,
    requests: u64,
}

impl Dram {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if `inflight_limit == 0` or `latency == 0`.
    pub fn new(latency: u64, inflight_limit: usize, line_bytes: u64) -> Self {
        assert!(inflight_limit > 0, "need at least one in-flight request");
        assert!(latency > 0, "latency must be non-zero");
        Self {
            latency,
            inflight_limit,
            line_bytes,
            epoch_load: HashMap::new(),
            traffic: TrafficStats::default(),
            requests: 0,
        }
    }

    /// Issues a line-sized request ready at cycle `ready`; returns the
    /// completion cycle. Accounts `line_bytes` of `kind` traffic.
    pub fn request(&mut self, ready: u64, kind: TrafficKind) -> u64 {
        let epoch = ready / self.latency;
        let load = self.epoch_load.entry(epoch).or_insert(0);
        let queued_windows = (*load as u64) / self.inflight_limit as u64;
        *load += 1;
        self.traffic.add(kind, self.line_bytes);
        self.requests += 1;
        ready + self.latency * (1 + queued_windows)
    }

    /// Accounts a bulk transfer (e.g. the acoustic DMA) without modelling
    /// per-line timing; returns the number of line transfers.
    pub fn bulk_transfer(&mut self, bytes: u64, kind: TrafficKind) -> u64 {
        self.traffic.add(kind, bytes);
        bytes.div_ceil(self.line_bytes)
    }

    /// Total line requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Traffic counters.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Bytes per request line.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_completes_after_latency() {
        let mut d = Dram::new(50, 32, 64);
        assert_eq!(d.request(100, TrafficKind::Arcs), 150);
        assert_eq!(d.requests(), 1);
        assert_eq!(d.traffic().arcs, 64);
    }

    #[test]
    fn within_window_requests_pipeline_freely() {
        let mut d = Dram::new(50, 32, 64);
        // 32 simultaneous requests all fit one service window.
        let completions: Vec<u64> = (0..32).map(|_| d.request(0, TrafficKind::Arcs)).collect();
        assert!(completions.iter().all(|&c| c == 50));
    }

    #[test]
    fn overload_queues_into_later_windows() {
        let mut d = Dram::new(50, 4, 64);
        let mut last = 0;
        for _ in 0..8 {
            last = d.request(0, TrafficKind::Arcs);
        }
        // Second batch of 4 waits one full service window.
        assert_eq!(last, 100);
        // A wider window absorbs the same burst at bare latency.
        let mut wide = Dram::new(50, 32, 64);
        let mut wide_last = 0;
        for _ in 0..8 {
            wide_last = wide.request(0, TrafficKind::Arcs);
        }
        assert_eq!(wide_last, 50);
    }

    #[test]
    fn steady_state_bandwidth_is_window_over_latency() {
        // N same-cycle requests sustain inflight/latency lines per cycle.
        let mut d = Dram::new(50, 32, 64);
        let mut last = 0;
        let n: u64 = 1000;
        for _ in 0..n {
            last = d.request(0, TrafficKind::Arcs);
        }
        let expected = 50 * (1 + (n - 1) / 32); // ~1600
        assert_eq!(last, expected);
        assert!(last < n * 50 / 4, "must be far from serialized");
    }

    #[test]
    fn requests_are_order_insensitive() {
        // A request called later but ready earlier is not penalized by the
        // call order (the simulator issues in program order, not time
        // order).
        let mut a = Dram::new(50, 32, 64);
        a.request(1_000, TrafficKind::Arcs);
        let early = a.request(0, TrafficKind::States);
        assert_eq!(early, 50);
    }

    #[test]
    fn traffic_is_categorized() {
        let mut d = Dram::new(50, 32, 64);
        d.request(0, TrafficKind::States);
        d.request(0, TrafficKind::Arcs);
        d.request(0, TrafficKind::Tokens);
        d.request(0, TrafficKind::Overflow);
        d.bulk_transfer(1000, TrafficKind::Acoustic);
        let t = d.traffic();
        assert_eq!(t.states, 64);
        assert_eq!(t.arcs, 64);
        assert_eq!(t.tokens, 64);
        assert_eq!(t.overflow, 64);
        assert_eq!(t.acoustic, 1000);
        assert_eq!(t.search_bytes(), 256);
    }

    #[test]
    fn bulk_transfer_reports_line_count() {
        let mut d = Dram::new(50, 32, 64);
        assert_eq!(d.bulk_transfer(65, TrafficKind::Acoustic), 2);
        assert_eq!(d.bulk_transfer(64, TrafficKind::Acoustic), 1);
    }
}
