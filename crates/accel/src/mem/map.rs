//! Physical address map of the accelerator's main memory.
//!
//! Four regions, mirroring Section III: the WFST state array, the WFST arc
//! array, the token trace (backpointer + word per token, appended as the
//! search runs), and the hash overflow buffer.

use asr_wfst::layout::MemoryLayout;
use asr_wfst::{ArcId, StateId, Wfst};

/// Bytes per token trace record (backpointer + word index).
pub const TOKEN_BYTES: u64 = 8;

/// Main-memory address map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    wfst: MemoryLayout,
    tokens_base: u64,
    overflow_base: u64,
}

impl AddressMap {
    /// Lays out the regions for `wfst`, reserving `token_region` bytes of
    /// token trace before the overflow buffer.
    pub fn new(wfst: &Wfst, token_region: u64) -> Self {
        let layout = MemoryLayout::new(wfst, 0);
        let tokens_base = (layout.end() + 63) & !63;
        let overflow_base = (tokens_base + token_region + 63) & !63;
        Self {
            wfst: layout,
            tokens_base,
            overflow_base,
        }
    }

    /// Address of a state record.
    #[inline]
    pub fn state_addr(&self, state: StateId) -> u64 {
        self.wfst.state_addr(state)
    }

    /// Address of an arc record.
    #[inline]
    pub fn arc_addr(&self, arc: ArcId) -> u64 {
        self.wfst.arc_addr(arc)
    }

    /// Address of the `index`-th token trace record.
    #[inline]
    pub fn token_addr(&self, index: u64) -> u64 {
        self.tokens_base + index * TOKEN_BYTES
    }

    /// Address of the `index`-th overflow slot.
    #[inline]
    pub fn overflow_addr(&self, index: u64) -> u64 {
        self.overflow_base + index * 16
    }

    /// The WFST image layout.
    pub fn wfst(&self) -> &MemoryLayout {
        &self.wfst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    #[test]
    fn regions_do_not_overlap() {
        let w = SynthWfst::generate(&SynthConfig::with_states(1_000)).unwrap();
        let map = AddressMap::new(&w, 1 << 20);
        let last_arc = map.arc_addr(ArcId((w.num_arcs() - 1) as u32));
        assert!(last_arc + 16 <= map.token_addr(0));
        assert!(map.token_addr(0) + (1 << 20) <= map.overflow_addr(0));
    }

    #[test]
    fn token_addresses_are_sequential() {
        let w = SynthWfst::generate(&SynthConfig::with_states(100)).unwrap();
        let map = AddressMap::new(&w, 4096);
        assert_eq!(map.token_addr(1) - map.token_addr(0), TOKEN_BYTES);
        // Eight tokens per 64-byte line: good spatial locality, as the
        // paper notes for the Token cache.
        assert_eq!((map.token_addr(8) - map.token_addr(0)), 64);
    }

    #[test]
    fn regions_are_line_aligned() {
        let w = SynthWfst::generate(&SynthConfig::with_states(123)).unwrap();
        let map = AddressMap::new(&w, 1000);
        assert_eq!(map.token_addr(0) % 64, 0);
        assert_eq!(map.overflow_addr(0) % 64, 0);
    }
}
