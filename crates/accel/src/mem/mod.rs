//! Memory hierarchy models: on-chip caches, the DRAM/controller, and the
//! physical address map.

pub mod cache;
pub mod dram;
pub mod map;

pub use cache::{Access, Cache, CacheStats};
pub use dram::{Dram, TrafficKind, TrafficStats};
pub use map::AddressMap;
