//! Decoupled access-execute prefetch machinery (Section IV-A).
//!
//! The paper's prefetching architecture for the Arc cache has three parts:
//!
//! * the **Request FIFO** holds miss addresses on their way to the memory
//!   controller (one new request per cycle);
//! * the **Arc FIFO** holds every in-flight arc (hit or miss) together with
//!   its execution payload, in issue order;
//! * the **Reorder Buffer** holds returning memory blocks until their arc
//!   reaches the FIFO head, preventing a younger fill from evicting an
//!   older, not-yet-consumed line.
//!
//! Arc addresses are *computed* after pruning, not predicted, so every
//! prefetch is useful; with 64 entries the FIFO depth covers the 50-cycle
//! memory latency and the pipeline almost never stalls (97% of a perfect
//! cache in the paper).
//!
//! For timing purposes the ensemble behaves as an **in-order commit window
//! of depth N**: an arc may issue only when fewer than N older arcs are
//! still unconsumed, and arcs leave the window in order, at most one per
//! cycle, each no earlier than its data is ready. [`InOrderWindow`] models
//! exactly that contract and is shared by the State Issuer (window 8,
//! Table I) and the Arc Issuer (window 8 baseline / 64 with prefetching).

use std::collections::VecDeque;

/// An in-order issue/commit window of fixed depth.
///
/// Items are pushed in program order with the cycle their data becomes
/// ready; [`InOrderWindow::push`] returns the cycle the item can be
/// consumed by the next pipeline stage (at most one per cycle, in order).
/// [`InOrderWindow::admit`] gates issue when the window is full.
#[derive(Debug, Clone)]
pub struct InOrderWindow {
    depth: usize,
    last_commit: u64,
    // Commit times of the most recent `depth` items.
    recent: VecDeque<u64>,
}

impl InOrderWindow {
    /// Creates a window of the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "window needs at least one slot");
        Self {
            depth,
            last_commit: 0,
            recent: VecDeque::with_capacity(depth),
        }
    }

    /// Earliest cycle an item wanting to issue at `t` may actually issue:
    /// when the window is full, it must wait for the item `depth` positions
    /// back to commit.
    pub fn admit(&self, t: u64) -> u64 {
        if self.recent.len() < self.depth {
            t
        } else {
            t.max(self.recent[self.recent.len() - self.depth])
        }
    }

    /// Registers an item whose data is ready at `ready`; returns its commit
    /// cycle (in-order, one per cycle).
    pub fn push(&mut self, ready: u64) -> u64 {
        let commit = ready.max(self.last_commit + 1);
        self.last_commit = commit;
        self.recent.push_back(commit);
        if self.recent.len() > self.depth {
            self.recent.pop_front();
        }
        commit
    }

    /// Window depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commit cycle of the most recent item (0 if none).
    pub fn last_commit(&self) -> u64 {
        self.last_commit
    }

    /// Empties the window (between frames the pipeline drains).
    pub fn reset(&mut self) {
        self.last_commit = 0;
        self.recent.clear();
    }

    /// Restarts the window at `cycle` (drained, nothing in flight).
    pub fn reset_at(&mut self, cycle: u64) {
        self.last_commit = cycle;
        self.recent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_are_in_order_one_per_cycle() {
        let mut w = InOrderWindow::new(4);
        // Data ready out of order; commits stay ordered.
        let c1 = w.push(10);
        let c2 = w.push(5); // ready earlier, still commits after c1
        let c3 = w.push(30);
        assert_eq!(c1, 10);
        assert_eq!(c2, 11);
        assert_eq!(c3, 30);
    }

    #[test]
    fn admit_gates_when_window_full() {
        let mut w = InOrderWindow::new(2);
        w.push(100);
        w.push(200);
        // Window holds items committing at 100 and 200; a third item
        // issuing at t=0 must wait for the one 2-back (cycle 100).
        assert_eq!(w.admit(0), 100);
        w.push(300);
        // Now the two most recent commit at 200 and 300.
        assert_eq!(w.admit(0), 200);
    }

    #[test]
    fn deep_window_hides_latency() {
        // A stream of misses each ready 50 cycles after issue. With a deep
        // window, steady-state throughput is 1/cycle; with a shallow one,
        // issue stalls on commit.
        let throughput = |depth: usize| -> u64 {
            let mut w = InOrderWindow::new(depth);
            let mut issue = 0u64;
            let mut last = 0u64;
            for _ in 0..200 {
                issue = w.admit(issue) + 1; // 1-cycle tag check
                last = w.push(issue + 50);
            }
            last
        };
        let shallow = throughput(8);
        let deep = throughput(64);
        assert!(deep < shallow, "deep window must finish earlier");
        // Deep window: ~200 cycles + latency; shallow: ~200/8*50.
        assert!(deep <= 200 + 60);
        assert!(shallow >= 1000);
    }

    #[test]
    fn hits_flow_at_full_rate() {
        let mut w = InOrderWindow::new(8);
        let mut last = 0;
        for i in 0..100u64 {
            let t = w.admit(i) + 1;
            last = w.push(t);
        }
        assert_eq!(last, 100);
    }

    #[test]
    fn reset_at_restarts_clean() {
        let mut w = InOrderWindow::new(2);
        w.push(1000);
        w.reset_at(2000);
        assert_eq!(w.admit(0), 0);
        assert_eq!(w.push(0), 2001);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_rejected() {
        InOrderWindow::new(0);
    }
}
