//! Human-readable report of one simulated decode.
//!
//! Formats the counters of [`crate::stats::SimStats`] together with the
//! energy/area models into the kind of summary an architecture paper's
//! evaluation section is written from. Used by the examples; everything
//! here is derived, nothing is computed.

use crate::config::AcceleratorConfig;
use crate::energy::{AreaModel, EnergyBreakdown, EnergyModel};
use crate::sim::SimResult;
use std::fmt;

/// A formatted decode report.
#[derive(Debug, Clone)]
pub struct SimReport {
    cfg: AcceleratorConfig,
    cycles: u64,
    seconds: f64,
    frames: usize,
    arcs: u64,
    eps_arcs: u64,
    cycles_per_arc: f64,
    rtf: f64,
    arc_miss: f64,
    state_miss: f64,
    token_miss: f64,
    hash_cpr: f64,
    traffic_mb: [f64; 4],
    direct_fraction: f64,
    energy: EnergyBreakdown,
    power_w: f64,
    area_mm2: f64,
}

impl SimReport {
    /// Builds the report from a result, applying the default energy and
    /// area models.
    pub fn new(cfg: &AcceleratorConfig, result: &SimResult) -> Self {
        let s = &result.stats;
        let energy = EnergyModel::default().energy(cfg, s);
        let seconds = s.seconds(cfg.frequency_hz);
        let direct_total = s.state_fetches + s.state_fetches_avoided;
        Self {
            cfg: cfg.clone(),
            cycles: s.cycles,
            seconds,
            frames: s.frames,
            arcs: s.arcs_processed,
            eps_arcs: s.eps_arcs_processed,
            cycles_per_arc: s.cycles_per_arc(),
            rtf: s.real_time_factor(cfg.frequency_hz),
            arc_miss: s.arc_cache.miss_ratio(),
            state_miss: s.state_cache.miss_ratio(),
            token_miss: s.token_cache.miss_ratio(),
            hash_cpr: s.hash.avg_cycles_per_request(),
            traffic_mb: [
                s.traffic.states as f64 / 1e6,
                s.traffic.arcs as f64 / 1e6,
                s.traffic.tokens as f64 / 1e6,
                s.traffic.overflow as f64 / 1e6,
            ],
            direct_fraction: if direct_total == 0 {
                0.0
            } else {
                s.state_fetches_avoided as f64 / direct_total as f64
            },
            energy,
            power_w: energy.power_w(seconds),
            area_mm2: AreaModel.area(cfg).total_mm2(),
        }
    }

    /// Average power in watts.
    pub fn power_w(&self) -> f64 {
        self.power_w
    }

    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design point      {}", self.cfg.design.label())?;
        writeln!(f, "-- performance ------------------------------")?;
        writeln!(f, "cycles            {:>14}", self.cycles)?;
        writeln!(f, "wall time         {:>11.3} ms", self.seconds * 1e3)?;
        writeln!(f, "frames            {:>14}", self.frames)?;
        writeln!(
            f,
            "arcs evaluated    {:>14}  ({} epsilon)",
            self.arcs + self.eps_arcs,
            self.eps_arcs
        )?;
        writeln!(f, "cycles per arc    {:>14.2}", self.cycles_per_arc)?;
        writeln!(f, "real-time factor  {:>13.1}x", self.rtf)?;
        writeln!(f, "-- memory system ----------------------------")?;
        writeln!(
            f,
            "miss ratios       arc {:>5.1}%  state {:>5.1}%  token {:>5.1}%",
            100.0 * self.arc_miss,
            100.0 * self.state_miss,
            100.0 * self.token_miss
        )?;
        writeln!(f, "hash cycles/req   {:>14.3}", self.hash_cpr)?;
        writeln!(
            f,
            "off-chip traffic  s/a/t/o = {:.2}/{:.2}/{:.2}/{:.2} MB",
            self.traffic_mb[0], self.traffic_mb[1], self.traffic_mb[2], self.traffic_mb[3]
        )?;
        if self.cfg.design.state_opt() {
            writeln!(
                f,
                "direct arc index  {:>13.1}% of state resolutions",
                100.0 * self.direct_fraction
            )?;
        }
        writeln!(f, "-- energy / area ----------------------------")?;
        writeln!(
            f,
            "energy            {:>11.3} mJ",
            self.energy.total_j() * 1e3
        )?;
        writeln!(
            f,
            "  caches/hash/dram {:>6.2}/{:.2}/{:.2} mJ",
            self.energy.caches_j * 1e3,
            self.energy.hash_j * 1e3,
            self.energy.dram_j * 1e3
        )?;
        writeln!(f, "power             {:>11.1} mW", self.power_w * 1e3)?;
        write!(f, "area              {:>11.2} mm2", self.area_mm2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;
    use crate::sim::Simulator;
    use asr_acoustic::scores::AcousticTable;
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn report(design: DesignPoint) -> SimReport {
        let wfst = SynthWfst::generate(&SynthConfig::with_states(3_000)).unwrap();
        let scores = AcousticTable::random(10, wfst.num_phones() as usize, (0.5, 4.0), 1);
        let cfg = AcceleratorConfig::for_design(design).with_beam(8.0);
        let result = Simulator::new(cfg.clone())
            .decode_wfst(&wfst, &scores)
            .unwrap();
        SimReport::new(&cfg, &result)
    }

    #[test]
    fn report_contains_all_sections() {
        let text = report(DesignPoint::Base).to_string();
        assert!(text.contains("performance"));
        assert!(text.contains("memory system"));
        assert!(text.contains("energy / area"));
        assert!(text.contains("cycles per arc"));
        assert!(
            !text.contains("direct arc index"),
            "base has no direct unit"
        );
    }

    #[test]
    fn state_opt_report_shows_direct_fraction() {
        let text = report(DesignPoint::StateAndArc).to_string();
        assert!(text.contains("direct arc index"));
    }

    #[test]
    fn derived_quantities_are_positive() {
        let r = report(DesignPoint::ArcPrefetch);
        assert!(r.power_w() > 0.0);
        assert!(r.energy_j() > 0.0);
    }
}
