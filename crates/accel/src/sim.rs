//! The cycle-accurate accelerator simulator.
//!
//! Execution-driven: the simulator *performs* the Viterbi beam search
//! (producing the same best path as [`asr_decoder::search::ViterbiDecoder`];
//! the differential suite in `tests/sim_token_table_equivalence.rs` pins it
//! byte-identical) while a scoreboard timing model tracks when every
//! hardware structure would have produced each value.
//!
//! # Functional search vs. timing scoreboard
//!
//! The functional side of the search — token insertion with best-ingoing
//! relaxation, the running frame-best that drives prune-on-insert, the
//! epsilon fixpoint, and backpointer recording — runs on the same verified
//! structures as the software decoder: the epoch-tagged
//! [`asr_decoder::token_table::TokenTable`] (double-buffered, its active
//! list standing in for the hardware's insertion-ordered token linked
//! list) and the [`asr_decoder::lattice::Lattice`] backpointer trace. The
//! simulator owns **no search state of its own**: there is exactly one
//! search implementation in the workspace, and the simulator is one more
//! execution shape of it.
//!
//! The timing model rides along as an observer. Every insert attempt into
//! a token table reports its slot-level outcome
//! ([`asr_decoder::token_table::RelaxOutcome`]) through the
//! [`asr_decoder::token_table::InsertObserver`] hook; the simulator's
//! `TokenIssue` observer converts each outcome into hash-probe cycles,
//! collision chains, and overflow round trips on the
//! [`crate::hash::HashTable`] timing model — which itself stores no search
//! state, only chain positions keyed off the same per-state slots.
//!
//! # Pipeline model
//!
//! The five stages of Figure 3 are modelled with per-resource time cursors
//! and in-order windows:
//!
//! * **token fetch** — the State Issuer walks the current table's active
//!   list (the hardware's linked token list), one token per cycle, and
//!   prunes against `frame_best + beam`;
//! * **state resolve** — surviving tokens fetch their 64-bit state record
//!   through the State cache (8 in flight, in order). With the Section IV-B
//!   optimization, states in the sorted region skip the fetch entirely: the
//!   comparator/offset unit computes the arc index directly;
//! * **arc fetch** — all outgoing arcs stream through the Arc cache, one
//!   tag check per cycle. The in-order window is 8 deep in the base design
//!   and 64 deep with the Section IV-A prefetcher (Arc FIFO + Request FIFO
//!   + Reorder Buffer), which is what lets misses overlap;
//! * **acoustic + likelihood** — one arc per cycle: the phone's score is
//!   read from the Acoustic Likelihood Buffer and the three-way log-space
//!   sum of Equation 1 is formed;
//! * **token issue** — every evaluated arc probes the next-frame hash
//!   table (collision chains cost extra cycles; overflow spills pay a DRAM
//!   round trip); improved tokens append their backpointer + word record
//!   through the Token cache.
//!
//! Epsilon arcs are evaluated when their token is expanded (no acoustic
//! lookup, destination goes to the *current* frame's table), which is the
//! same fixpoint as the reference decoder's post-frame epsilon closure as
//! long as arc weights are non-negative — guaranteed by construction in
//! this workspace.
//!
//! The only stall sources are cache misses and hash collisions, exactly as
//! the paper states (Section IV).

use crate::config::AcceleratorConfig;
use crate::hash::HashTable;
use crate::mem::{AddressMap, Cache, Dram, TrafficKind};
use crate::prefetch::InOrderWindow;
use crate::stats::SimStats;
use asr_acoustic::scores::AcousticTable;
use asr_decoder::lattice::{Lattice, TraceId};
use asr_decoder::token_table::{InsertObserver, RelaxOutcome, TokenTable};
use asr_wfst::sorted::{DirectIndexUnit, SortedWfst};
use asr_wfst::{ArcId, Result as WfstResult, StateId, Wfst, WfstError, WordId};

/// A WFST prepared for a particular design point: plain layout for the base
/// design, degree-sorted layout (plus the comparator unit) when the
/// Section IV-B optimization is enabled.
#[derive(Debug, Clone)]
pub enum PreparedWfst {
    /// Original layout; every expanded token fetches its state record.
    Plain(Wfst),
    /// Degree-sorted layout with the direct-index hardware.
    Sorted(SortedWfst),
}

impl PreparedWfst {
    /// Prepares `wfst` as `cfg.design` requires.
    ///
    /// # Errors
    ///
    /// Propagates layout-rebuild validation errors.
    pub fn new(wfst: &Wfst, cfg: &AcceleratorConfig) -> WfstResult<Self> {
        if cfg.design.state_opt() {
            Ok(Self::Sorted(SortedWfst::with_threshold(
                wfst,
                cfg.state_opt_threshold,
            )?))
        } else {
            Ok(Self::Plain(wfst.clone()))
        }
    }

    /// The transducer actually walked by the simulator.
    pub fn wfst(&self) -> &Wfst {
        match self {
            Self::Plain(w) => w,
            Self::Sorted(s) => s.wfst(),
        }
    }

    /// The direct-index unit, when the layout provides one.
    pub fn direct(&self) -> Option<&DirectIndexUnit> {
        match self {
            Self::Plain(_) => None,
            Self::Sorted(s) => Some(s.unit()),
        }
    }

    /// Maps a state of the prepared layout back to the original numbering.
    pub fn to_original(&self, state: StateId) -> StateId {
        match self {
            Self::Plain(_) => state,
            Self::Sorted(s) => s.unmap_state(state),
        }
    }
}

/// Outcome of one simulated decode.
///
/// The result fields follow the same contract as
/// [`asr_decoder::search::DecodeResult`], state ids translated back to the
/// *original* WFST numbering: when no token survives to the end of the
/// utterance the sentinel is an empty word sequence, `cost` of
/// [`f32::INFINITY`], `reached_final == false`, and `best_state` pinned to
/// the start state; a zero-frame decode reports the best token of the
/// start state's epsilon closure (cost `0.0` at the start state when that
/// closure is trivial). The differential suite asserts the two
/// implementations agree on all of it.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Words on the best path.
    pub words: Vec<WordId>,
    /// Best path cost (with final cost when reached); [`f32::INFINITY`]
    /// when the beam killed every path.
    pub cost: f32,
    /// Whether a final state terminated the path.
    pub reached_final: bool,
    /// Winning state, in the *original* WFST numbering; the start state
    /// when no token survived.
    pub best_state: StateId,
    /// All hardware counters.
    pub stats: SimStats,
}

/// The simulator. One instance per decode (its caches and hash tables carry
/// state across frames of a single utterance).
#[derive(Debug)]
pub struct Simulator {
    cfg: AcceleratorConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Convenience entry point: prepares the WFST for this design point and
    /// decodes.
    ///
    /// # Errors
    ///
    /// Propagates layout-preparation errors, and layout-corruption errors
    /// detected during the decode (see [`Simulator::decode`]).
    pub fn decode_wfst(&self, wfst: &Wfst, scores: &AcousticTable) -> WfstResult<SimResult> {
        let prepared = PreparedWfst::new(wfst, &self.cfg)?;
        self.decode(&prepared, scores)
    }

    /// Simulates the decode of `scores` over `prepared`.
    ///
    /// # Errors
    ///
    /// Returns [`WfstError::LayoutMismatch`] if the prepared layout's
    /// direct-index unit disagrees with the state array it describes (a
    /// corrupted or stale sorted layout) — the hardware would silently
    /// walk the wrong arcs, so the model refuses instead.
    pub fn decode(&self, prepared: &PreparedWfst, scores: &AcousticTable) -> WfstResult<SimResult> {
        Engine::new(&self.cfg, prepared, scores).run()
    }
}

/// The Token Issuer's timing, hung off the token table's insert events:
/// every relax attempt (stored or rejected — a rejected insert still costs
/// a probe in hardware) pays the hash access on the observed table, plus a
/// DRAM round trip when the entry spills to the memory-backed overflow
/// buffer.
struct TokenIssue<'x> {
    hash: &'x mut HashTable,
    dram: &'x mut Dram,
    cursor: &'x mut u64,
}

impl InsertObserver for TokenIssue<'_> {
    fn observe(&mut self, state: u32, outcome: RelaxOutcome) {
        let hacc = self.hash.access(state);
        debug_assert_eq!(
            hacc.existing,
            outcome.existing(),
            "hash timing model out of sync with token table slots at state {state}"
        );
        *self.cursor += hacc.cycles;
        if hacc.overflow {
            *self.cursor = self.dram.request(*self.cursor, TrafficKind::Overflow);
        }
    }
}

/// Writes a token's backpointer + word record through the Token cache.
/// Writes are buffered (32 in-flight tokens) so they do not stall the
/// pipeline; they do generate fills and writebacks.
fn write_token(
    map: &AddressMap,
    token_cache: &mut Cache,
    dram: &mut Dram,
    at_cycle: u64,
    trace: TraceId,
) {
    let addr = map.token_addr(trace.0 as u64);
    match token_cache.access(addr, true) {
        crate::mem::Access::Hit => {}
        crate::mem::Access::Miss { writeback } => {
            dram.request(at_cycle, TrafficKind::Tokens);
            if writeback.is_some() {
                dram.request(at_cycle, TrafficKind::Tokens);
            }
        }
    }
}

/// Conventional-prefetcher reaction to an arc-cache demand miss: guess
/// the next line from the miss stream, spend DRAM bandwidth fetching
/// it, and install it (possibly evicting useful lines). The decoupled
/// architecture of Section IV-A never calls this — its addresses are
/// computed, not predicted.
fn hw_prefetch_arc(
    cfg: &AcceleratorConfig,
    last_arc_miss: &mut Option<u64>,
    arc_cache: &mut Cache,
    dram: &mut Dram,
    miss_line: u64,
    at_cycle: u64,
) {
    use crate::config::HwPrefetcher;
    let predicted = match cfg.hw_prefetcher {
        HwPrefetcher::None => None,
        HwPrefetcher::NextLine => Some(miss_line + 64),
        HwPrefetcher::Stride => last_arc_miss
            .and_then(|prev| miss_line.checked_add(miss_line.wrapping_sub(prev)))
            .filter(|&p| p != miss_line),
    };
    *last_arc_miss = Some(miss_line);
    if let Some(addr) = predicted {
        if arc_cache.prefetch(addr) {
            // The speculative line transfer competes with demand
            // misses for controller slots and burns DRAM energy.
            dram.request(at_cycle, TrafficKind::Arcs);
        }
    }
}

/// Per-decode machinery (borrowed config + workload, owned hardware state).
///
/// `cur`/`next` are the double-buffered token tables — the functional
/// twin of the two on-chip hash tables; `hash_cur`/`hash_next` are their
/// timing shadows, swapped and cleared in lockstep. `expanded` is the
/// State Issuer's per-wave dedup ("already expanded at this or a better
/// cost"), itself an epoch-tagged table so a wave reset is one bump.
struct Engine<'a> {
    cfg: &'a AcceleratorConfig,
    prepared: &'a PreparedWfst,
    scores: &'a AcousticTable,
    map: AddressMap,
    state_cache: Cache,
    arc_cache: Cache,
    token_cache: Cache,
    dram: Dram,
    hash_cur: HashTable,
    hash_next: HashTable,
    cur: TokenTable<TraceId>,
    next: TokenTable<TraceId>,
    expanded: TokenTable<()>,
    /// Wave worklist: seeded from the active list, extended by stored
    /// epsilon relaxes, drained FIFO (the hardware's linked-list walk).
    worklist: Vec<u32>,
    lattice: Lattice,
    stats: SimStats,
    // Last arc-miss line, for the stride prefetcher's delta prediction.
    last_arc_miss: Option<u64>,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a AcceleratorConfig,
        prepared: &'a PreparedWfst,
        scores: &'a AcousticTable,
    ) -> Self {
        let wfst = prepared.wfst();
        let num_states = wfst.num_states();
        // Generous token region: the trace is append-only.
        let map = AddressMap::new(wfst, 1 << 34);
        let mut hash_cur = HashTable::new(cfg.hash_entries, cfg.ideal_hash);
        let mut hash_next = HashTable::new(cfg.hash_entries, cfg.ideal_hash);
        hash_cur.reserve_states(num_states);
        hash_next.reserve_states(num_states);
        Self {
            cfg,
            prepared,
            scores,
            map,
            state_cache: Cache::new(cfg.state_cache, cfg.perfect_state_cache),
            arc_cache: Cache::new(cfg.arc_cache, cfg.perfect_arc_cache),
            token_cache: Cache::new(cfg.token_cache, cfg.perfect_token_cache),
            dram: Dram::new(cfg.mem_latency, cfg.mem_inflight, 64),
            hash_cur,
            hash_next,
            cur: TokenTable::new(num_states, TraceId::ROOT),
            next: TokenTable::new(num_states, TraceId::ROOT),
            expanded: TokenTable::new(num_states, ()),
            worklist: Vec::new(),
            lattice: Lattice::new(),
            stats: SimStats::default(),
            last_arc_miss: None,
        }
    }

    fn run(mut self) -> WfstResult<SimResult> {
        let wfst = self.prepared.wfst();
        let start = wfst.start().0;
        self.cur.begin_frame();
        let mut init_cursor = 0u64;
        self.cur.relax_observed(
            start,
            0.0,
            || self.lattice.push(TraceId::ROOT, WordId::NONE),
            &mut TokenIssue {
                hash: &mut self.hash_cur,
                dram: &mut self.dram,
                cursor: &mut init_cursor,
            },
        );
        write_token(
            &self.map,
            &mut self.token_cache,
            &mut self.dram,
            0,
            self.cur.payload(start),
        );

        // Initial epsilon closure (no frame consumed, unpruned).
        let mut cycle = self.wave(None, 0)?;

        // Acoustic DMA of the first frame must land before decode starts.
        let link_bytes_per_cycle = 16;
        let dma_cycles = |bytes: usize| (bytes as u64).div_ceil(link_bytes_per_cycle);
        if self.scores.num_frames() > 0 {
            self.dram
                .bulk_transfer(self.scores.frame_bytes() as u64, TrafficKind::Acoustic);
            cycle = cycle.max(dma_cycles(self.scores.frame_bytes()));
        }

        for frame in 0..self.scores.num_frames() {
            // Double buffering: the next frame's scores stream in while this
            // frame decodes.
            let mut next_scores_ready = cycle;
            if frame + 1 < self.scores.num_frames() {
                self.dram
                    .bulk_transfer(self.scores.frame_bytes() as u64, TrafficKind::Acoustic);
                next_scores_ready = cycle + dma_cycles(self.scores.frame_bytes());
            }
            let tokens_before = self.stats.tokens_fetched;
            let arcs_before = self.stats.arcs_processed + self.stats.eps_arcs_processed;
            let end = self.wave(Some(frame), cycle)?;
            self.stats.per_frame.push(crate::stats::FrameStats {
                cycles: end - cycle,
                tokens: self.stats.tokens_fetched - tokens_before,
                arcs: self.stats.arcs_processed + self.stats.eps_arcs_processed - arcs_before,
            });
            cycle = end.max(next_scores_ready);
            if self.cur.is_empty() {
                break;
            }
        }

        // Final epsilon closure so the last frame's epsilon-reachable
        // tokens participate in final-state selection.
        cycle = self.wave(None, cycle)?;

        self.stats.frames = self.scores.num_frames();
        self.stats.cycles = cycle;
        self.stats.state_cache = self.state_cache.stats();
        self.stats.arc_cache = self.arc_cache.stats();
        self.stats.token_cache = self.token_cache.stats();
        let mut hash = self.hash_cur.stats();
        let other = self.hash_next.stats();
        hash.requests += other.requests;
        hash.cycles += other.cycles;
        hash.collisions += other.collisions;
        hash.overflow_accesses += other.overflow_accesses;
        hash.peak_occupancy = hash.peak_occupancy.max(other.peak_occupancy);
        self.stats.hash = hash;
        self.stats.traffic = self.dram.traffic();
        self.stats.mem_requests = self.dram.requests();

        Ok(self.finish())
    }

    /// Runs one wave through the pipeline.
    ///
    /// `frame = Some(f)`: expand emitting arcs into the next-frame table
    /// (with frame `f`'s acoustic scores) and epsilon arcs into the current
    /// table, with beam pruning. `frame = None`: epsilon-only closure,
    /// unpruned (initialization and finalization).
    ///
    /// Returns the cycle at which the wave has fully drained. On a
    /// `Some(f)` wave, the token tables (and their hash shadows) swap:
    /// `cur` becomes the next frame's tokens.
    fn wave(&mut self, frame: Option<usize>, start: u64) -> WfstResult<u64> {
        let Engine {
            cfg,
            prepared,
            scores,
            map,
            state_cache,
            arc_cache,
            token_cache,
            dram,
            hash_cur,
            hash_next,
            cur,
            next,
            expanded,
            worklist,
            lattice,
            stats,
            last_arc_miss,
        } = self;
        let wfst = prepared.wfst();
        let emitting = frame.is_some();
        let threshold = if emitting {
            // The running frame-best was maintained on insert (the
            // hardware's likelihood max-reduction); no O(active) rescan.
            #[cfg(debug_assertions)]
            {
                let rescan = cur
                    .active()
                    .iter()
                    .map(|&s| cur.cost(s))
                    .fold(f32::INFINITY, f32::min);
                assert_eq!(
                    rescan,
                    cur.best(),
                    "running frame-best diverged from the active-list rescan"
                );
            }
            cur.best() + cfg.beam
        } else {
            f32::INFINITY
        };

        if emitting {
            next.begin_frame();
        }
        expanded.begin_frame();
        // The wave walks the tokens in insertion order — the hardware's
        // linked-list walk is the table's active list. Stored epsilon
        // relaxes re-enter at the tail.
        worklist.clear();
        worklist.extend_from_slice(cur.active());
        let mut cursor = 0usize;

        // Timing cursors. The back-end (Acoustic Likelihood Issuer ->
        // Likelihood Evaluation -> Token Issuer hash update) processes one
        // arc at a time (Table I: 1 in-flight arc at the acoustic issuer),
        // so it is a single serial cursor.
        let mut token_cursor = start;
        let mut arc_tag_cursor = start;
        let mut backend_cursor = start;
        let mut state_window = InOrderWindow::new(cfg.state_window());
        let mut arc_window = InOrderWindow::new(cfg.arc_window());
        state_window.reset_at(start);
        arc_window.reset_at(start);

        while cursor < worklist.len() {
            let state_raw = worklist[cursor];
            cursor += 1;
            let Some((cell_cost, cell_trace)) = cur.get(state_raw) else {
                continue;
            };
            // Token fetch: one linked-list read per cycle.
            token_cursor += 1;
            stats.tokens_fetched += 1;
            stats.fp_compares += 1; // pruning comparison
            if cell_cost > threshold {
                stats.tokens_pruned += 1;
                continue;
            }
            if !expanded.relax(state_raw, cell_cost, || ()) {
                continue; // already expanded at this or a better cost
            }

            let state = StateId(state_raw);
            let entry = wfst.state(state);
            // Resolve the state's arc range: direct computation or fetch.
            let (range, state_ready) =
                match prepared.direct().and_then(|u| u.direct_arc_index(state)) {
                    Some((first, degree)) => {
                        stats.state_fetches_avoided += 1;
                        if first != entry.first_arc || degree as usize != entry.num_arcs() {
                            // A silently mis-indexed arc walk would decode
                            // garbage; refuse the corrupted layout instead.
                            return Err(WfstError::LayoutMismatch {
                                state,
                                computed_first: first,
                                computed_degree: degree as usize,
                                actual_first: entry.first_arc,
                                actual_degree: entry.num_arcs(),
                            });
                        }
                        (entry.arc_range(), token_cursor)
                    }
                    None => {
                        if entry.num_arcs() == 0 {
                            continue;
                        }
                        stats.state_fetches += 1;
                        let t0 = state_window.admit(token_cursor);
                        let acc = state_cache.access(map.state_addr(state), false);
                        let ready = if acc.is_hit() {
                            t0 + 1
                        } else {
                            dram.request(t0 + 1, TrafficKind::States)
                        };
                        (entry.arc_range(), state_window.push(ready))
                    }
                };

            for arc_idx in range {
                let arc = wfst.arc(ArcId::from_index(arc_idx));
                // Arc fetch: tag check at one per cycle, in-order window.
                // Closure waves evaluate epsilon arcs only, but every
                // record still streams through the cache (the hardware
                // fetches the state's arcs as one contiguous burst).
                let mut t = state_ready.max(arc_tag_cursor + 1);
                t = arc_window.admit(t);
                arc_tag_cursor = t;
                stats.arc_fetches += 1;
                let addr = map.arc_addr(ArcId::from_index(arc_idx));
                let acc = arc_cache.access(addr, false);
                let ready = if acc.is_hit() {
                    t + 1
                } else {
                    let done = dram.request(t + 1, TrafficKind::Arcs);
                    let line = arc_cache.line_addr(addr);
                    hw_prefetch_arc(cfg, last_arc_miss, arc_cache, dram, line, t + 1);
                    done
                };
                let commit = arc_window.push(ready);

                if arc.is_epsilon() {
                    // Evaluate (one addition, no acoustic lookup), then the
                    // Token Issuer's hash update — serial per arc.
                    backend_cursor = backend_cursor.max(commit) + 1;
                    stats.eps_arcs_processed += 1;
                    stats.fp_adds += 1;
                    let cost = cell_cost + arc.weight;
                    stats.fp_compares += 1;
                    let stored = cur.relax_observed(
                        arc.dest.0,
                        cost,
                        || lattice.push(cell_trace, arc.olabel),
                        &mut TokenIssue {
                            hash: hash_cur,
                            dram,
                            cursor: &mut backend_cursor,
                        },
                    );
                    if stored {
                        stats.tokens_created += 1;
                        write_token(
                            map,
                            token_cache,
                            dram,
                            backend_cursor,
                            cur.payload(arc.dest.0),
                        );
                        worklist.push(arc.dest.0);
                    }
                } else if emitting {
                    let f = frame.expect("emitting wave has a frame");
                    // Acoustic buffer read (one in-flight arc), the
                    // three-way log-space sum, then the hash update.
                    backend_cursor = backend_cursor.max(commit) + 2;
                    stats.arcs_processed += 1;
                    stats.fp_adds += 2;
                    let cost = cell_cost + arc.weight + scores.cost(f, arc.ilabel);
                    stats.fp_compares += 1;
                    let stored = next.relax_observed(
                        arc.dest.0,
                        cost,
                        || lattice.push(cell_trace, arc.olabel),
                        &mut TokenIssue {
                            hash: hash_next,
                            dram,
                            cursor: &mut backend_cursor,
                        },
                    );
                    if stored {
                        stats.tokens_created += 1;
                        write_token(
                            map,
                            token_cache,
                            dram,
                            backend_cursor,
                            next.payload(arc.dest.0),
                        );
                    }
                }
                // Non-matching arcs in a closure wave are fetched and
                // dropped (no evaluation slot consumed).
            }
        }

        let end = token_cursor
            .max(arc_tag_cursor)
            .max(backend_cursor)
            .max(state_window.last_commit())
            .max(arc_window.last_commit());

        if emitting {
            // Frame boundary: the next-frame table (and its timing shadow)
            // becomes current.
            std::mem::swap(cur, next);
            std::mem::swap(hash_cur, hash_next);
            hash_next.clear();
        }
        Ok(end)
    }

    /// End-of-utterance selection, exactly [`ViterbiDecoder`]'s contract:
    /// prefer tokens in final states (cost + final cost), fall back to the
    /// globally cheapest token, and break ties by ascending state id in
    /// the *original* numbering — so a degree-sorted layout cannot flip
    /// the winner on equal costs.
    ///
    /// [`ViterbiDecoder`]: asr_decoder::search::ViterbiDecoder
    fn finish(self) -> SimResult {
        let wfst = self.prepared.wfst();
        let mut states: Vec<u32> = self.cur.active().to_vec();
        states.sort_unstable_by_key(|&s| self.prepared.to_original(StateId(s)).0);
        let mut best_final: Option<(u32, f32, TraceId)> = None;
        let mut best_any: Option<(u32, f32, TraceId)> = None;
        for &state in &states {
            let (cost, trace) = self
                .cur
                .get(state)
                .expect("active-list states are live by construction");
            if best_any.is_none_or(|(_, c, _)| cost < c) {
                best_any = Some((state, cost, trace));
            }
            let f = wfst.final_cost(StateId(state));
            if f.is_finite() {
                let total = cost + f;
                if best_final.is_none_or(|(_, c, _)| total < c) {
                    best_final = Some((state, total, trace));
                }
            }
        }
        let (reached_final, chosen) = match (best_final, best_any) {
            (Some(f), _) => (true, Some(f)),
            (None, any) => (false, any),
        };
        match chosen {
            Some((state, cost, trace)) => SimResult {
                words: self.lattice.backtrack(trace),
                cost,
                reached_final,
                best_state: self.prepared.to_original(StateId(state)),
                stats: self.stats,
            },
            None => SimResult {
                words: Vec::new(),
                cost: f32::INFINITY,
                reached_final: false,
                best_state: self.prepared.to_original(wfst.start()),
                stats: self.stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;
    use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
        let w = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(seed)).unwrap();
        let scores =
            AcousticTable::random(frames, w.num_phones() as usize, (0.5, 4.0), seed ^ 0xABCD);
        (w, scores)
    }

    fn reference(
        wfst: &Wfst,
        scores: &AcousticTable,
        beam: f32,
    ) -> asr_decoder::search::DecodeResult {
        ViterbiDecoder::new(DecodeOptions::with_beam(beam)).decode(wfst, scores)
    }

    #[test]
    fn base_design_matches_reference_decoder() {
        let (w, scores) = workload(2_000, 20, 5);
        let cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0);
        let sim = Simulator::new(cfg).decode_wfst(&w, &scores).unwrap();
        let reference = reference(&w, &scores, 6.0);
        assert_eq!(sim.cost, reference.cost);
        assert_eq!(sim.words, reference.words);
        assert_eq!(sim.reached_final, reference.reached_final);
        assert_eq!(sim.best_state, reference.best_state);
    }

    #[test]
    fn all_design_points_are_functionally_identical() {
        let (w, scores) = workload(3_000, 15, 9);
        let reference = reference(&w, &scores, 6.0);
        for design in DesignPoint::ALL {
            let cfg = AcceleratorConfig::for_design(design).with_beam(6.0);
            let sim = Simulator::new(cfg).decode_wfst(&w, &scores).unwrap();
            assert_eq!(sim.cost, reference.cost, "{design:?}");
            assert_eq!(sim.words, reference.words, "{design:?}");
            assert_eq!(sim.best_state, reference.best_state, "{design:?}");
        }
    }

    #[test]
    fn prefetcher_reduces_cycles() {
        let (w, scores) = workload(20_000, 30, 2);
        let base = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let pf =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(6.0))
                .decode_wfst(&w, &scores)
                .unwrap();
        assert!(
            pf.stats.cycles < base.stats.cycles,
            "prefetch {} !< base {}",
            pf.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn state_opt_cuts_state_traffic() {
        let (w, scores) = workload(20_000, 30, 3);
        let base = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let opt =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::StateOpt).with_beam(6.0))
                .decode_wfst(&w, &scores)
                .unwrap();
        assert!(opt.stats.traffic.states < base.stats.traffic.states / 2);
        assert!(opt.stats.state_fetches_avoided > 0);
        // Total off-chip traffic shrinks (Figure 13).
        assert!(opt.stats.traffic.search_bytes() < base.stats.traffic.search_bytes());
    }

    #[test]
    fn perfect_caches_beat_real_caches() {
        let (w, scores) = workload(20_000, 20, 4);
        let real = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let perfect = Simulator::new(
            AcceleratorConfig::for_design(DesignPoint::Base)
                .with_beam(6.0)
                .with_perfect_caches(),
        )
        .decode_wfst(&w, &scores)
        .unwrap();
        assert!(perfect.stats.cycles < real.stats.cycles);
        assert_eq!(
            perfect.stats.traffic.arcs, 0,
            "perfect caches fetch nothing"
        );
        assert_eq!(perfect.cost, real.cost, "idealization is timing-only");
    }

    #[test]
    fn prefetch_approaches_perfect_arc_cache() {
        let (w, scores) = workload(30_000, 30, 6);
        let beam = 6.0;
        let pf =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(beam))
                .decode_wfst(&w, &scores)
                .unwrap();
        let mut perfect_cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(beam);
        perfect_cfg.perfect_arc_cache = true;
        let perfect = Simulator::new(perfect_cfg)
            .decode_wfst(&w, &scores)
            .unwrap();
        let ratio = perfect.stats.cycles as f64 / pf.stats.cycles as f64;
        assert!(
            ratio > 0.80,
            "prefetcher reaches only {:.2} of perfect-arc-cache performance",
            ratio
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (w, scores) = workload(5_000, 10, 7);
        let r = Simulator::new(AcceleratorConfig::default().with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let s = &r.stats;
        assert_eq!(s.frames, 10);
        assert!(s.cycles > 0);
        assert!(s.tokens_fetched >= s.tokens_pruned);
        assert!(s.arc_fetches >= s.arcs_processed + s.eps_arcs_processed);
        assert_eq!(s.arc_cache.accesses(), s.arc_fetches);
        assert_eq!(s.state_cache.accesses(), s.state_fetches);
        assert!(s.traffic.arcs >= s.arc_cache.misses * 64);
        assert!(s.hash.requests > 0);
        assert!(s.fp_adds > 0 && s.fp_compares > 0);
    }

    #[test]
    fn ideal_hash_never_spends_extra_cycles() {
        let (w, scores) = workload(5_000, 10, 8);
        let r = Simulator::new(
            AcceleratorConfig::default()
                .with_beam(6.0)
                .with_ideal_hash(),
        )
        .decode_wfst(&w, &scores)
        .unwrap();
        assert_eq!(r.stats.hash.avg_cycles_per_request(), 1.0);
        assert_eq!(r.stats.traffic.overflow, 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (w, scores) = workload(3_000, 10, 10);
        let cfg = AcceleratorConfig::final_design().with_beam(6.0);
        let a = Simulator::new(cfg.clone())
            .decode_wfst(&w, &scores)
            .unwrap();
        let b = Simulator::new(cfg).decode_wfst(&w, &scores).unwrap();
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.stats.traffic, b.stats.traffic);
    }

    #[test]
    fn per_frame_stats_cover_every_frame() {
        let (w, scores) = workload(3_000, 12, 21);
        let r = Simulator::new(AcceleratorConfig::default().with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        assert_eq!(r.stats.per_frame.len(), 12);
        let frame_arcs: u64 = r.stats.per_frame.iter().map(|f| f.arcs).sum();
        // All emitting arcs happen inside frames; the init/final epsilon
        // closures may add a few epsilon evaluations outside any frame.
        assert!(frame_arcs >= r.stats.arcs_processed);
        assert!(frame_arcs <= r.stats.arcs_processed + r.stats.eps_arcs_processed);
        let frame_cycles: u64 = r.stats.per_frame.iter().map(|f| f.cycles).sum();
        assert!(frame_cycles <= r.stats.cycles);
        assert!(r.stats.per_frame.iter().all(|f| f.cycles > 0));
    }

    #[test]
    fn empty_utterance_is_handled() {
        let (w, _) = workload(500, 0, 11);
        let scores = AcousticTable::random(0, w.num_phones() as usize, (0.5, 4.0), 1);
        let r = Simulator::new(AcceleratorConfig::default())
            .decode_wfst(&w, &scores)
            .unwrap();
        assert_eq!(r.stats.frames, 0);
        assert!(r.words.is_empty());
    }

    #[test]
    fn corrupted_direct_index_unit_is_refused() {
        use asr_wfst::sorted::DirectIndexUnit;
        let (w, scores) = workload(2_000, 5, 5);
        let cfg = AcceleratorConfig::for_design(DesignPoint::StateOpt).with_beam(6.0);
        let mut sorted = SortedWfst::with_threshold(&w, cfg.state_opt_threshold).unwrap();
        // Shift every offset register: each direct computation now points
        // one arc past the real range start.
        let unit = sorted.unit();
        let offsets: Vec<i64> = (0..unit.threshold() as u32)
            .map(|g| unit.group_offset(g as usize) + 1)
            .collect();
        let boundaries = (1..=unit.threshold())
            .map(|d| unit.group_boundary(d - 1))
            .collect();
        sorted.replace_unit(DirectIndexUnit::from_registers(boundaries, offsets));
        let err = Simulator::new(cfg)
            .decode(&PreparedWfst::Sorted(sorted), &scores)
            .unwrap_err();
        assert!(
            matches!(err, WfstError::LayoutMismatch { .. }),
            "got {err:?}"
        );
    }
}
