//! The cycle-accurate accelerator simulator.
//!
//! Execution-driven: the simulator *performs* the Viterbi beam search
//! (producing the same best path as [`asr_decoder::search::ViterbiDecoder`];
//! integration tests assert it) while a scoreboard timing model tracks when
//! every hardware structure would have produced each value.
//!
//! # Pipeline model
//!
//! The five stages of Figure 3 are modelled with per-resource time cursors
//! and in-order windows:
//!
//! * **token fetch** — the State Issuer walks the current hash table's
//!   linked token list, one token per cycle, and prunes against
//!   `frame_best + beam`;
//! * **state resolve** — surviving tokens fetch their 64-bit state record
//!   through the State cache (8 in flight, in order). With the Section IV-B
//!   optimization, states in the sorted region skip the fetch entirely: the
//!   comparator/offset unit computes the arc index directly;
//! * **arc fetch** — all outgoing arcs stream through the Arc cache, one
//!   tag check per cycle. The in-order window is 8 deep in the base design
//!   and 64 deep with the Section IV-A prefetcher (Arc FIFO + Request FIFO
//!   + Reorder Buffer), which is what lets misses overlap;
//! * **acoustic + likelihood** — one arc per cycle: the phone's score is
//!   read from the Acoustic Likelihood Buffer and the three-way log-space
//!   sum of Equation 1 is formed;
//! * **token issue** — every evaluated arc probes the next-frame hash
//!   table (collision chains cost extra cycles; overflow spills pay a DRAM
//!   round trip); improved tokens append their backpointer + word record
//!   through the Token cache.
//!
//! Epsilon arcs are evaluated when their token is expanded (no acoustic
//! lookup, destination goes to the *current* frame's table), which is the
//! same fixpoint as the reference decoder's post-frame epsilon closure as
//! long as arc weights are non-negative — guaranteed by construction in
//! this workspace.
//!
//! The only stall sources are cache misses and hash collisions, exactly as
//! the paper states (Section IV).

use crate::config::AcceleratorConfig;
use crate::hash::HashTable;
use crate::mem::{AddressMap, Cache, Dram, TrafficKind};
use crate::prefetch::InOrderWindow;
use crate::stats::SimStats;
use asr_acoustic::scores::AcousticTable;
use asr_decoder::lattice::{Lattice, TraceId};
use asr_wfst::sorted::{DirectIndexUnit, SortedWfst};
use asr_wfst::{ArcId, Result as WfstResult, StateId, Wfst, WordId};
use std::collections::{HashMap, VecDeque};

/// A WFST prepared for a particular design point: plain layout for the base
/// design, degree-sorted layout (plus the comparator unit) when the
/// Section IV-B optimization is enabled.
#[derive(Debug, Clone)]
pub enum PreparedWfst {
    /// Original layout; every expanded token fetches its state record.
    Plain(Wfst),
    /// Degree-sorted layout with the direct-index hardware.
    Sorted(SortedWfst),
}

impl PreparedWfst {
    /// Prepares `wfst` as `cfg.design` requires.
    ///
    /// # Errors
    ///
    /// Propagates layout-rebuild validation errors.
    pub fn new(wfst: &Wfst, cfg: &AcceleratorConfig) -> WfstResult<Self> {
        if cfg.design.state_opt() {
            Ok(Self::Sorted(SortedWfst::with_threshold(
                wfst,
                cfg.state_opt_threshold,
            )?))
        } else {
            Ok(Self::Plain(wfst.clone()))
        }
    }

    /// The transducer actually walked by the simulator.
    pub fn wfst(&self) -> &Wfst {
        match self {
            Self::Plain(w) => w,
            Self::Sorted(s) => s.wfst(),
        }
    }

    /// The direct-index unit, when the layout provides one.
    pub fn direct(&self) -> Option<&DirectIndexUnit> {
        match self {
            Self::Plain(_) => None,
            Self::Sorted(s) => Some(s.unit()),
        }
    }

    /// Maps a state of the prepared layout back to the original numbering.
    pub fn to_original(&self, state: StateId) -> StateId {
        match self {
            Self::Plain(_) => state,
            Self::Sorted(s) => s.unmap_state(state),
        }
    }
}

/// Outcome of one simulated decode.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Words on the best path.
    pub words: Vec<WordId>,
    /// Best path cost (with final cost when reached).
    pub cost: f32,
    /// Whether a final state terminated the path.
    pub reached_final: bool,
    /// Winning state, in the *original* WFST numbering.
    pub best_state: StateId,
    /// All hardware counters.
    pub stats: SimStats,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    cost: f32,
    trace: TraceId,
}

/// The simulator. One instance per decode (its caches and hash tables carry
/// state across frames of a single utterance).
#[derive(Debug)]
pub struct Simulator {
    cfg: AcceleratorConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Convenience entry point: prepares the WFST for this design point and
    /// decodes.
    ///
    /// # Errors
    ///
    /// Propagates layout-preparation errors.
    pub fn decode_wfst(&self, wfst: &Wfst, scores: &AcousticTable) -> WfstResult<SimResult> {
        let prepared = PreparedWfst::new(wfst, &self.cfg)?;
        Ok(self.decode(&prepared, scores))
    }

    /// Simulates the decode of `scores` over `prepared`.
    pub fn decode(&self, prepared: &PreparedWfst, scores: &AcousticTable) -> SimResult {
        Engine::new(&self.cfg, prepared, scores).run()
    }
}

/// Per-decode machinery (borrowed config + workload, owned hardware state).
struct Engine<'a> {
    cfg: &'a AcceleratorConfig,
    prepared: &'a PreparedWfst,
    scores: &'a AcousticTable,
    map: AddressMap,
    state_cache: Cache,
    arc_cache: Cache,
    token_cache: Cache,
    dram: Dram,
    hash_cur: HashTable,
    hash_next: HashTable,
    lattice: Lattice,
    stats: SimStats,
    // Last arc-miss line, for the stride prefetcher's delta prediction.
    last_arc_miss: Option<u64>,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a AcceleratorConfig,
        prepared: &'a PreparedWfst,
        scores: &'a AcousticTable,
    ) -> Self {
        let wfst = prepared.wfst();
        // Generous token region: the trace is append-only.
        let map = AddressMap::new(wfst, 1 << 34);
        Self {
            cfg,
            prepared,
            scores,
            map,
            state_cache: Cache::new(cfg.state_cache, cfg.perfect_state_cache),
            arc_cache: Cache::new(cfg.arc_cache, cfg.perfect_arc_cache),
            token_cache: Cache::new(cfg.token_cache, cfg.perfect_token_cache),
            dram: Dram::new(cfg.mem_latency, cfg.mem_inflight, 64),
            hash_cur: HashTable::new(cfg.hash_entries, cfg.ideal_hash),
            hash_next: HashTable::new(cfg.hash_entries, cfg.ideal_hash),
            lattice: Lattice::new(),
            stats: SimStats::default(),
            last_arc_miss: None,
        }
    }

    /// Conventional-prefetcher reaction to an arc-cache demand miss: guess
    /// the next line from the miss stream, spend DRAM bandwidth fetching
    /// it, and install it (possibly evicting useful lines). The decoupled
    /// architecture of Section IV-A never calls this — its addresses are
    /// computed, not predicted.
    fn hw_prefetch_arc(&mut self, miss_line: u64, at_cycle: u64) {
        use crate::config::HwPrefetcher;
        let predicted = match self.cfg.hw_prefetcher {
            HwPrefetcher::None => None,
            HwPrefetcher::NextLine => Some(miss_line + 64),
            HwPrefetcher::Stride => self
                .last_arc_miss
                .and_then(|prev| miss_line.checked_add(miss_line.wrapping_sub(prev)))
                .filter(|&p| p != miss_line),
        };
        self.last_arc_miss = Some(miss_line);
        if let Some(addr) = predicted {
            if self.arc_cache.prefetch(addr) {
                // The speculative line transfer competes with demand
                // misses for controller slots and burns DRAM energy.
                self.dram.request(at_cycle, TrafficKind::Arcs);
            }
        }
    }

    fn run(mut self) -> SimResult {
        let wfst = self.prepared.wfst();
        let mut cur: HashMap<u32, Cell> = HashMap::new();
        let start_trace = self.lattice.push(TraceId::ROOT, WordId::NONE);
        cur.insert(
            wfst.start().0,
            Cell {
                cost: 0.0,
                trace: start_trace,
            },
        );
        self.hash_cur.access(wfst.start().0);
        self.write_token(0, start_trace);

        // Initial epsilon closure (no frame consumed, unpruned).
        let mut cycle = self.wave(None, 0, &mut cur);

        // Acoustic DMA of the first frame must land before decode starts.
        let link_bytes_per_cycle = 16;
        let dma_cycles = |bytes: usize| (bytes as u64).div_ceil(link_bytes_per_cycle);
        if self.scores.num_frames() > 0 {
            self.dram
                .bulk_transfer(self.scores.frame_bytes() as u64, TrafficKind::Acoustic);
            cycle = cycle.max(dma_cycles(self.scores.frame_bytes()));
        }

        for frame in 0..self.scores.num_frames() {
            // Double buffering: the next frame's scores stream in while this
            // frame decodes.
            let mut next_scores_ready = cycle;
            if frame + 1 < self.scores.num_frames() {
                self.dram
                    .bulk_transfer(self.scores.frame_bytes() as u64, TrafficKind::Acoustic);
                next_scores_ready = cycle + dma_cycles(self.scores.frame_bytes());
            }
            let tokens_before = self.stats.tokens_fetched;
            let arcs_before = self.stats.arcs_processed + self.stats.eps_arcs_processed;
            let end = self.wave(Some(frame), cycle, &mut cur);
            self.stats.per_frame.push(crate::stats::FrameStats {
                cycles: end - cycle,
                tokens: self.stats.tokens_fetched - tokens_before,
                arcs: self.stats.arcs_processed + self.stats.eps_arcs_processed - arcs_before,
            });
            cycle = end.max(next_scores_ready);
            if cur.is_empty() {
                break;
            }
        }

        // Final epsilon closure so the last frame's epsilon-reachable
        // tokens participate in final-state selection.
        cycle = self.wave(None, cycle, &mut cur);

        self.stats.frames = self.scores.num_frames();
        self.stats.cycles = cycle;
        self.stats.state_cache = self.state_cache.stats();
        self.stats.arc_cache = self.arc_cache.stats();
        self.stats.token_cache = self.token_cache.stats();
        let mut hash = self.hash_cur.stats();
        let other = self.hash_next.stats();
        hash.requests += other.requests;
        hash.cycles += other.cycles;
        hash.collisions += other.collisions;
        hash.overflow_accesses += other.overflow_accesses;
        hash.peak_occupancy = hash.peak_occupancy.max(other.peak_occupancy);
        self.stats.hash = hash;
        self.stats.traffic = self.dram.traffic();
        self.stats.mem_requests = self.dram.requests();

        self.finish(cur)
    }

    /// Runs one wave through the pipeline.
    ///
    /// `frame = Some(f)`: expand emitting arcs into the next-frame table
    /// (with frame `f`'s acoustic scores) and epsilon arcs into the current
    /// table, with beam pruning. `frame = None`: epsilon-only closure,
    /// unpruned (initialization and finalization).
    ///
    /// Returns the cycle at which the wave has fully drained. On a
    /// `Some(f)` wave, `cur` is replaced by the next frame's tokens.
    fn wave(&mut self, frame: Option<usize>, start: u64, cur: &mut HashMap<u32, Cell>) -> u64 {
        let wfst = self.prepared.wfst();
        let emitting = frame.is_some();
        let threshold = if emitting {
            let best = cur.values().map(|c| c.cost).fold(f32::INFINITY, f32::min);
            best + self.cfg.beam
        } else {
            f32::INFINITY
        };

        let mut next: HashMap<u32, Cell> = HashMap::with_capacity(cur.len() * 2);
        let mut worklist: VecDeque<u32> = self.hash_cur.walk().iter().copied().collect();
        if worklist.is_empty() {
            // Closure waves can run on a map not mirrored in the hash
            // (initialization): seed from the functional map.
            let mut states: Vec<u32> = cur.keys().copied().collect();
            states.sort_unstable();
            worklist.extend(states);
        }
        // Cost at which each state was last expanded this wave.
        let mut expanded: HashMap<u32, f32> = HashMap::new();

        // Timing cursors. The back-end (Acoustic Likelihood Issuer ->
        // Likelihood Evaluation -> Token Issuer hash update) processes one
        // arc at a time (Table I: 1 in-flight arc at the acoustic issuer),
        // so it is a single serial cursor.
        let mut token_cursor = start;
        let mut arc_tag_cursor = start;
        let mut backend_cursor = start;
        let mut state_window = InOrderWindow::new(self.cfg.state_window());
        let mut arc_window = InOrderWindow::new(self.cfg.arc_window());
        state_window.reset_at(start);
        arc_window.reset_at(start);

        while let Some(state_raw) = worklist.pop_front() {
            let Some(&cell) = cur.get(&state_raw) else {
                continue;
            };
            // Token fetch: one linked-list read per cycle.
            token_cursor += 1;
            self.stats.tokens_fetched += 1;
            self.stats.fp_compares += 1; // pruning comparison
            if cell.cost > threshold {
                self.stats.tokens_pruned += 1;
                continue;
            }
            if expanded.get(&state_raw).is_some_and(|&c| c <= cell.cost) {
                continue; // already expanded at this or a better cost
            }
            expanded.insert(state_raw, cell.cost);

            let state = StateId(state_raw);
            let entry = wfst.state(state);
            // Resolve the state's arc range: direct computation or fetch.
            let (range, state_ready) = match self
                .prepared
                .direct()
                .and_then(|u| u.direct_arc_index(state))
            {
                Some((first, degree)) => {
                    self.stats.state_fetches_avoided += 1;
                    debug_assert_eq!(first, entry.first_arc);
                    debug_assert_eq!(degree as usize, entry.num_arcs());
                    (entry.arc_range(), token_cursor)
                }
                None => {
                    if entry.num_arcs() == 0 {
                        continue;
                    }
                    self.stats.state_fetches += 1;
                    let t0 = state_window.admit(token_cursor);
                    let acc = self.state_cache.access(self.map.state_addr(state), false);
                    let ready = if acc.is_hit() {
                        t0 + 1
                    } else {
                        self.dram.request(t0 + 1, TrafficKind::States)
                    };
                    (entry.arc_range(), state_window.push(ready))
                }
            };

            for arc_idx in range {
                let arc = wfst.arc(ArcId::from_index(arc_idx));
                if !emitting && !arc.is_epsilon() {
                    // Closure waves evaluate epsilon arcs only, but the
                    // record still streams through the cache (the hardware
                    // fetches the state's arcs as one contiguous burst).
                }
                // Arc fetch: tag check at one per cycle, in-order window.
                let mut t = state_ready.max(arc_tag_cursor + 1);
                t = arc_window.admit(t);
                arc_tag_cursor = t;
                self.stats.arc_fetches += 1;
                let addr = self.map.arc_addr(ArcId::from_index(arc_idx));
                let acc = self.arc_cache.access(addr, false);
                let ready = if acc.is_hit() {
                    t + 1
                } else {
                    let done = self.dram.request(t + 1, TrafficKind::Arcs);
                    self.hw_prefetch_arc(self.arc_cache.line_addr(addr), t + 1);
                    done
                };
                let commit = arc_window.push(ready);

                if arc.is_epsilon() {
                    // Evaluate (one addition, no acoustic lookup), then the
                    // Token Issuer's hash update — serial per arc.
                    backend_cursor = backend_cursor.max(commit) + 1;
                    self.stats.eps_arcs_processed += 1;
                    self.stats.fp_adds += 1;
                    let cost = cell.cost + arc.weight;
                    let hacc = self.hash_cur.access(arc.dest.0);
                    backend_cursor += hacc.cycles;
                    if hacc.overflow {
                        backend_cursor = self.dram.request(backend_cursor, TrafficKind::Overflow);
                    }
                    self.stats.fp_compares += 1;
                    if self.relax(
                        cur,
                        arc.dest.0,
                        cost,
                        cell.trace,
                        arc.olabel,
                        backend_cursor,
                    ) {
                        worklist.push_back(arc.dest.0);
                    }
                } else if emitting {
                    let f = frame.expect("emitting wave has a frame");
                    // Acoustic buffer read (one in-flight arc), the
                    // three-way log-space sum, then the hash update.
                    backend_cursor = backend_cursor.max(commit) + 2;
                    self.stats.arcs_processed += 1;
                    self.stats.fp_adds += 2;
                    let cost = cell.cost + arc.weight + self.scores.cost(f, arc.ilabel);
                    let hacc = self.hash_next.access(arc.dest.0);
                    backend_cursor += hacc.cycles;
                    if hacc.overflow {
                        backend_cursor = self.dram.request(backend_cursor, TrafficKind::Overflow);
                    }
                    self.stats.fp_compares += 1;
                    self.relax(
                        &mut next,
                        arc.dest.0,
                        cost,
                        cell.trace,
                        arc.olabel,
                        backend_cursor,
                    );
                }
                // Non-matching arcs in a closure wave are fetched and
                // dropped (no evaluation slot consumed).
            }
        }

        let end = token_cursor
            .max(arc_tag_cursor)
            .max(backend_cursor)
            .max(state_window.last_commit())
            .max(arc_window.last_commit());

        if emitting {
            // Frame boundary: the next-frame table becomes current.
            *cur = next;
            std::mem::swap(&mut self.hash_cur, &mut self.hash_next);
            self.hash_next.clear();
        }
        end
    }

    /// Min-relaxation into a token map, with lattice append and token write
    /// on improvement. Returns whether the destination improved.
    fn relax(
        &mut self,
        map: &mut HashMap<u32, Cell>,
        dest: u32,
        cost: f32,
        prev: TraceId,
        word: WordId,
        at_cycle: u64,
    ) -> bool {
        match map.get_mut(&dest) {
            Some(cell) if cell.cost <= cost => false,
            slot => {
                let trace = self.lattice.push(prev, word);
                let cell = Cell { cost, trace };
                match slot {
                    Some(existing) => *existing = cell,
                    None => {
                        map.insert(dest, cell);
                    }
                }
                self.stats.tokens_created += 1;
                self.write_token(at_cycle, trace);
                true
            }
        }
    }

    /// Writes a token's backpointer + word record through the Token cache.
    /// Writes are buffered (32 in-flight tokens) so they do not stall the
    /// pipeline; they do generate fills and writebacks.
    fn write_token(&mut self, at_cycle: u64, trace: TraceId) {
        let addr = self.map.token_addr(trace.0 as u64);
        match self.token_cache.access(addr, true) {
            crate::mem::Access::Hit => {}
            crate::mem::Access::Miss { writeback } => {
                self.dram.request(at_cycle, TrafficKind::Tokens);
                if writeback.is_some() {
                    self.dram.request(at_cycle, TrafficKind::Tokens);
                }
            }
        }
    }

    fn finish(self, cur: HashMap<u32, Cell>) -> SimResult {
        let wfst = self.prepared.wfst();
        let mut best_final: Option<(u32, f32, TraceId)> = None;
        let mut best_any: Option<(u32, f32, TraceId)> = None;
        let mut states: Vec<(&u32, &Cell)> = cur.iter().collect();
        states.sort_unstable_by_key(|(s, _)| **s);
        for (&state, cell) in states {
            if best_any.is_none_or(|(_, c, _)| cell.cost < c) {
                best_any = Some((state, cell.cost, cell.trace));
            }
            let f = wfst.final_cost(StateId(state));
            if f.is_finite() {
                let total = cell.cost + f;
                if best_final.is_none_or(|(_, c, _)| total < c) {
                    best_final = Some((state, total, cell.trace));
                }
            }
        }
        let (reached_final, chosen) = match (best_final, best_any) {
            (Some(f), _) => (true, Some(f)),
            (None, any) => (false, any),
        };
        match chosen {
            Some((state, cost, trace)) => SimResult {
                words: self.lattice.backtrack(trace),
                cost,
                reached_final,
                best_state: self.prepared.to_original(StateId(state)),
                stats: self.stats,
            },
            None => SimResult {
                words: Vec::new(),
                cost: f32::INFINITY,
                reached_final: false,
                best_state: self.prepared.to_original(wfst.start()),
                stats: self.stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignPoint;
    use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
        let w = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(seed)).unwrap();
        let scores =
            AcousticTable::random(frames, w.num_phones() as usize, (0.5, 4.0), seed ^ 0xABCD);
        (w, scores)
    }

    fn reference(
        wfst: &Wfst,
        scores: &AcousticTable,
        beam: f32,
    ) -> asr_decoder::search::DecodeResult {
        ViterbiDecoder::new(DecodeOptions::with_beam(beam)).decode(wfst, scores)
    }

    #[test]
    fn base_design_matches_reference_decoder() {
        let (w, scores) = workload(2_000, 20, 5);
        let cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0);
        let sim = Simulator::new(cfg).decode_wfst(&w, &scores).unwrap();
        let reference = reference(&w, &scores, 6.0);
        assert_eq!(sim.cost, reference.cost);
        assert_eq!(sim.words, reference.words);
        assert_eq!(sim.reached_final, reference.reached_final);
        assert_eq!(sim.best_state, reference.best_state);
    }

    #[test]
    fn all_design_points_are_functionally_identical() {
        let (w, scores) = workload(3_000, 15, 9);
        let reference = reference(&w, &scores, 6.0);
        for design in DesignPoint::ALL {
            let cfg = AcceleratorConfig::for_design(design).with_beam(6.0);
            let sim = Simulator::new(cfg).decode_wfst(&w, &scores).unwrap();
            assert_eq!(sim.cost, reference.cost, "{design:?}");
            assert_eq!(sim.words, reference.words, "{design:?}");
            assert_eq!(sim.best_state, reference.best_state, "{design:?}");
        }
    }

    #[test]
    fn prefetcher_reduces_cycles() {
        let (w, scores) = workload(20_000, 30, 2);
        let base = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let pf =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(6.0))
                .decode_wfst(&w, &scores)
                .unwrap();
        assert!(
            pf.stats.cycles < base.stats.cycles,
            "prefetch {} !< base {}",
            pf.stats.cycles,
            base.stats.cycles
        );
    }

    #[test]
    fn state_opt_cuts_state_traffic() {
        let (w, scores) = workload(20_000, 30, 3);
        let base = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let opt =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::StateOpt).with_beam(6.0))
                .decode_wfst(&w, &scores)
                .unwrap();
        assert!(opt.stats.traffic.states < base.stats.traffic.states / 2);
        assert!(opt.stats.state_fetches_avoided > 0);
        // Total off-chip traffic shrinks (Figure 13).
        assert!(opt.stats.traffic.search_bytes() < base.stats.traffic.search_bytes());
    }

    #[test]
    fn perfect_caches_beat_real_caches() {
        let (w, scores) = workload(20_000, 20, 4);
        let real = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let perfect = Simulator::new(
            AcceleratorConfig::for_design(DesignPoint::Base)
                .with_beam(6.0)
                .with_perfect_caches(),
        )
        .decode_wfst(&w, &scores)
        .unwrap();
        assert!(perfect.stats.cycles < real.stats.cycles);
        assert_eq!(
            perfect.stats.traffic.arcs, 0,
            "perfect caches fetch nothing"
        );
        assert_eq!(perfect.cost, real.cost, "idealization is timing-only");
    }

    #[test]
    fn prefetch_approaches_perfect_arc_cache() {
        let (w, scores) = workload(30_000, 30, 6);
        let beam = 6.0;
        let pf =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(beam))
                .decode_wfst(&w, &scores)
                .unwrap();
        let mut perfect_cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(beam);
        perfect_cfg.perfect_arc_cache = true;
        let perfect = Simulator::new(perfect_cfg)
            .decode_wfst(&w, &scores)
            .unwrap();
        let ratio = perfect.stats.cycles as f64 / pf.stats.cycles as f64;
        assert!(
            ratio > 0.80,
            "prefetcher reaches only {:.2} of perfect-arc-cache performance",
            ratio
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let (w, scores) = workload(5_000, 10, 7);
        let r = Simulator::new(AcceleratorConfig::default().with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        let s = &r.stats;
        assert_eq!(s.frames, 10);
        assert!(s.cycles > 0);
        assert!(s.tokens_fetched >= s.tokens_pruned);
        assert!(s.arc_fetches >= s.arcs_processed + s.eps_arcs_processed);
        assert_eq!(s.arc_cache.accesses(), s.arc_fetches);
        assert_eq!(s.state_cache.accesses(), s.state_fetches);
        assert!(s.traffic.arcs >= s.arc_cache.misses * 64);
        assert!(s.hash.requests > 0);
        assert!(s.fp_adds > 0 && s.fp_compares > 0);
    }

    #[test]
    fn ideal_hash_never_spends_extra_cycles() {
        let (w, scores) = workload(5_000, 10, 8);
        let r = Simulator::new(
            AcceleratorConfig::default()
                .with_beam(6.0)
                .with_ideal_hash(),
        )
        .decode_wfst(&w, &scores)
        .unwrap();
        assert_eq!(r.stats.hash.avg_cycles_per_request(), 1.0);
        assert_eq!(r.stats.traffic.overflow, 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (w, scores) = workload(3_000, 10, 10);
        let cfg = AcceleratorConfig::final_design().with_beam(6.0);
        let a = Simulator::new(cfg.clone())
            .decode_wfst(&w, &scores)
            .unwrap();
        let b = Simulator::new(cfg).decode_wfst(&w, &scores).unwrap();
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.stats.traffic, b.stats.traffic);
    }

    #[test]
    fn per_frame_stats_cover_every_frame() {
        let (w, scores) = workload(3_000, 12, 21);
        let r = Simulator::new(AcceleratorConfig::default().with_beam(6.0))
            .decode_wfst(&w, &scores)
            .unwrap();
        assert_eq!(r.stats.per_frame.len(), 12);
        let frame_arcs: u64 = r.stats.per_frame.iter().map(|f| f.arcs).sum();
        // All emitting arcs happen inside frames; the init/final epsilon
        // closures may add a few epsilon evaluations outside any frame.
        assert!(frame_arcs >= r.stats.arcs_processed);
        assert!(frame_arcs <= r.stats.arcs_processed + r.stats.eps_arcs_processed);
        let frame_cycles: u64 = r.stats.per_frame.iter().map(|f| f.cycles).sum();
        assert!(frame_cycles <= r.stats.cycles);
        assert!(r.stats.per_frame.iter().all(|f| f.cycles > 0));
    }

    #[test]
    fn empty_utterance_is_handled() {
        let (w, _) = workload(500, 0, 11);
        let scores = AcousticTable::random(0, w.num_phones() as usize, (0.5, 4.0), 1);
        let r = Simulator::new(AcceleratorConfig::default())
            .decode_wfst(&w, &scores)
            .unwrap();
        assert_eq!(r.stats.frames, 0);
        assert!(r.words.is_empty());
    }
}
