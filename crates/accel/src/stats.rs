//! Aggregated statistics of one simulated decode.

use crate::hash::HashStats;
use crate::mem::{CacheStats, TrafficStats};
use serde::{Deserialize, Serialize};

/// Activity of one decoded frame (one emitting wave).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Cycles this frame's wave occupied the pipeline.
    pub cycles: u64,
    /// Tokens read from the current-frame hash table.
    pub tokens: u64,
    /// Arcs evaluated (emitting + epsilon).
    pub arcs: u64,
}

/// Everything the experiment harness needs from one simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Frames of speech decoded.
    pub frames: usize,
    /// Total clock cycles.
    pub cycles: u64,
    /// Tokens read from the current-frame hash table.
    pub tokens_fetched: u64,
    /// Tokens discarded by beam pruning at the State Issuer.
    pub tokens_pruned: u64,
    /// Token insertions/updates issued to the next-frame hash table.
    pub tokens_created: u64,
    /// Non-epsilon arcs evaluated.
    pub arcs_processed: u64,
    /// Epsilon arcs evaluated.
    pub eps_arcs_processed: u64,
    /// Arc records fetched through the Arc cache (includes the epsilon
    /// records a direct-indexed state must fetch to discover the split).
    pub arc_fetches: u64,
    /// State records fetched through the State cache.
    pub state_fetches: u64,
    /// State fetches eliminated by the Section IV-B direct computation.
    pub state_fetches_avoided: u64,
    /// State cache counters.
    pub state_cache: CacheStats,
    /// Arc cache counters.
    pub arc_cache: CacheStats,
    /// Token cache counters.
    pub token_cache: CacheStats,
    /// Hash-table counters (both tables combined).
    pub hash: HashStats,
    /// Off-chip traffic by kind.
    pub traffic: TrafficStats,
    /// Floating-point additions performed by the Likelihood Evaluation
    /// unit (three per evaluated arc: source + weight + acoustic).
    pub fp_adds: u64,
    /// Floating-point comparisons (pruning + token max-reduction).
    pub fp_compares: u64,
    /// DRAM line requests.
    pub mem_requests: u64,
    /// Per-frame activity (one entry per emitting wave, in frame order).
    pub per_frame: Vec<FrameStats>,
}

impl SimStats {
    /// Wall-clock seconds at `frequency_hz`.
    pub fn seconds(&self, frequency_hz: u64) -> f64 {
        self.cycles as f64 / frequency_hz as f64
    }

    /// Decode time per second of speech (Figure 9's metric) assuming 10 ms
    /// frames.
    pub fn decode_time_per_speech_second(&self, frequency_hz: u64) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        let speech_seconds = self.frames as f64 * 0.01;
        self.seconds(frequency_hz) / speech_seconds
    }

    /// Mean evaluated arcs (emitting + epsilon) per frame.
    pub fn arcs_per_frame(&self) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        (self.arcs_processed + self.eps_arcs_processed) as f64 / self.frames as f64
    }

    /// Cycles per evaluated arc — the accelerator's efficiency figure.
    pub fn cycles_per_arc(&self) -> f64 {
        let arcs = self.arcs_processed + self.eps_arcs_processed;
        if arcs == 0 {
            return 0.0;
        }
        self.cycles as f64 / arcs as f64
    }

    /// Real-time factor: how many seconds of speech are decoded per second
    /// of wall-clock (the paper: 56x real time).
    pub fn real_time_factor(&self, frequency_hz: u64) -> f64 {
        let d = self.decode_time_per_speech_second(frequency_hz);
        if d == 0.0 {
            return f64::INFINITY;
        }
        1.0 / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimStats {
        SimStats {
            frames: 100,
            cycles: 600_000, // 1 ms at 600 MHz
            arcs_processed: 90,
            eps_arcs_processed: 10,
            ..SimStats::default()
        }
    }

    #[test]
    fn seconds_follow_frequency() {
        let s = sample();
        assert!((s.seconds(600_000_000) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn decode_time_is_normalized_per_speech_second() {
        let s = sample();
        // 100 frames = 1 s of speech decoded in 1 ms -> 0.001 s per speech
        // second, i.e. 1000x real time.
        assert!((s.decode_time_per_speech_second(600_000_000) - 0.001).abs() < 1e-12);
        assert!((s.real_time_factor(600_000_000) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn per_arc_metrics() {
        let s = sample();
        assert!((s.arcs_per_frame() - 1.0).abs() < 1e-12);
        assert!((s.cycles_per_arc() - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_frames_are_safe() {
        let s = SimStats::default();
        assert_eq!(s.decode_time_per_speech_second(600_000_000), 0.0);
        assert_eq!(s.arcs_per_frame(), 0.0);
        assert_eq!(s.cycles_per_arc(), 0.0);
    }
}
