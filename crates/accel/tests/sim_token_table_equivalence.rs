//! Differential suite: the ported simulator (functional search on
//! `asr-decoder::token_table` + `lattice`, timing as an observer) must be
//! byte-identical to [`ViterbiDecoder`] — `words`, `cost`, `best_state`,
//! `reached_final` — across design points, seeds, and beams, including the
//! degenerate decodes (empty audio, dead-end graphs, unreachable finals),
//! and its base-design hardware counters must match the pre-port
//! simulator exactly.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::{PreparedWfst, SimResult, Simulator};
use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::{DecodeOptions, DecodeResult, ViterbiDecoder};
use asr_wfst::builder::WfstBuilder;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::{PhoneId, StateId, Wfst, WordId};

fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
    let w = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(seed)).unwrap();
    let scores = AcousticTable::random(frames, w.num_phones() as usize, (0.5, 4.0), seed ^ 0xABCD);
    (w, scores)
}

fn reference(wfst: &Wfst, scores: &AcousticTable, beam: f32) -> DecodeResult {
    ViterbiDecoder::new(DecodeOptions::with_beam(beam)).decode(wfst, scores)
}

fn simulate(wfst: &Wfst, scores: &AcousticTable, design: DesignPoint, beam: f32) -> SimResult {
    let cfg = AcceleratorConfig::for_design(design).with_beam(beam);
    Simulator::new(cfg).decode_wfst(wfst, scores).unwrap()
}

#[track_caller]
fn assert_identical(sim: &SimResult, reference: &DecodeResult, context: &str) {
    assert_eq!(sim.words, reference.words, "words diverged: {context}");
    assert_eq!(
        sim.cost.to_bits(),
        reference.cost.to_bits(),
        "cost diverged ({} vs {}): {context}",
        sim.cost,
        reference.cost
    );
    assert_eq!(
        sim.best_state, reference.best_state,
        "best_state diverged: {context}"
    );
    assert_eq!(
        sim.reached_final, reference.reached_final,
        "reached_final diverged: {context}"
    );
}

#[test]
fn all_design_points_match_reference_across_seeds_and_beams() {
    for seed in [1u64, 2, 3, 4, 5] {
        let (w, scores) = workload(1_500, 12, seed);
        for beam in [3.0f32, 6.0, 12.0] {
            let r = reference(&w, &scores, beam);
            for design in DesignPoint::ALL {
                let sim = simulate(&w, &scores, design, beam);
                assert_identical(&sim, &r, &format!("seed {seed}, beam {beam}, {design:?}"));
            }
        }
    }
}

#[test]
fn zero_frame_decode_matches_reference() {
    let (w, _) = workload(800, 0, 17);
    let scores = AcousticTable::random(0, w.num_phones() as usize, (0.5, 4.0), 17);
    let r = reference(&w, &scores, 6.0);
    for design in DesignPoint::ALL {
        let sim = simulate(&w, &scores, design, 6.0);
        assert_identical(&sim, &r, &format!("zero frames, {design:?}"));
        assert_eq!(sim.stats.frames, 0);
        assert!(sim.words.is_empty());
        assert!(
            sim.cost.is_finite(),
            "the start state's token survives a zero-frame decode"
        );
    }
}

/// A two-arc chain: feeding it more frames than the chain is long starves
/// the search — every token dies mid-utterance and both implementations
/// must report the same empty-decode sentinel.
fn dead_end_chain() -> (Wfst, AcousticTable) {
    let mut b = WfstBuilder::new();
    let s0 = b.add_state();
    let s1 = b.add_state();
    let s2 = b.add_state();
    b.set_start(s0);
    b.add_arc(s0, s1, PhoneId(1), WordId(1), 0.5);
    b.add_arc(s1, s2, PhoneId(2), WordId::NONE, 0.5);
    b.set_final(s2, 0.0);
    let w = b.build().unwrap();
    let scores = AcousticTable::from_fn(5, 3, |_, _| 1.0);
    (w, scores)
}

#[test]
fn all_paths_pruned_yields_the_infinity_sentinel_on_every_design() {
    let (w, scores) = dead_end_chain();
    let r = reference(&w, &scores, 8.0);
    assert!(r.cost.is_infinite() && !r.reached_final && r.words.is_empty());
    for design in DesignPoint::ALL {
        let sim = simulate(&w, &scores, design, 8.0);
        assert_identical(&sim, &r, &format!("dead-end chain, {design:?}"));
        assert_eq!(
            sim.best_state,
            w.start(),
            "empty decode pins best_state to the start state, {design:?}"
        );
    }
}

/// Final states exist but three frames of audio cannot reach them: the
/// result must fall back to the cheapest non-final token, identically.
#[test]
fn unreachable_final_falls_back_to_best_token_identically() {
    let mut b = WfstBuilder::new();
    let states: Vec<StateId> = (0..6).map(|_| b.add_state()).collect();
    b.set_start(states[0]);
    for i in 0..5 {
        b.add_arc(
            states[i],
            states[i + 1],
            PhoneId(1 + (i as u32 % 2)),
            WordId(1 + i as u32),
            0.25,
        );
    }
    b.set_final(states[5], 0.0); // needs 5 frames; only 3 provided
    let w = b.build().unwrap();
    let scores = AcousticTable::from_fn(3, 3, |_, _| 0.75);
    let r = reference(&w, &scores, 20.0);
    assert!(!r.reached_final && r.cost.is_finite());
    for design in DesignPoint::ALL {
        let sim = simulate(&w, &scores, design, 20.0);
        assert_identical(&sim, &r, &format!("unreachable final, {design:?}"));
    }
}

/// Two final states tie bit-exactly; the degree-sorted layout reorders
/// them, so the simulator must break the tie in the *original* numbering
/// (as `ViterbiDecoder` does), not in layout order.
#[test]
fn cost_ties_break_in_original_state_order_under_sorted_layout() {
    let mut b = WfstBuilder::new();
    let s0 = b.add_state();
    let a = b.add_state(); // original id 1, out-degree 2
    let bb = b.add_state(); // original id 2, out-degree 1 — sorted first
    let dead = b.add_state();
    b.set_start(s0);
    // Identical phone + weight: the two destination tokens tie bit-exactly.
    b.add_arc(s0, a, PhoneId(1), WordId(1), 0.5);
    b.add_arc(s0, bb, PhoneId(1), WordId(2), 0.5);
    // Degree split so the sorted layout swaps a and bb.
    b.add_arc(a, dead, PhoneId(2), WordId::NONE, 9.0);
    b.add_arc(a, dead, PhoneId(3), WordId::NONE, 9.0);
    b.add_arc(bb, dead, PhoneId(2), WordId::NONE, 9.0);
    b.set_final(a, 0.0);
    b.set_final(bb, 0.0);
    let w = b.build().unwrap();
    let scores = AcousticTable::from_fn(1, 4, |_, _| 1.0);
    let r = reference(&w, &scores, 20.0);
    assert_eq!(r.best_state, StateId(1), "reference picks the lowest id");
    for design in [DesignPoint::StateOpt, DesignPoint::StateAndArc] {
        let sim = simulate(&w, &scores, design, 20.0);
        // The sorted layout visits bb before a; only the original-order
        // tie-break keeps the implementations aligned.
        let prepared = PreparedWfst::new(&w, &AcceleratorConfig::for_design(design)).unwrap();
        assert!(
            prepared.to_original(StateId(0)) == StateId(2),
            "precondition: the layout really does reorder the tied states"
        );
        assert_identical(&sim, &r, &format!("tied finals, {design:?}"));
    }
}

/// The base design's hardware counters on the long-standing fixture
/// (`workload(2_000, 20, 5)`, beam 6) — captured from the pre-port
/// simulator. The token-table port moved the functional search but must
/// not move a single counter: same walk order, same pruning decisions,
/// same cache/hash/DRAM event sequence.
#[test]
fn base_design_counters_match_the_pre_port_simulator_exactly() {
    let (w, scores) = workload(2_000, 20, 5);
    let sim = simulate(&w, &scores, DesignPoint::Base, 6.0);
    let s = &sim.stats;
    assert_eq!(s.cycles, 21_632);
    assert_eq!(s.tokens_fetched, 785);
    assert_eq!(s.tokens_pruned, 373);
    assert_eq!(s.tokens_created, 786);
    assert_eq!(s.arcs_processed, 672);
    assert_eq!(s.eps_arcs_processed, 125);
    assert_eq!(s.arc_fetches, 1_152);
    assert_eq!(s.state_fetches, 412);
    assert_eq!(s.state_fetches_avoided, 0);
    assert_eq!(s.hash.requests, 798);
    assert_eq!(s.hash.cycles, 798);
    assert_eq!(s.hash.collisions, 0);
    assert_eq!(s.hash.overflow_accesses, 0);
    assert_eq!(s.hash.peak_occupancy, 159);
    assert_eq!(s.traffic.states, 12_736);
    assert_eq!(s.traffic.arcs, 29_824);
    assert_eq!(s.traffic.tokens, 6_336);
    assert_eq!(s.traffic.overflow, 0);
    assert_eq!(s.traffic.acoustic, 160_000);
    assert_eq!(s.mem_requests, 764);
    assert_eq!(s.fp_adds, 1_469);
    assert_eq!(s.fp_compares, 1_582);
    assert_eq!(sim.cost, 81.25823);
    assert_eq!(sim.best_state, StateId(815));
    assert!(!sim.reached_final);
}

/// Same pin for a denser fixture (`workload(20_000, 30, 2)`, beam 6) —
/// the workload `just bench-accel` reports deltas against.
#[test]
fn bench_fixture_counters_match_the_pre_port_simulator_exactly() {
    let (w, scores) = workload(20_000, 30, 2);
    let sim = simulate(&w, &scores, DesignPoint::Base, 6.0);
    let s = &sim.stats;
    assert_eq!(s.cycles, 72_085);
    assert_eq!(s.tokens_fetched, 4_230);
    assert_eq!(s.tokens_pruned, 2_624);
    assert_eq!(s.tokens_created, 4_273);
    assert_eq!(s.arcs_processed, 3_710);
    assert_eq!(s.eps_arcs_processed, 633);
    assert_eq!(s.hash.requests, 4_344);
    assert_eq!(s.hash.peak_occupancy, 501);
    assert_eq!(s.traffic.states, 59_008);
    assert_eq!(s.traffic.arcs, 111_040);
    assert_eq!(s.traffic.tokens, 34_240);
    assert_eq!(s.mem_requests, 3_192);
    assert_eq!(s.fp_adds, 8_053);
    assert_eq!(s.fp_compares, 8_573);
}

/// Scores-level property: on tiny graphs where every arc stays in beam,
/// the simulator's token accounting is tied to the search it now shares —
/// every created token is a lattice push, every fetch a walk step.
#[test]
fn token_accounting_is_consistent_with_the_shared_search() {
    for seed in [7u64, 21] {
        let (w, scores) = workload(600, 8, seed);
        let r = reference(&w, &scores, 1e6);
        let sim = simulate(&w, &scores, DesignPoint::Base, 1e6);
        assert_identical(&sim, &r, &format!("wide beam, seed {seed}"));
        // With an effectively infinite beam nothing is pruned at fetch.
        assert_eq!(
            sim.stats.tokens_pruned, 0,
            "an unbounded beam prunes nothing"
        );
        // Every evaluated arc probed a hash table (plus one probe for the
        // start token) — the observer fired for stored AND rejected
        // relaxes, exactly one per arc.
        assert_eq!(
            sim.stats.hash.requests,
            sim.stats.arcs_processed + sim.stats.eps_arcs_processed + 1
        );
    }
}
