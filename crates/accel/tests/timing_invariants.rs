//! Timing-model invariants: relations that must hold for *any* workload,
//! independent of the exact cycle counts.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use proptest::prelude::*;

fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(seed)).unwrap();
    let scores = AcousticTable::random(
        frames,
        wfst.num_phones() as usize,
        (0.5, 4.0),
        seed ^ 0xF00D,
    );
    (wfst, scores)
}

fn cycles(cfg: AcceleratorConfig, wfst: &Wfst, scores: &AcousticTable) -> u64 {
    Simulator::new(cfg)
        .decode_wfst(wfst, scores)
        .unwrap()
        .stats
        .cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn idealizations_never_slow_the_machine(seed in 0u64..50) {
        let (wfst, scores) = workload(2_000, 8, seed);
        let base = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(6.0);
        let real = cycles(base.clone(), &wfst, &scores);
        prop_assert!(cycles(base.clone().with_perfect_caches(), &wfst, &scores) <= real);
        prop_assert!(cycles(base.clone().with_ideal_hash(), &wfst, &scores) <= real);
        let mut pa = base.clone();
        pa.perfect_arc_cache = true;
        prop_assert!(cycles(pa, &wfst, &scores) <= real);
    }

    #[test]
    fn wider_prefetch_fifo_never_hurts(seed in 0u64..50) {
        let (wfst, scores) = workload(2_000, 8, seed);
        let mut shallow = AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(6.0);
        shallow.prefetch_fifo = 8;
        let mut deep = shallow.clone();
        deep.prefetch_fifo = 128;
        prop_assert!(cycles(deep, &wfst, &scores) <= cycles(shallow, &wfst, &scores));
    }

    #[test]
    fn more_frames_cost_more_cycles(seed in 0u64..50) {
        let wfst = SynthWfst::generate(&SynthConfig::with_states(2_000).with_seed(seed)).unwrap();
        let phones = wfst.num_phones() as usize;
        let short = AcousticTable::random(4, phones, (0.5, 4.0), seed);
        let mut long = short.clone();
        long.extend(&AcousticTable::random(8, phones, (0.5, 4.0), seed ^ 1));
        let cfg = AcceleratorConfig::final_design().with_beam(6.0);
        prop_assert!(
            cycles(cfg.clone(), &wfst, &long) > cycles(cfg, &wfst, &short)
        );
    }

    #[test]
    fn traffic_accounting_is_consistent(seed in 0u64..50) {
        let (wfst, scores) = workload(2_000, 8, seed);
        let r = Simulator::new(AcceleratorConfig::default().with_beam(6.0))
            .decode_wfst(&wfst, &scores)
            .unwrap();
        let s = &r.stats;
        // Every off-chip byte is a whole line.
        prop_assert_eq!(s.traffic.search_bytes() % 64, 0);
        // Line fills are bounded by misses (+ token writebacks).
        prop_assert!(s.traffic.arcs / 64 == s.arc_cache.misses);
        prop_assert!(s.traffic.states / 64 == s.state_cache.misses);
        prop_assert!(
            s.traffic.tokens / 64 == s.token_cache.misses + s.token_cache.writebacks
        );
        // DRAM served every line (acoustic DMA is bulk-accounted).
        prop_assert_eq!(
            s.mem_requests,
            s.traffic.search_bytes() / 64
        );
    }

    #[test]
    fn functional_counters_are_design_invariant(seed in 0u64..30) {
        // Cycles change across design points; the *work* (arcs evaluated,
        // tokens created) must not.
        let (wfst, scores) = workload(2_000, 8, seed);
        let mut reference: Option<(u64, u64, u64)> = None;
        for design in DesignPoint::ALL {
            let r = Simulator::new(AcceleratorConfig::for_design(design).with_beam(6.0))
                .decode_wfst(&wfst, &scores)
                .unwrap();
            let key = (
                r.stats.arcs_processed,
                r.stats.eps_arcs_processed,
                r.stats.tokens_created,
            );
            match &reference {
                None => reference = Some(key),
                Some(prev) => prop_assert_eq!(*prev, key, "{:?}", design),
            }
        }
    }
}
