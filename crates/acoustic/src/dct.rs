//! DCT-II used to decorrelate log filterbank energies into cepstral
//! coefficients (the "C" of MFCC).

/// Precomputed DCT-II transform taking `input_len` values to `output_len`
/// coefficients (orthonormal scaling).
#[derive(Debug, Clone)]
pub struct Dct {
    // Row-major [output_len][input_len] cosine table.
    table: Vec<f32>,
    input_len: usize,
    output_len: usize,
}

impl Dct {
    /// Builds the transform.
    ///
    /// # Panics
    ///
    /// Panics if either length is zero or `output_len > input_len`.
    pub fn new(input_len: usize, output_len: usize) -> Self {
        assert!(input_len > 0 && output_len > 0, "degenerate DCT size");
        assert!(
            output_len <= input_len,
            "cannot produce more outputs than inputs"
        );
        let mut table = Vec::with_capacity(input_len * output_len);
        let n = input_len as f32;
        for k in 0..output_len {
            let scale = if k == 0 {
                (1.0 / n).sqrt()
            } else {
                (2.0 / n).sqrt()
            };
            for i in 0..input_len {
                let angle = std::f32::consts::PI * k as f32 * (i as f32 + 0.5) / n;
                table.push(scale * angle.cos());
            }
        }
        Self {
            table,
            input_len,
            output_len,
        }
    }

    /// Applies the transform.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the configured length.
    pub fn apply(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.output_len];
        self.apply_into(input, &mut out);
        out
    }

    /// Allocation-free form of [`Dct::apply`] into caller-owned storage.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the configured input length or
    /// `out.len()` from the output length.
    pub fn apply_into(&self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.input_len, "DCT input length mismatch");
        assert_eq!(out.len(), self.output_len, "DCT output length mismatch");
        for (k, o) in out.iter_mut().enumerate() {
            let row = &self.table[k * self.input_len..(k + 1) * self.input_len];
            *o = row.iter().zip(input).map(|(c, x)| c * x).sum();
        }
    }

    /// Number of output coefficients.
    pub fn output_len(&self) -> usize {
        self.output_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_input_excites_only_dc() {
        let dct = Dct::new(26, 13);
        let out = dct.apply(&[2.0; 26]);
        assert!(out[0] > 0.0);
        for &c in &out[1..] {
            assert!(c.abs() < 1e-4, "leakage {c}");
        }
    }

    #[test]
    fn dc_coefficient_is_scaled_mean() {
        let dct = Dct::new(4, 4);
        let out = dct.apply(&[1.0, 2.0, 3.0, 4.0]);
        // Orthonormal DCT-II: c0 = sum / sqrt(n).
        assert!((out[0] - 10.0 / 2.0).abs() < 1e-5);
    }

    #[test]
    fn orthonormal_rows_preserve_energy_when_square() {
        let dct = Dct::new(8, 8);
        let x = [0.5, -1.0, 0.25, 2.0, -0.75, 0.1, 1.5, -0.3];
        let y = dct.apply(&x);
        let ex: f32 = x.iter().map(|v| v * v).sum();
        let ey: f32 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() / ex < 1e-4);
    }

    #[test]
    fn alternating_input_excites_high_coefficients() {
        let dct = Dct::new(16, 16);
        let x: Vec<f32> = (0..16)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let y = dct.apply(&x);
        let (peak, _) = y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        assert!(
            peak > 8,
            "alternation should excite the top band, got {peak}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_panics() {
        Dct::new(8, 4).apply(&[0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "more outputs")]
    fn output_longer_than_input_rejected() {
        Dct::new(4, 5);
    }
}
