//! From-scratch multi-layer perceptron acoustic model.
//!
//! The paper's hybrid system runs a DNN on the GPU to produce per-phone
//! likelihoods while the accelerator searches. This module implements that
//! DNN: dense layers with ReLU activations and a log-softmax output over
//! the phone set. Weights are deterministic (seeded Xavier-style init);
//! since no training corpus ships with the reproduction, *functional*
//! decoding accuracy comes from [`crate::template`], while this MLP
//! provides the realistic compute/memory workload for the platform models
//! (FLOP counts, batch scoring).

use crate::scores::AcousticTable;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One dense layer: `y = W x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Vec<f32>, // row-major [out][in]
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights drawn from `rng`.
    pub fn random<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "degenerate layer shape");
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        let bias = vec![0.0; out_dim];
        Self {
            weights,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Applies the affine map.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_into(input, &mut out);
        out
    }

    /// Allocation-free form of [`Dense::forward`]: `out` is cleared and
    /// refilled (no allocation once its capacity reaches the layer
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        assert_eq!(input.len(), self.in_dim, "layer input dimension mismatch");
        out.clear();
        out.extend((0..self.out_dim).map(|o| {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            row.iter().zip(input).map(|(w, x)| w * x).sum::<f32>() + self.bias[o]
        }));
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn flops(&self) -> u64 {
        2 * (self.in_dim as u64) * (self.out_dim as u64)
    }

    /// Applies the affine map to a *block* of `rows` input vectors at
    /// once — the matrix–matrix form of [`Dense::forward_into`] that
    /// cross-session batched scoring wins with, twice over. The outer
    /// loop is **weight-row stationary** (each weight row is loaded once
    /// and dotted against every input row), so a block of `B` rows reads
    /// the weight matrix once instead of `B` times. And input rows are
    /// walked four at a time: each row keeps its own accumulator (its
    /// own exact fold), but the four dependency chains interleave, so
    /// the float-add latency that serializes a lone dot product overlaps
    /// across rows. A single frame has no independent rows to interleave
    /// — this instruction-level parallelism only exists because the
    /// gather window put several sessions' frames side by side.
    ///
    /// `input` and `out` are caller-owned slices holding one vector per
    /// row at the given strides (`input[r * in_stride ..][.. in_dim]`,
    /// `out[r * out_stride ..][.. out_dim]`); nothing here can grow or
    /// allocate. Each output element is computed with the exact
    /// fold order of [`Dense::forward_into`], so every row of the block
    /// is **bit-identical** to scoring that row alone, regardless of
    /// which other rows share the block.
    ///
    /// # Panics
    ///
    /// Panics if a stride is narrower than the matching dimension or
    /// either slice is too short for `rows`.
    pub fn forward_block_into(
        &self,
        input: &[f32],
        in_stride: usize,
        rows: usize,
        out: &mut [f32],
        out_stride: usize,
    ) {
        if rows == 0 {
            return;
        }
        assert!(in_stride >= self.in_dim, "input stride below layer width");
        assert!(
            out_stride >= self.out_dim,
            "output stride below layer width"
        );
        assert!(
            input.len() >= (rows - 1) * in_stride + self.in_dim,
            "input block too short for {rows} rows"
        );
        assert!(
            out.len() >= (rows - 1) * out_stride + self.out_dim,
            "output block too short for {rows} rows"
        );
        for o in 0..self.out_dim {
            let w = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let b = self.bias[o];
            let mut r = 0;
            // Four independent accumulator chains. Each accumulates in
            // the exact order of `forward_into`'s fold, so every row's
            // result is bit-identical to scoring it alone; only the
            // *interleaving* of the four independent chains is new.
            while r + 4 <= rows {
                let x0 = &input[r * in_stride..r * in_stride + self.in_dim];
                let x1 = &input[(r + 1) * in_stride..(r + 1) * in_stride + self.in_dim];
                let x2 = &input[(r + 2) * in_stride..(r + 2) * in_stride + self.in_dim];
                let x3 = &input[(r + 3) * in_stride..(r + 3) * in_stride + self.in_dim];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for i in 0..self.in_dim {
                    let wi = w[i];
                    a0 += wi * x0[i];
                    a1 += wi * x1[i];
                    a2 += wi * x2[i];
                    a3 += wi * x3[i];
                }
                out[r * out_stride + o] = a0 + b;
                out[(r + 1) * out_stride + o] = a1 + b;
                out[(r + 2) * out_stride + o] = a2 + b;
                out[(r + 3) * out_stride + o] = a3 + b;
                r += 4;
            }
            while r < rows {
                let x = &input[r * in_stride..r * in_stride + self.in_dim];
                out[r * out_stride + o] = w.iter().zip(x).map(|(w, x)| w * x).sum::<f32>() + b;
                r += 1;
            }
        }
    }
}

/// A feed-forward acoustic network: input features → hidden ReLU layers →
/// log-softmax over phones.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[39, 512, 512, 2001]`
    /// (input dim, hidden dims..., phone count). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Dense::random(w[0], w[1], &mut rng))
            .collect();
        Self { layers }
    }

    /// The paper-like topology used by the platform models: 39-dim MFCC
    /// input, a few wide hidden layers, `num_phones` outputs.
    pub fn kaldi_like(input_dim: usize, num_phones: usize, seed: u64) -> Self {
        Self::new(&[input_dim, 512, 512, 512, num_phones], seed)
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Number of output classes (phones).
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim
    }

    /// Forward pass returning log-posteriors (log-softmax output).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the input dimension.
    pub fn log_posteriors(&self, features: &[f32]) -> Vec<f32> {
        let mut x = Vec::new();
        let mut y = Vec::new();
        self.log_posteriors_into(features, &mut x, &mut y);
        x
    }

    /// Allocation-free form of [`Mlp::log_posteriors`] over two
    /// caller-owned activation buffers (ping-ponged between layers); the
    /// log-posteriors are left in `x`. Once both buffers have grown to
    /// the widest layer, repeated calls allocate nothing — this is what
    /// [`crate::online::MlpScorer`] pumps per streamed frame.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the input dimension.
    pub fn log_posteriors_into(&self, features: &[f32], x: &mut Vec<f32>, y: &mut Vec<f32>) {
        x.clear();
        x.extend_from_slice(features);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(x, y);
            std::mem::swap(x, y);
            if i != last {
                for v in x.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
        }
        log_softmax(x);
    }

    /// The widest activation any layer produces or consumes — the row
    /// stride of the block scratch layout.
    pub fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.in_dim.max(l.out_dim))
            .max()
            .unwrap()
    }

    /// Exact scratch length (in `f32`s) [`Mlp::log_posteriors_block_into`]
    /// and [`Mlp::score_block_into`] require for a block of `rows`
    /// frames: two ping-pong activation planes of `rows` × the widest
    /// layer.
    pub fn block_scratch_len(&self, rows: usize) -> usize {
        2 * rows * self.max_width()
    }

    /// Forward pass over a *block* of `rows` feature vectors — the
    /// matrix–matrix form of [`Mlp::log_posteriors_into`] that batched
    /// scoring runs once per gather window instead of once per session.
    ///
    /// `features` holds the block packed row-major (`rows` ×
    /// [`Mlp::input_dim`], no padding). `scratch` is a caller-owned
    /// slice of **exactly** [`Mlp::block_scratch_len`]`(rows)` — a
    /// fixed-size borrow, unlike the `&mut Vec<f32>` buffers of the
    /// single-row path, so the batch hot loop cannot silently grow or
    /// allocate. On return the log-posteriors of row `r` sit at
    /// `scratch[r * stride ..][.. output_dim]` where `stride` is the
    /// returned row stride ([`Mlp::max_width`]).
    ///
    /// Every row's result is **bit-identical** to
    /// [`Mlp::log_posteriors_into`] on that row alone: each element is
    /// computed with the same dot-product fold order, the same ReLU, and
    /// the same log-softmax, and no value ever crosses between rows —
    /// batch composition is numerically invisible.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != rows * input_dim` or the scratch
    /// slice is not exactly the documented length (the allocation-free
    /// contract is also pinned by a debug assert at every layer step).
    pub fn log_posteriors_block_into(
        &self,
        features: &[f32],
        rows: usize,
        scratch: &mut [f32],
    ) -> usize {
        let w = self.max_width();
        assert_eq!(
            features.len(),
            rows * self.input_dim(),
            "feature block dimension mismatch"
        );
        assert_eq!(
            scratch.len(),
            self.block_scratch_len(rows),
            "block scratch must be exactly sized: caller-owned slices \
             cannot grow mid-batch"
        );
        if rows == 0 {
            return w;
        }
        let (a, b) = scratch.split_at_mut(rows * w);
        // Ping-pong between the two planes; pick the starting plane by
        // layer-count parity so the final activations always land in `a`
        // (the plane the caller reads) without a fix-up copy.
        let (mut cur, mut next): (&mut [f32], &mut [f32]) = if self.layers.len().is_multiple_of(2) {
            (a, b)
        } else {
            (b, a)
        };
        let in_dim = self.input_dim();
        for r in 0..rows {
            cur[r * w..r * w + in_dim].copy_from_slice(&features[r * in_dim..(r + 1) * in_dim]);
        }
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            debug_assert_eq!(
                cur.len() + next.len(),
                self.block_scratch_len(rows),
                "block scratch planes grew mid-batch"
            );
            layer.forward_block_into(cur, w, rows, next, w);
            std::mem::swap(&mut cur, &mut next);
            if i != last {
                for r in 0..rows {
                    for v in cur[r * w..r * w + layer.out_dim].iter_mut() {
                        *v = v.max(0.0); // ReLU
                    }
                }
            }
        }
        let out_dim = self.output_dim();
        for r in 0..rows {
            log_softmax(&mut cur[r * w..r * w + out_dim]);
        }
        w
    }

    /// Scores one frame's features into an acoustic *cost row*
    /// (`row[0]` the epsilon column at `0.0`, `row[1 + p]` the negative
    /// log-posterior of phone class `p`) over caller-owned activation
    /// buffers — the single-row path the batched service's lone-session
    /// fallback takes, byte-identical to one row of
    /// [`Mlp::score_block_into`].
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != output_dim + 1` or the feature dimension
    /// mismatches.
    pub fn score_row_into(
        &self,
        features: &[f32],
        row: &mut [f32],
        x: &mut Vec<f32>,
        y: &mut Vec<f32>,
    ) {
        assert_eq!(row.len(), self.output_dim() + 1, "row length mismatch");
        self.log_posteriors_into(features, x, y);
        row[0] = 0.0;
        for (slot, lp) in row[1..].iter_mut().zip(x.iter()) {
            *slot = -lp;
        }
    }

    /// Scores a block of `rows` feature vectors into packed acoustic
    /// cost rows — one [`Mlp::log_posteriors_block_into`] pass plus the
    /// cost mapping of [`Mlp::score_row_into`] per row. `out` is packed
    /// row-major (`rows` × `output_dim + 1`); `scratch` must be exactly
    /// [`Mlp::block_scratch_len`]`(rows)`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch (see
    /// [`Mlp::log_posteriors_block_into`]).
    pub fn score_block_into(
        &self,
        features: &[f32],
        rows: usize,
        out: &mut [f32],
        scratch: &mut [f32],
    ) {
        let row_len = self.output_dim() + 1;
        assert_eq!(out.len(), rows * row_len, "output block dimension mismatch");
        let stride = self.log_posteriors_block_into(features, rows, scratch);
        for r in 0..rows {
            let row = &mut out[r * row_len..(r + 1) * row_len];
            row[0] = 0.0;
            for (slot, lp) in row[1..].iter_mut().zip(&scratch[r * stride..]) {
                *slot = -lp;
            }
        }
    }

    /// Scores a whole utterance into an [`AcousticTable`] of costs
    /// (negative log-posteriors), with phone id 0 (epsilon) left at cost 0.
    pub fn score_utterance(&self, features: &[Vec<f32>]) -> AcousticTable {
        let phones = self.output_dim();
        AcousticTable::from_fn(features.len(), phones + 1, |frame, phone| {
            if phone == 0 {
                0.0
            } else {
                -self.log_posteriors(&features[frame])[phone - 1]
            }
        })
    }

    /// Multiply-accumulate count of one frame's forward pass — used by the
    /// GPU platform model to estimate DNN runtime.
    pub fn flops_per_frame(&self) -> u64 {
        self.layers.iter().map(Dense::flops).sum()
    }
}

/// Numerically-stable in-place log-softmax.
fn log_softmax(x: &mut [f32]) {
    let max = x.iter().cloned().fold(f32::MIN, f32::max);
    let log_sum = x.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in x {
        *v -= log_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_posteriors_normalize() {
        let mlp = Mlp::new(&[4, 8, 5], 1);
        let lp = mlp.log_posteriors(&[0.1, -0.2, 0.3, 0.4]);
        let total: f32 = lp.iter().map(|v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-4, "posteriors sum to {total}");
        assert!(lp.iter().all(|v| *v <= 0.0));
    }

    #[test]
    fn construction_is_deterministic() {
        let a = Mlp::new(&[4, 6, 3], 42).log_posteriors(&[1.0, 2.0, 3.0, 4.0]);
        let b = Mlp::new(&[4, 6, 3], 42).log_posteriors(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = Mlp::new(&[4, 6, 3], 1).log_posteriors(&[1.0; 4]);
        let b = Mlp::new(&[4, 6, 3], 2).log_posteriors(&[1.0; 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn flops_count_matches_topology() {
        let mlp = Mlp::new(&[39, 512, 2001], 0);
        assert_eq!(mlp.flops_per_frame(), 2 * (39 * 512 + 512 * 2001) as u64);
    }

    #[test]
    fn score_utterance_shapes_table() {
        let mlp = Mlp::new(&[4, 8, 5], 3);
        let feats = vec![vec![0.0; 4]; 6];
        let table = mlp.score_utterance(&feats);
        assert_eq!(table.num_frames(), 6);
        assert_eq!(table.num_phones(), 6); // 5 classes + epsilon slot
                                           // Costs are non-negative (posteriors <= 1).
        for f in 0..6 {
            for p in 1..6u32 {
                assert!(table.cost(f, asr_wfst::PhoneId(p)) >= 0.0);
            }
        }
    }

    #[test]
    fn log_softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1000.0, 1000.0];
        log_softmax(&mut x);
        for v in &x {
            assert!((v - (1f32 / 3.0).ln()).abs() < 1e-4);
            assert!(v.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dim_panics() {
        Mlp::new(&[4, 3], 0).log_posteriors(&[0.0; 5]);
    }

    #[test]
    fn kaldi_like_topology() {
        let mlp = Mlp::kaldi_like(39, 2000, 0);
        assert_eq!(mlp.input_dim(), 39);
        assert_eq!(mlp.output_dim(), 2000);
    }

    /// A deterministic block of pseudo-random feature rows.
    fn feature_block(mlp: &Mlp, rows: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..rows * mlp.input_dim())
            .map(|_| rng.gen_range(-2.0..2.0))
            .collect()
    }

    #[test]
    fn block_log_posteriors_match_single_rows_bit_for_bit() {
        // Odd and even layer counts exercise both ping-pong parities.
        for dims in [&[7usize, 16, 5][..], &[7, 16, 12, 5][..]] {
            let mlp = Mlp::new(dims, 11);
            for rows in [1usize, 2, 3, 8] {
                let feats = feature_block(&mlp, rows, rows as u64);
                let mut scratch = vec![0.0; mlp.block_scratch_len(rows)];
                let stride = mlp.log_posteriors_block_into(&feats, rows, &mut scratch);
                for r in 0..rows {
                    let single = mlp.log_posteriors(&feats[r * 7..(r + 1) * 7]);
                    let block = &scratch[r * stride..r * stride + mlp.output_dim()];
                    for (b, s) in block.iter().zip(&single) {
                        assert_eq!(
                            b.to_bits(),
                            s.to_bits(),
                            "row {r} of a {rows}-row block diverged ({dims:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_cost_rows_match_score_row_into_bit_for_bit() {
        let mlp = Mlp::new(&[6, 24, 9], 23);
        let rows = 5;
        let feats = feature_block(&mlp, rows, 99);
        let row_len = mlp.output_dim() + 1;
        let mut out = vec![0.0; rows * row_len];
        let mut scratch = vec![0.0; mlp.block_scratch_len(rows)];
        mlp.score_block_into(&feats, rows, &mut out, &mut scratch);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let mut single = vec![0.0; row_len];
        for r in 0..rows {
            mlp.score_row_into(&feats[r * 6..(r + 1) * 6], &mut single, &mut x, &mut y);
            let block_row = &out[r * row_len..(r + 1) * row_len];
            assert_eq!(block_row[0], 0.0, "epsilon column");
            for (b, s) in block_row.iter().zip(&single) {
                assert_eq!(b.to_bits(), s.to_bits(), "cost row {r} diverged");
            }
        }
    }

    #[test]
    fn block_rows_are_independent_of_batch_composition() {
        // The same feature row must score to the same bytes whether its
        // batch mates are zeros, itself, or noise.
        let mlp = Mlp::new(&[5, 20, 7], 31);
        let probe: Vec<f32> = feature_block(&mlp, 1, 7);
        let stride = mlp.max_width();
        let score_at = |block: &[f32], rows: usize, at: usize| -> Vec<u32> {
            let mut scratch = vec![0.0; mlp.block_scratch_len(rows)];
            mlp.log_posteriors_block_into(block, rows, &mut scratch);
            scratch[at * stride..at * stride + mlp.output_dim()]
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        let alone = score_at(&probe, 1, 0);
        let mut with_zeros = vec![0.0; 5];
        with_zeros.extend_from_slice(&probe);
        assert_eq!(score_at(&with_zeros, 2, 1), alone);
        let mut with_noise = feature_block(&mlp, 3, 5);
        with_noise.extend_from_slice(&probe);
        assert_eq!(score_at(&with_noise, 4, 3), alone);
    }

    #[test]
    #[should_panic(expected = "exactly sized")]
    fn block_scratch_must_be_exactly_sized() {
        let mlp = Mlp::new(&[4, 8, 3], 0);
        let feats = vec![0.0; 8];
        let mut oversized = vec![0.0; mlp.block_scratch_len(2) + 1];
        mlp.log_posteriors_block_into(&feats, 2, &mut oversized);
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let mlp = Mlp::new(&[4, 8, 3], 0);
        let mut scratch: Vec<f32> = Vec::new();
        assert_eq!(
            mlp.log_posteriors_block_into(&[], 0, &mut scratch),
            mlp.max_width()
        );
    }
}
