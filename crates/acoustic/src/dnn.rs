//! From-scratch multi-layer perceptron acoustic model.
//!
//! The paper's hybrid system runs a DNN on the GPU to produce per-phone
//! likelihoods while the accelerator searches. This module implements that
//! DNN: dense layers with ReLU activations and a log-softmax output over
//! the phone set. Weights are deterministic (seeded Xavier-style init);
//! since no training corpus ships with the reproduction, *functional*
//! decoding accuracy comes from [`crate::template`], while this MLP
//! provides the realistic compute/memory workload for the platform models
//! (FLOP counts, batch scoring).

use crate::scores::AcousticTable;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One dense layer: `y = W x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Vec<f32>, // row-major [out][in]
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights drawn from `rng`.
    pub fn random<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "degenerate layer shape");
        let limit = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        let bias = vec![0.0; out_dim];
        Self {
            weights,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Applies the affine map.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.forward_into(input, &mut out);
        out
    }

    /// Allocation-free form of [`Dense::forward`]: `out` is cleared and
    /// refilled (no allocation once its capacity reaches the layer
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != in_dim`.
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        assert_eq!(input.len(), self.in_dim, "layer input dimension mismatch");
        out.clear();
        out.extend((0..self.out_dim).map(|o| {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            row.iter().zip(input).map(|(w, x)| w * x).sum::<f32>() + self.bias[o]
        }));
    }

    /// Multiply-accumulate count of one forward pass.
    pub fn flops(&self) -> u64 {
        2 * (self.in_dim as u64) * (self.out_dim as u64)
    }
}

/// A feed-forward acoustic network: input features → hidden ReLU layers →
/// log-softmax over phones.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[39, 512, 512, 2001]`
    /// (input dim, hidden dims..., phone count). Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Dense::random(w[0], w[1], &mut rng))
            .collect();
        Self { layers }
    }

    /// The paper-like topology used by the platform models: 39-dim MFCC
    /// input, a few wide hidden layers, `num_phones` outputs.
    pub fn kaldi_like(input_dim: usize, num_phones: usize, seed: u64) -> Self {
        Self::new(&[input_dim, 512, 512, 512, num_phones], seed)
    }

    /// Input feature dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Number of output classes (phones).
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim
    }

    /// Forward pass returning log-posteriors (log-softmax output).
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the input dimension.
    pub fn log_posteriors(&self, features: &[f32]) -> Vec<f32> {
        let mut x = Vec::new();
        let mut y = Vec::new();
        self.log_posteriors_into(features, &mut x, &mut y);
        x
    }

    /// Allocation-free form of [`Mlp::log_posteriors`] over two
    /// caller-owned activation buffers (ping-ponged between layers); the
    /// log-posteriors are left in `x`. Once both buffers have grown to
    /// the widest layer, repeated calls allocate nothing — this is what
    /// [`crate::online::MlpScorer`] pumps per streamed frame.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the input dimension.
    pub fn log_posteriors_into(&self, features: &[f32], x: &mut Vec<f32>, y: &mut Vec<f32>) {
        x.clear();
        x.extend_from_slice(features);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(x, y);
            std::mem::swap(x, y);
            if i != last {
                for v in x.iter_mut() {
                    *v = v.max(0.0); // ReLU
                }
            }
        }
        log_softmax(x);
    }

    /// Scores a whole utterance into an [`AcousticTable`] of costs
    /// (negative log-posteriors), with phone id 0 (epsilon) left at cost 0.
    pub fn score_utterance(&self, features: &[Vec<f32>]) -> AcousticTable {
        let phones = self.output_dim();
        AcousticTable::from_fn(features.len(), phones + 1, |frame, phone| {
            if phone == 0 {
                0.0
            } else {
                -self.log_posteriors(&features[frame])[phone - 1]
            }
        })
    }

    /// Multiply-accumulate count of one frame's forward pass — used by the
    /// GPU platform model to estimate DNN runtime.
    pub fn flops_per_frame(&self) -> u64 {
        self.layers.iter().map(Dense::flops).sum()
    }
}

/// Numerically-stable in-place log-softmax.
fn log_softmax(x: &mut [f32]) {
    let max = x.iter().cloned().fold(f32::MIN, f32::max);
    let log_sum = x.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in x {
        *v -= log_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_posteriors_normalize() {
        let mlp = Mlp::new(&[4, 8, 5], 1);
        let lp = mlp.log_posteriors(&[0.1, -0.2, 0.3, 0.4]);
        let total: f32 = lp.iter().map(|v| v.exp()).sum();
        assert!((total - 1.0).abs() < 1e-4, "posteriors sum to {total}");
        assert!(lp.iter().all(|v| *v <= 0.0));
    }

    #[test]
    fn construction_is_deterministic() {
        let a = Mlp::new(&[4, 6, 3], 42).log_posteriors(&[1.0, 2.0, 3.0, 4.0]);
        let b = Mlp::new(&[4, 6, 3], 42).log_posteriors(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = Mlp::new(&[4, 6, 3], 1).log_posteriors(&[1.0; 4]);
        let b = Mlp::new(&[4, 6, 3], 2).log_posteriors(&[1.0; 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn flops_count_matches_topology() {
        let mlp = Mlp::new(&[39, 512, 2001], 0);
        assert_eq!(mlp.flops_per_frame(), 2 * (39 * 512 + 512 * 2001) as u64);
    }

    #[test]
    fn score_utterance_shapes_table() {
        let mlp = Mlp::new(&[4, 8, 5], 3);
        let feats = vec![vec![0.0; 4]; 6];
        let table = mlp.score_utterance(&feats);
        assert_eq!(table.num_frames(), 6);
        assert_eq!(table.num_phones(), 6); // 5 classes + epsilon slot
                                           // Costs are non-negative (posteriors <= 1).
        for f in 0..6 {
            for p in 1..6u32 {
                assert!(table.cost(f, asr_wfst::PhoneId(p)) >= 0.0);
            }
        }
    }

    #[test]
    fn log_softmax_is_stable_for_large_inputs() {
        let mut x = vec![1000.0, 1000.0, 1000.0];
        log_softmax(&mut x);
        for v in &x {
            assert!((v - (1f32 / 3.0).ln()).abs() < 1e-4);
            assert!(v.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dim_panics() {
        Mlp::new(&[4, 3], 0).log_posteriors(&[0.0; 5]);
    }

    #[test]
    fn kaldi_like_topology() {
        let mlp = Mlp::kaldi_like(39, 2000, 0);
        assert_eq!(mlp.input_dim(), 39);
        assert_eq!(mlp.output_dim(), 2000);
    }
}
