//! Iterative radix-2 fast Fourier transform.
//!
//! A dependency-free FFT sufficient for the MFCC front-end: real input,
//! power-of-two lengths, producing the magnitude-squared spectrum the mel
//! filterbank integrates.

/// A complex number in rectangular form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// Creates a complex number.
    #[inline]
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Complex multiplication.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Complex addition.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Complex subtraction.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Self) -> Self {
        Self {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }
}

/// In-place iterative Cooley-Tukey FFT.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_in_place(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * std::f32::consts::PI / len as f32;
        let wlen = Complex::new(angle.cos(), angle.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Computes the one-sided power spectrum of a real signal.
///
/// The input is zero-padded to `fft_len`; the output has `fft_len / 2 + 1`
/// bins (DC through Nyquist), each the squared magnitude of the transform.
///
/// # Panics
///
/// Panics if `fft_len` is not a power of two or the input is longer than
/// `fft_len`.
pub fn power_spectrum(samples: &[f32], fft_len: usize) -> Vec<f32> {
    let mut buf = vec![Complex::default(); fft_len];
    let mut out = vec![0.0f32; fft_len / 2 + 1];
    power_spectrum_into(samples, &mut buf, &mut out);
    out
}

/// Allocation-free form of [`power_spectrum`] over caller-owned scratch:
/// `buf` (length = the FFT length) is cleared, loaded, and transformed in
/// place; the one-sided squared magnitudes land in `out`.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two, the input is longer than
/// `buf`, or `out.len() != buf.len() / 2 + 1`.
pub fn power_spectrum_into(samples: &[f32], buf: &mut [Complex], out: &mut [f32]) {
    let fft_len = buf.len();
    assert!(fft_len.is_power_of_two());
    assert!(samples.len() <= fft_len, "input longer than FFT length");
    assert_eq!(out.len(), fft_len / 2 + 1, "spectrum output length");
    buf.fill(Complex::default());
    for (b, &s) in buf.iter_mut().zip(samples) {
        b.re = s;
    }
    fft_in_place(buf);
    for (o, c) in out.iter_mut().zip(buf.iter()) {
        *o = c.norm_sqr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::PI;

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut buf = vec![Complex::default(); 8];
        buf[0].re = 1.0;
        fft_in_place(&mut buf);
        for c in &buf {
            assert!((c.re - 1.0).abs() < 1e-5);
            assert!(c.im.abs() < 1e-5);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let spec = power_spectrum(&[1.0; 16], 16);
        assert!((spec[0] - 256.0).abs() < 1e-3); // (sum)^2
        for &p in &spec[1..] {
            assert!(p < 1e-6);
        }
    }

    #[test]
    fn pure_tone_peaks_at_its_bin() {
        let n = 64;
        let k = 5; // cycles per window
        let samples: Vec<f32> = (0..n)
            .map(|i| (2.0 * PI * k as f32 * i as f32 / n as f32).sin())
            .collect();
        let spec = power_spectrum(&samples, n);
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, k);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let samples: Vec<f32> = (0..32).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
        let time_energy: f32 = samples.iter().map(|s| s * s).sum();
        let mut buf: Vec<Complex> = samples.iter().map(|&s| Complex::new(s, 0.0)).collect();
        fft_in_place(&mut buf);
        let freq_energy: f32 = buf.iter().map(|c| c.norm_sqr()).sum::<f32>() / 32.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn zero_padding_is_applied() {
        let spec = power_spectrum(&[1.0, 1.0], 8);
        assert_eq!(spec.len(), 5);
        assert!((spec[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Complex::default(); 6];
        fft_in_place(&mut buf);
    }

    #[test]
    fn linearity_property_holds() {
        // FFT(a + b) == FFT(a) + FFT(b), checked on random-ish data.
        let a: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..16).map(|i| (i as f32 * 1.17).cos()).collect();
        let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let mut fab: Vec<Complex> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| Complex::new(x + y, 0.0))
            .collect();
        fft_in_place(&mut fa);
        fft_in_place(&mut fb);
        fft_in_place(&mut fab);
        for i in 0..16 {
            let s = fa[i].add(fb[i]);
            assert!((s.re - fab[i].re).abs() < 1e-3);
            assert!((s.im - fab[i].im).abs() < 1e-3);
        }
    }
}
