//! Framing and windowing of the raw waveform.
//!
//! The paper's pipeline segments audio into 10 ms frames. We apply the
//! standard front-end treatment: pre-emphasis to flatten the spectral tilt,
//! then a Hamming window per frame before the FFT.

/// Framing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameConfig {
    /// Samples per frame (10 ms at 16 kHz = 160).
    pub frame_len: usize,
    /// Hop between frame starts; equal to `frame_len` for non-overlapping
    /// frames as in the paper's description.
    pub hop: usize,
    /// Pre-emphasis coefficient (0.0 disables).
    pub pre_emphasis: f32,
}

impl Default for FrameConfig {
    fn default() -> Self {
        Self {
            frame_len: crate::FRAME_SAMPLES,
            hop: crate::FRAME_SAMPLES,
            pre_emphasis: 0.97,
        }
    }
}

/// Streaming pre-emphasis state: carries `x[t-1]` across pushes so a
/// sample-by-sample front-end produces exactly the filter output of the
/// batch [`pre_emphasize`] over the concatenated signal.
#[derive(Debug, Clone, Copy)]
pub struct PreEmphasis {
    coefficient: f32,
    prev: f32,
}

impl PreEmphasis {
    /// Creates the filter state (the first sample sees `x[-1] = 0`).
    pub fn new(coefficient: f32) -> Self {
        Self {
            coefficient,
            prev: 0.0,
        }
    }

    /// Filters one sample: `y[t] = x[t] - a * x[t-1]` (identity when the
    /// coefficient is zero, matching the batch form).
    #[inline]
    pub fn step(&mut self, sample: f32) -> f32 {
        let out = if self.coefficient == 0.0 {
            sample
        } else {
            sample - self.coefficient * self.prev
        };
        self.prev = sample;
        out
    }

    /// Forgets the carried sample (start of a new utterance).
    pub fn reset(&mut self) {
        self.prev = 0.0;
    }
}

/// Applies the pre-emphasis filter `y[t] = x[t] - a * x[t-1]` in place.
pub fn pre_emphasize(samples: &mut [f32], coefficient: f32) {
    let mut filter = PreEmphasis::new(coefficient);
    for s in samples {
        *s = filter.step(*s);
    }
}

/// Windows one frame of already-emphasized samples into `out`: each output
/// is `samples[i] * window[i]`, zero past the end of `samples` (the batch
/// framer's zero-padding of a trailing partial frame).
///
/// # Panics
///
/// Panics if `out` and `window` lengths differ or `samples` is longer than
/// the window.
pub fn window_frame_into(samples: &[f32], window: &[f32], out: &mut [f32]) {
    assert_eq!(out.len(), window.len(), "window/output length mismatch");
    assert!(samples.len() <= window.len(), "frame longer than window");
    for (i, (o, w)) in out.iter_mut().zip(window).enumerate() {
        *o = if i < samples.len() {
            samples[i] * w
        } else {
            0.0
        };
    }
}

/// The Hamming window of length `n`.
pub fn hamming(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            0.54 - 0.46 * (2.0 * std::f32::consts::PI * i as f32 / (n.max(2) - 1) as f32).cos()
        })
        .collect()
}

/// Splits `samples` into windowed frames.
///
/// A trailing partial frame is zero-padded so short utterances still emit
/// at least one frame. Returns an empty vector for empty input.
///
/// # Panics
///
/// Panics if `cfg.frame_len == 0` or `cfg.hop == 0`.
pub fn frames(samples: &[f32], cfg: &FrameConfig) -> Vec<Vec<f32>> {
    assert!(cfg.frame_len > 0 && cfg.hop > 0, "degenerate frame config");
    if samples.is_empty() {
        return Vec::new();
    }
    let mut emphasized = samples.to_vec();
    pre_emphasize(&mut emphasized, cfg.pre_emphasis);
    let window = hamming(cfg.frame_len);
    let mut out = Vec::new();
    let mut start = 0;
    while start < emphasized.len() {
        let end = (start + cfg.frame_len).min(emphasized.len());
        let mut frame = vec![0.0f32; cfg.frame_len];
        window_frame_into(&emphasized[start..end], &window, &mut frame);
        out.push(frame);
        start += cfg.hop;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_count_covers_input() {
        let cfg = FrameConfig::default();
        let samples = vec![0.5f32; 160 * 3 + 10]; // 3 full frames + partial
        let f = frames(&samples, &cfg);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|fr| fr.len() == 160));
    }

    #[test]
    fn empty_input_gives_no_frames() {
        assert!(frames(&[], &FrameConfig::default()).is_empty());
    }

    #[test]
    fn pre_emphasis_removes_dc_trend() {
        let mut dc = vec![1.0f32; 100];
        pre_emphasize(&mut dc, 0.97);
        // After the first sample the output settles near 0.03.
        for &s in &dc[1..] {
            assert!((s - 0.03).abs() < 1e-6);
        }
        assert_eq!(dc[0], 1.0);
    }

    #[test]
    fn zero_coefficient_is_identity() {
        let mut x = vec![0.1, -0.2, 0.3];
        let orig = x.clone();
        pre_emphasize(&mut x, 0.0);
        assert_eq!(x, orig);
    }

    #[test]
    fn hamming_window_is_symmetric_and_peaked() {
        let w = hamming(160);
        assert_eq!(w.len(), 160);
        for i in 0..80 {
            assert!((w[i] - w[159 - i]).abs() < 1e-5, "asymmetry at {i}");
        }
        let peak = w.iter().cloned().fold(f32::MIN, f32::max);
        assert!(peak <= 1.0 && peak > 0.99);
        assert!((w[0] - 0.08).abs() < 1e-5);
    }

    #[test]
    fn windowing_tapers_frame_edges() {
        let cfg = FrameConfig {
            pre_emphasis: 0.0,
            ..FrameConfig::default()
        };
        let samples = vec![1.0f32; 160];
        let f = frames(&samples, &cfg);
        assert!((f[0][0] - 0.08).abs() < 1e-5);
        assert!(f[0][80] > 0.9);
    }

    #[test]
    fn overlapping_hop_increases_frame_count() {
        let cfg = FrameConfig {
            hop: 80,
            ..FrameConfig::default()
        };
        let samples = vec![0.1f32; 320];
        assert_eq!(frames(&samples, &cfg).len(), 4);
    }
}
