//! Gaussian mixture model acoustic scoring.
//!
//! Before hybrid DNN systems, GMM-HMM was the standard acoustic model
//! (the paper's Section VII cites pre-WFST accelerators for Sphinx-era
//! GMM systems). The accelerator is agnostic to where its score table
//! comes from, so this crate provides the GMM path too: per-phone
//! diagonal-covariance mixtures evaluated in log space. Parameters are
//! either fitted from labelled synthetic frames (one EM-free
//! moment-matching pass per phone) or seeded deterministically.

use crate::mfcc::{MfccConfig, MfccPipeline};
use crate::scores::AcousticTable;
use crate::signal::{render_phones, SignalConfig};
use asr_wfst::PhoneId;
use serde::{Deserialize, Serialize};

/// One diagonal-covariance Gaussian component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Mean vector.
    pub mean: Vec<f32>,
    /// Per-dimension variances (floored at construction).
    pub var: Vec<f32>,
    /// Mixture weight (sums to 1 within a mixture).
    pub weight: f32,
    // Cached: log(weight) - 0.5 * sum(log(2*pi*var)).
    log_norm: f32,
}

impl Gaussian {
    /// Creates a component, flooring variances for robustness.
    ///
    /// Variance flooring is the standard GMM-HMM trick: deterministic or
    /// tiny training sets underestimate variances, making the model
    /// brittle on frames it has not seen (phone-transition frames here);
    /// the floor keeps Mahalanobis penalties bounded.
    ///
    /// # Panics
    ///
    /// Panics if `mean` and `var` lengths differ or `weight <= 0`.
    pub fn new(mean: Vec<f32>, mut var: Vec<f32>, weight: f32) -> Self {
        assert_eq!(mean.len(), var.len(), "mean/variance dimension mismatch");
        assert!(weight > 0.0, "non-positive mixture weight");
        for v in &mut var {
            *v = v.max(0.5);
        }
        let log_norm = weight.ln()
            - 0.5
                * var
                    .iter()
                    .map(|v| (2.0 * std::f32::consts::PI * v).ln())
                    .sum::<f32>();
        Self {
            mean,
            var,
            weight,
            log_norm,
        }
    }

    /// Log density (up to the cached normalization) of `x`.
    pub fn log_density(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.mean.len());
        let mahal: f32 = x
            .iter()
            .zip(&self.mean)
            .zip(&self.var)
            .map(|((xi, mi), vi)| (xi - mi) * (xi - mi) / vi)
            .sum();
        self.log_norm - 0.5 * mahal
    }
}

/// A per-phone mixture.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mixture {
    /// Components; weights sum to ~1.
    pub components: Vec<Gaussian>,
}

impl Mixture {
    /// Log likelihood via log-sum-exp over components.
    pub fn log_likelihood(&self, x: &[f32]) -> f32 {
        let logs: Vec<f32> = self.components.iter().map(|g| g.log_density(x)).collect();
        let max = logs.iter().cloned().fold(f32::MIN, f32::max);
        if !max.is_finite() {
            return f32::MIN;
        }
        max + logs.iter().map(|l| (l - max).exp()).sum::<f32>().ln()
    }
}

/// A GMM acoustic model over phones `1..=num_phones`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GmmModel {
    mixtures: Vec<Mixture>, // index 0 unused (epsilon)
    #[serde(skip)]
    pipeline: Option<MfccPipeline>,
}

impl GmmModel {
    /// Fits a single-component model per phone from that phone's synthetic
    /// rendering: moment matching (sample mean and variance) over interior
    /// frames — the closed-form special case of EM.
    pub fn fit_from_synthetic(num_phones: u32, signal_cfg: &SignalConfig) -> Self {
        let pipeline = MfccPipeline::new(MfccConfig::default());
        let mut mixtures = vec![Mixture::default(); num_phones as usize + 1];
        for phone in 1..=num_phones {
            let wave = render_phones(&[PhoneId(phone)], 8, signal_cfg);
            let feats = pipeline.process(&wave);
            let interior = &feats[1..feats.len() - 1];
            let dim = interior[0].len();
            let count = interior.len() as f32;
            let mut mean = vec![0.0f32; dim];
            for f in interior {
                for (m, v) in mean.iter_mut().zip(f) {
                    *m += v / count;
                }
            }
            let mut var = vec![0.0f32; dim];
            for f in interior {
                for ((v, x), m) in var.iter_mut().zip(f).zip(&mean) {
                    *v += (x - m) * (x - m) / count;
                }
            }
            mixtures[phone as usize] = Mixture {
                components: vec![Gaussian::new(mean, var, 1.0)],
            };
        }
        Self {
            mixtures,
            pipeline: Some(pipeline),
        }
    }

    /// Number of modelled phones (excluding epsilon).
    pub fn num_phones(&self) -> u32 {
        (self.mixtures.len() - 1) as u32
    }

    /// Acoustic cost (negative log likelihood) of `phone` for a feature
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if the phone is epsilon/unmodelled.
    pub fn frame_cost(&self, features: &[f32], phone: PhoneId) -> f32 {
        let mix = &self.mixtures[phone.index()];
        assert!(!mix.components.is_empty(), "no mixture for {phone:?}");
        -mix.log_likelihood(features)
    }

    /// Scores a waveform into an [`AcousticTable`].
    ///
    /// # Panics
    ///
    /// Panics if the model was deserialized without re-attaching a
    /// pipeline (construct via [`GmmModel::fit_from_synthetic`]).
    pub fn score_waveform(&self, samples: &[f32]) -> AcousticTable {
        let pipeline = self
            .pipeline
            .as_ref()
            .expect("model has no feature pipeline attached");
        let feats = pipeline.process(samples);
        AcousticTable::from_fn(feats.len(), self.mixtures.len(), |frame, phone| {
            if phone == 0 {
                0.0
            } else {
                self.frame_cost(&feats[frame], PhoneId(phone as u32))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_peaks_at_its_mean() {
        let g = Gaussian::new(vec![1.0, -1.0], vec![0.5, 0.5], 1.0);
        let at_mean = g.log_density(&[1.0, -1.0]);
        let away = g.log_density(&[2.0, 0.0]);
        assert!(at_mean > away);
    }

    #[test]
    fn mixture_log_likelihood_is_stable() {
        let m = Mixture {
            components: vec![
                Gaussian::new(vec![0.0], vec![1.0], 0.5),
                Gaussian::new(vec![10.0], vec![1.0], 0.5),
            ],
        };
        // Near either mode the likelihood is finite and mode-local.
        let near0 = m.log_likelihood(&[0.1]);
        let near10 = m.log_likelihood(&[9.9]);
        let far = m.log_likelihood(&[100.0]);
        assert!(near0.is_finite() && near10.is_finite());
        assert!((near0 - near10).abs() < 0.5);
        assert!(far < near0);
    }

    #[test]
    fn fitted_model_classifies_its_training_phones() {
        let cfg = SignalConfig::default();
        let model = GmmModel::fit_from_synthetic(6, &cfg);
        assert_eq!(model.num_phones(), 6);
        for truth in 1..=6u32 {
            let wave = render_phones(&[PhoneId(truth)], 6, &cfg);
            let table = model.score_waveform(&wave);
            let frame = 3; // interior
            let best = (1..=6u32)
                .min_by(|&a, &b| {
                    table
                        .cost(frame, PhoneId(a))
                        .total_cmp(&table.cost(frame, PhoneId(b)))
                })
                .unwrap();
            assert_eq!(best, truth, "phone {truth} misclassified");
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_gaussian_rejected() {
        Gaussian::new(vec![0.0; 3], vec![1.0; 4], 1.0);
    }

    #[test]
    fn variances_are_floored() {
        let g = Gaussian::new(vec![0.0], vec![0.0], 1.0);
        assert!(g.var[0] >= 0.5);
        assert!(g.log_density(&[0.0]).is_finite());
    }
}
