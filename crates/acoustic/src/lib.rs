//! Acoustic substrate for the reproduction of *"An Ultra Low-Power Hardware
//! Accelerator for Automatic Speech Recognition"* (MICRO 2016).
//!
//! The paper's ASR pipeline has two stages: a DNN acoustic model that turns
//! 10 ms frames of audio into phoneme likelihoods, and the Viterbi search
//! (the accelerator's job) that turns those likelihoods into words. This
//! crate implements the first stage end to end, from scratch:
//!
//! * [`signal`]: deterministic synthetic speech — each phone is rendered as
//!   a formant-like mixture of sinusoids, replacing the Librispeech corpus
//!   we cannot redistribute (see DESIGN.md substitution log);
//! * [`frame`]: 10 ms framing, pre-emphasis, Hamming windowing;
//! * [`fft`]: an iterative radix-2 FFT;
//! * [`mel`]: the mel filterbank;
//! * [`dct`]: DCT-II for cepstral coefficients;
//! * [`mfcc`]: the full feature pipeline (13 MFCCs + Δ + ΔΔ);
//! * [`dnn`]: a from-scratch multi-layer perceptron producing per-phone
//!   log-posteriors (the "DNN" of the paper's hybrid system);
//! * [`template`]: a template (nearest-prototype) scorer that behaves like a
//!   trained acoustic model on the synthetic speech, so functional tests can
//!   decode utterances back to the words that produced them;
//! * [`scores`]: the per-frame acoustic cost table the accelerator's
//!   Acoustic Likelihood Buffer is filled from;
//! * [`online`]: the incremental front-end — push raw samples, pop feature
//!   vectors ([`online::OnlineMfcc`]) or acoustic cost rows
//!   ([`online::OnlineScorer`]), bit-identical to the batch pipeline.
//!
//! Scores follow the same convention as `asr-wfst`: *costs* (negative log
//! probabilities), added along paths.
//!
//! # Example: features from one second of synthetic speech
//!
//! ```
//! use asr_acoustic::signal::{SignalConfig, render_phones};
//! use asr_acoustic::mfcc::{MfccConfig, MfccPipeline};
//! use asr_wfst::PhoneId;
//!
//! let cfg = SignalConfig::default();
//! let wave = render_phones(&[PhoneId(1), PhoneId(2)], 50, &cfg);
//! let pipeline = MfccPipeline::new(MfccConfig::default());
//! let feats = pipeline.process(&wave);
//! assert_eq!(feats.len(), 100); // two phones x 50 frames
//! assert_eq!(feats[0].len(), 39); // 13 MFCC + deltas + delta-deltas
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dct;
pub mod dnn;
pub mod fft;
pub mod frame;
pub mod gmm;
pub mod mel;
pub mod mfcc;
pub mod online;
pub mod scores;
pub mod signal;
pub mod template;
pub mod vad;

/// Sample rate used throughout the crate (16 kHz, the ASR standard).
pub const SAMPLE_RATE: u32 = 16_000;

/// Samples per 10 ms frame at [`SAMPLE_RATE`] (the paper's frame length).
pub const FRAME_SAMPLES: usize = 160;
