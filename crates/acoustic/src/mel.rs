//! Mel filterbank: perceptually-spaced triangular filters over the power
//! spectrum, the core of the MFCC feature extraction (Section II cites MFCC
//! as the standard signal-processing step of an ASR pipeline).

/// Converts frequency in Hz to the mel scale.
#[inline]
pub fn hz_to_mel(hz: f32) -> f32 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel back to Hz.
#[inline]
pub fn mel_to_hz(mel: f32) -> f32 {
    700.0 * (10f32.powf(mel / 2595.0) - 1.0)
}

/// A bank of triangular mel-spaced filters.
#[derive(Debug, Clone)]
pub struct MelFilterbank {
    // One weight row per filter over the spectrum bins.
    filters: Vec<Vec<(usize, f32)>>, // sparse (bin, weight) pairs
    num_bins: usize,
}

impl MelFilterbank {
    /// Builds `num_filters` triangular filters between `f_lo` and `f_hi`
    /// Hz for spectra with `num_bins` bins at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `num_filters == 0`, `num_bins < num_filters + 2`, or the
    /// frequency range is empty.
    pub fn new(
        num_filters: usize,
        num_bins: usize,
        sample_rate: u32,
        f_lo: f32,
        f_hi: f32,
    ) -> Self {
        assert!(num_filters > 0, "need at least one filter");
        assert!(
            num_bins >= num_filters + 2,
            "spectrum too coarse for {num_filters} filters"
        );
        assert!(f_lo < f_hi, "empty frequency range");
        let mel_lo = hz_to_mel(f_lo);
        let mel_hi = hz_to_mel(f_hi);
        // num_filters + 2 edge points, evenly spaced on the mel scale.
        let edges: Vec<f32> = (0..num_filters + 2)
            .map(|i| {
                let mel = mel_lo + (mel_hi - mel_lo) * i as f32 / (num_filters + 1) as f32;
                mel_to_hz(mel)
            })
            .collect();
        let nyquist = sample_rate as f32 / 2.0;
        let bin_hz = nyquist / (num_bins - 1) as f32;
        let mut filters = Vec::with_capacity(num_filters);
        for f in 0..num_filters {
            let (left, center, right) = (edges[f], edges[f + 1], edges[f + 2]);
            let mut taps = Vec::new();
            for bin in 0..num_bins {
                let hz = bin as f32 * bin_hz;
                let w = if hz >= left && hz <= center && center > left {
                    (hz - left) / (center - left)
                } else if hz > center && hz <= right && right > center {
                    (right - hz) / (right - center)
                } else {
                    0.0
                };
                if w > 0.0 {
                    taps.push((bin, w));
                }
            }
            filters.push(taps);
        }
        Self { filters, num_bins }
    }

    /// Standard configuration: 26 filters from 0 Hz to Nyquist.
    pub fn standard(num_bins: usize, sample_rate: u32) -> Self {
        Self::new(26, num_bins, sample_rate, 20.0, sample_rate as f32 / 2.0)
    }

    /// Number of filters.
    pub fn num_filters(&self) -> usize {
        self.filters.len()
    }

    /// Applies the bank to a power spectrum, returning log filterbank
    /// energies (floored to avoid `-inf`).
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len()` differs from the configured bin count.
    pub fn apply(&self, spectrum: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.filters.len()];
        self.apply_into(spectrum, &mut out);
        out
    }

    /// Allocation-free form of [`MelFilterbank::apply`] into caller-owned
    /// storage (one slot per filter).
    ///
    /// # Panics
    ///
    /// Panics if `spectrum.len()` differs from the configured bin count or
    /// `out.len()` from the filter count.
    pub fn apply_into(&self, spectrum: &[f32], out: &mut [f32]) {
        assert_eq!(spectrum.len(), self.num_bins, "spectrum bin mismatch");
        assert_eq!(out.len(), self.filters.len(), "filter output length");
        for (o, taps) in out.iter_mut().zip(&self.filters) {
            let energy: f32 = taps.iter().map(|&(bin, w)| spectrum[bin] * w).sum();
            *o = energy.max(1e-10).ln();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_scale_roundtrip() {
        for hz in [0.0f32, 100.0, 1000.0, 4000.0, 8000.0] {
            let back = mel_to_hz(hz_to_mel(hz));
            assert!((back - hz).abs() < 0.5, "{hz} -> {back}");
        }
    }

    #[test]
    fn mel_scale_is_monotone_and_compressive() {
        assert!(hz_to_mel(1000.0) > hz_to_mel(500.0));
        // Equal Hz steps shrink on the mel axis at higher frequencies.
        let low_step = hz_to_mel(600.0) - hz_to_mel(500.0);
        let high_step = hz_to_mel(6100.0) - hz_to_mel(6000.0);
        assert!(low_step > high_step);
    }

    #[test]
    fn filters_cover_the_spectrum() {
        let fb = MelFilterbank::standard(257, 16_000);
        assert_eq!(fb.num_filters(), 26);
        // Every filter has at least one tap.
        for f in 0..fb.num_filters() {
            assert!(!fb.filters[f].is_empty(), "filter {f} is empty");
        }
    }

    #[test]
    fn flat_spectrum_yields_finite_energies() {
        let fb = MelFilterbank::standard(129, 16_000);
        let out = fb.apply(&vec![1.0; 129]);
        assert_eq!(out.len(), 26);
        assert!(out.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn zero_spectrum_is_floored_not_infinite() {
        let fb = MelFilterbank::standard(129, 16_000);
        let out = fb.apply(&vec![0.0; 129]);
        assert!(out.iter().all(|e| e.is_finite() && *e < 0.0));
    }

    #[test]
    fn narrowband_energy_lands_in_matching_filter() {
        let fb = MelFilterbank::standard(257, 16_000);
        // Energy only in bin 40 (~2.5 kHz).
        let mut spec = vec![0.0f32; 257];
        spec[40] = 100.0;
        let out = fb.apply(&spec);
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        // The peak filter must actually contain bin 40.
        assert!(fb.filters[peak].iter().any(|&(b, _)| b == 40));
    }

    #[test]
    #[should_panic(expected = "bin mismatch")]
    fn wrong_spectrum_length_panics() {
        let fb = MelFilterbank::standard(129, 16_000);
        fb.apply(&[0.0; 64]);
    }
}
