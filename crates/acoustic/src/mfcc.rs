//! End-to-end MFCC feature pipeline: waveform → framed/windowed signal →
//! power spectrum → mel filterbank → DCT → cepstra, plus Δ and ΔΔ
//! appending, matching the standard ASR front-end the paper assumes.

use crate::dct::Dct;
use crate::fft::{power_spectrum_into, Complex};
use crate::frame::{frames, FrameConfig};
use crate::mel::MelFilterbank;

/// Configuration of the MFCC pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MfccConfig {
    /// Framing parameters.
    pub frame: FrameConfig,
    /// FFT length (power of two, >= frame length).
    pub fft_len: usize,
    /// Number of mel filters.
    pub num_filters: usize,
    /// Number of cepstral coefficients kept.
    pub num_ceps: usize,
    /// Append Δ and ΔΔ features (tripling the dimension).
    pub deltas: bool,
    /// Sample rate in Hz.
    pub sample_rate: u32,
}

impl Default for MfccConfig {
    fn default() -> Self {
        Self {
            frame: FrameConfig::default(),
            fft_len: 256,
            num_filters: 26,
            num_ceps: 13,
            deltas: true,
            sample_rate: crate::SAMPLE_RATE,
        }
    }
}

/// Reusable MFCC extractor (filterbank and DCT tables are precomputed).
#[derive(Debug, Clone)]
pub struct MfccPipeline {
    cfg: MfccConfig,
    filterbank: MelFilterbank,
    dct: Dct,
}

impl MfccPipeline {
    /// Builds the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (FFT shorter than the
    /// frame, non-power-of-two FFT, more cepstra than filters).
    pub fn new(cfg: MfccConfig) -> Self {
        assert!(cfg.fft_len >= cfg.frame.frame_len, "FFT shorter than frame");
        assert!(cfg.fft_len.is_power_of_two(), "FFT length must be 2^k");
        assert!(cfg.num_ceps <= cfg.num_filters, "more cepstra than filters");
        let num_bins = cfg.fft_len / 2 + 1;
        let filterbank = MelFilterbank::standard(num_bins, cfg.sample_rate);
        let dct = Dct::new(cfg.num_filters, cfg.num_ceps);
        Self {
            cfg,
            filterbank,
            dct,
        }
    }

    /// The configuration the pipeline was built with.
    pub fn config(&self) -> &MfccConfig {
        &self.cfg
    }

    /// Feature dimension of the output vectors.
    pub fn dim(&self) -> usize {
        if self.cfg.deltas {
            self.cfg.num_ceps * 3
        } else {
            self.cfg.num_ceps
        }
    }

    /// Allocates the caller-owned scratch [`MfccPipeline::static_features_into`]
    /// works over (FFT buffer, spectrum, filterbank energies).
    pub fn frame_scratch(&self) -> FrameScratch {
        FrameScratch {
            fft: vec![Complex::default(); self.cfg.fft_len],
            spectrum: vec![0.0; self.cfg.fft_len / 2 + 1],
            fbank: vec![0.0; self.cfg.num_filters],
        }
    }

    /// Static cepstra of one pre-emphasized, windowed frame, written into
    /// `out` (`num_ceps` slots) without allocating: the per-frame step the
    /// batch [`MfccPipeline::process`] and the streaming
    /// [`crate::online::OnlineMfcc`] both run, so their outputs are
    /// bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if the scratch was built for a different configuration or
    /// `out.len() != num_ceps`.
    pub fn static_features_into(
        &self,
        windowed: &[f32],
        scratch: &mut FrameScratch,
        out: &mut [f32],
    ) {
        power_spectrum_into(windowed, &mut scratch.fft, &mut scratch.spectrum);
        self.filterbank
            .apply_into(&scratch.spectrum, &mut scratch.fbank);
        self.dct.apply_into(&scratch.fbank, out);
    }

    /// Extracts one feature vector per frame of `samples`.
    pub fn process(&self, samples: &[f32]) -> Vec<Vec<f32>> {
        let framed = frames(samples, &self.cfg.frame);
        let mut scratch = self.frame_scratch();
        let mut base: Vec<Vec<f32>> = framed
            .iter()
            .map(|frame| {
                let mut ceps = vec![0.0f32; self.cfg.num_ceps];
                self.static_features_into(frame, &mut scratch, &mut ceps);
                ceps
            })
            .collect();
        if self.cfg.deltas {
            let d = deltas(&base);
            let dd = deltas(&d);
            for ((b, d1), d2) in base.iter_mut().zip(d).zip(dd) {
                b.extend(d1);
                b.extend(d2);
            }
        }
        base
    }
}

/// Caller-owned scratch for [`MfccPipeline::static_features_into`]: the
/// FFT working buffer, the power spectrum, and the filterbank energies,
/// sized once by [`MfccPipeline::frame_scratch`] and reused frame after
/// frame.
#[derive(Debug, Clone)]
pub struct FrameScratch {
    fft: Vec<Complex>,
    spectrum: Vec<f32>,
    fbank: Vec<f32>,
}

/// One step of the delta-feature recurrence: `out[i] = (next[i] - prev[i]) / 2`
/// — the two-point symmetric difference both the batch delta pass and the
/// streaming front-end apply, per coefficient.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn delta_into(prev: &[f32], next: &[f32], out: &mut [f32]) {
    assert_eq!(prev.len(), next.len(), "delta input length mismatch");
    assert_eq!(out.len(), next.len(), "delta output length mismatch");
    for ((o, p), q) in out.iter_mut().zip(prev).zip(next) {
        *o = (q - p) / 2.0;
    }
}

/// Two-point symmetric difference per coefficient, with clamped edges —
/// the standard delta-feature recurrence with a window of 1.
fn deltas(feats: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let n = feats.len();
    (0..n)
        .map(|t| {
            let prev = &feats[t.saturating_sub(1)];
            let next = &feats[(t + 1).min(n - 1)];
            let mut out = vec![0.0f32; prev.len()];
            delta_into(prev, next, &mut out);
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{render_phones, SignalConfig};
    use asr_wfst::PhoneId;

    fn pipeline() -> MfccPipeline {
        MfccPipeline::new(MfccConfig::default())
    }

    #[test]
    fn one_vector_per_frame() {
        let cfg = SignalConfig::default();
        let wave = render_phones(&[PhoneId(1)], 7, &cfg);
        let feats = pipeline().process(&wave);
        assert_eq!(feats.len(), 7);
        assert!(feats.iter().all(|f| f.len() == 39));
    }

    #[test]
    fn dim_reports_delta_expansion() {
        assert_eq!(pipeline().dim(), 39);
        let no_deltas = MfccPipeline::new(MfccConfig {
            deltas: false,
            ..MfccConfig::default()
        });
        assert_eq!(no_deltas.dim(), 13);
    }

    #[test]
    fn same_phone_gives_similar_frames_different_phones_differ() {
        let cfg = SignalConfig::default();
        let wave_a = render_phones(&[PhoneId(1)], 6, &cfg);
        let wave_b = render_phones(&[PhoneId(9)], 6, &cfg);
        let p = pipeline();
        let fa = p.process(&wave_a);
        let fb = p.process(&wave_b);
        let dist =
            |x: &[f32], y: &[f32]| -> f32 { x.iter().zip(y).map(|(a, b)| (a - b).powi(2)).sum() };
        // Interior frames of the same phone are close; across phones far.
        // (Use static coefficients only: deltas spike at edges.)
        let within = dist(&fa[2][..13], &fa[3][..13]);
        let across = dist(&fa[2][..13], &fb[2][..13]);
        assert!(
            across > 4.0 * within,
            "within {within}, across {across}: features do not separate phones"
        );
    }

    #[test]
    fn features_are_finite() {
        let cfg = SignalConfig::default();
        let wave = render_phones(&[PhoneId(2), PhoneId(3)], 4, &cfg);
        for f in pipeline().process(&wave) {
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn silence_still_produces_features() {
        let feats = pipeline().process(&vec![0.0f32; 480]);
        assert_eq!(feats.len(), 3);
        assert!(feats.iter().flatten().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_input_gives_no_features() {
        assert!(pipeline().process(&[]).is_empty());
    }

    #[test]
    fn deltas_capture_change_direction() {
        let a = vec![vec![0.0f32], vec![1.0], vec![2.0], vec![3.0]];
        let d = deltas(&a);
        // Interior: (next - prev)/2 = 1.0; edges clamped to half-steps.
        assert_eq!(d[1][0], 1.0);
        assert_eq!(d[2][0], 1.0);
        assert_eq!(d[0][0], 0.5);
        assert_eq!(d[3][0], 0.5);
    }

    #[test]
    #[should_panic(expected = "FFT shorter than frame")]
    fn fft_shorter_than_frame_rejected() {
        MfccPipeline::new(MfccConfig {
            fft_len: 128,
            ..MfccConfig::default()
        });
    }
}
