//! Incremental (streaming) acoustic front-end.
//!
//! The paper's accelerator consumes per-frame likelihood rows out of a
//! double-buffered Acoustic Likelihood Buffer that is filled *as audio
//! arrives*; the batch [`crate::mfcc::MfccPipeline`] can only score whole
//! utterances. This module closes that gap with push-samples/pop-frames
//! state machines whose outputs are **bit-identical** to the batch
//! pipeline for the same audio (pinned by
//! `crates/acoustic/tests/online_equivalence.rs`):
//!
//! * [`OnlineMfcc`] — raw samples in, feature vectors out, with a ring
//!   buffer carrying frame overlap and a bounded two-frame lookahead
//!   window for the Δ/ΔΔ recurrence (the streaming analogue of Kaldi's
//!   online feature pipeline, byte-identical to offline);
//! * [`FrameScorer`] + [`OnlineScorer`] — wraps the template or DNN
//!   scorer so acoustic *cost rows* (what the accelerator's ALB holds)
//!   stream out frame by frame;
//! * [`MlpScorer`] — the allocation-free [`FrameScorer`] adapter for the
//!   [`Mlp`] acoustic model.
//!
//! Every stage runs over caller-owned or internally pooled scratch: after
//! the first few frames, pushing samples and popping frames performs
//! **zero steady-state heap allocations**.

use crate::dnn::Mlp;
use crate::frame::PreEmphasis;
use crate::mfcc::{delta_into, FrameScratch, MfccConfig, MfccPipeline};
use crate::template::TemplateScorer;
use asr_wfst::PhoneId;
use std::collections::VecDeque;

/// Streaming MFCC extractor: push raw samples, pop feature vectors.
///
/// Features are bit-identical to [`MfccPipeline::process`] over the same
/// audio, for every way of chunking the sample stream. Because the Δ/ΔΔ
/// recurrence looks one frame ahead (and ΔΔ one more), a frame's full
/// vector becomes available two frames after its audio does; call
/// [`OnlineMfcc::finish`] at end of utterance to flush the lookahead with
/// the batch pipeline's edge clamping.
///
/// # Example
///
/// ```
/// use asr_acoustic::mfcc::{MfccConfig, MfccPipeline};
/// use asr_acoustic::online::OnlineMfcc;
/// use asr_acoustic::signal::{render_phones, SignalConfig};
/// use asr_wfst::PhoneId;
///
/// let wave = render_phones(&[PhoneId(1)], 5, &SignalConfig::default());
/// let batch = MfccPipeline::new(MfccConfig::default()).process(&wave);
///
/// let mut online = OnlineMfcc::new(MfccConfig::default());
/// for chunk in wave.chunks(7) {
///     online.push_samples(chunk);
/// }
/// online.finish();
/// let mut streamed = Vec::new();
/// while let Some(frame) = online.pop_frame() {
///     streamed.push(frame);
/// }
/// assert_eq!(streamed, batch);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineMfcc {
    pipeline: MfccPipeline,
    window: Vec<f32>,
    // Streaming framer state.
    pre_emphasis: PreEmphasis,
    /// Emphasized samples waiting for the next frame start (ring kept
    /// left-aligned with `copy_within`; capacity is one frame).
    pending: Vec<f32>,
    /// Samples still to discard before the next frame start (hop larger
    /// than the frame length).
    skip: usize,
    // Per-frame scratch.
    scratch: FrameScratch,
    frame_buf: Vec<f32>,
    // Bounded lookahead for the delta recurrence: the last three static
    // vectors and the last three delta vectors, as rotating windows.
    base_win: [Vec<f32>; 3],
    delta_win: [Vec<f32>; 3],
    dd_buf: Vec<f32>,
    /// Static frames computed so far.
    bases: usize,
    /// Complete feature vectors emitted so far.
    emitted: usize,
    /// Finished frames awaiting [`OnlineMfcc::pop_frame_into`], flattened.
    ready: VecDeque<f32>,
    finished: bool,
}

impl OnlineMfcc {
    /// Builds the extractor (precomputing window, filterbank, and DCT).
    ///
    /// # Panics
    ///
    /// Panics on the same inconsistent configurations as
    /// [`MfccPipeline::new`], or a degenerate frame config.
    pub fn new(cfg: MfccConfig) -> Self {
        Self::with_pipeline(MfccPipeline::new(cfg))
    }

    /// Builds the extractor around an existing pipeline (sharing its
    /// configuration and precomputed tables).
    pub fn with_pipeline(pipeline: MfccPipeline) -> Self {
        let cfg = *pipeline.config();
        assert!(
            cfg.frame.frame_len > 0 && cfg.frame.hop > 0,
            "degenerate frame config"
        );
        let num_ceps = cfg.num_ceps;
        let scratch = pipeline.frame_scratch();
        Self {
            window: crate::frame::hamming(cfg.frame.frame_len),
            pre_emphasis: PreEmphasis::new(cfg.frame.pre_emphasis),
            pending: Vec::with_capacity(cfg.frame.frame_len),
            skip: 0,
            scratch,
            frame_buf: vec![0.0; cfg.frame.frame_len],
            base_win: [
                vec![0.0; num_ceps],
                vec![0.0; num_ceps],
                vec![0.0; num_ceps],
            ],
            delta_win: [
                vec![0.0; num_ceps],
                vec![0.0; num_ceps],
                vec![0.0; num_ceps],
            ],
            dd_buf: vec![0.0; num_ceps],
            bases: 0,
            emitted: 0,
            ready: VecDeque::new(),
            finished: false,
            pipeline,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MfccConfig {
        self.pipeline.config()
    }

    /// Feature dimension of the popped vectors (`num_ceps`, tripled when
    /// deltas are enabled).
    pub fn dim(&self) -> usize {
        self.pipeline.dim()
    }

    /// Frames the Δ/ΔΔ recurrence holds back: a frame's complete vector
    /// appears this many frames after its audio (0 without deltas).
    pub fn lookahead_frames(&self) -> usize {
        if self.pipeline.config().deltas {
            2
        } else {
            0
        }
    }

    /// Complete feature vectors currently available to pop.
    pub fn ready_frames(&self) -> usize {
        self.ready.len() / self.dim()
    }

    /// `true` once [`OnlineMfcc::finish`] has run (push panics until
    /// [`OnlineMfcc::reset`]).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Feeds raw audio samples, in any chunking (single samples, 10 ms
    /// packets, whole utterances). Allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics if called after [`OnlineMfcc::finish`] without a
    /// [`OnlineMfcc::reset`].
    pub fn push_samples(&mut self, samples: &[f32]) {
        assert!(!self.finished, "push_samples after finish (reset first)");
        let frame_len = self.pipeline.config().frame.frame_len;
        for &raw in samples {
            let emphasized = self.pre_emphasis.step(raw);
            if self.skip > 0 {
                self.skip -= 1;
                continue;
            }
            self.pending.push(emphasized);
            if self.pending.len() == frame_len {
                self.emit_full_frame();
            }
        }
    }

    /// Ends the utterance: the trailing partial frame (if any) is
    /// zero-padded exactly as the batch framer does, and the delta
    /// lookahead drains with the batch edge clamping. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let frame = self.pipeline.config().frame;
        // The batch framer emits a zero-padded frame for every start
        // position inside the signal; drain the pending ring the same way.
        while !self.pending.is_empty() {
            let len = self.pending.len().min(frame.frame_len);
            crate::frame::window_frame_into(
                &self.pending[..len],
                &self.window,
                &mut self.frame_buf,
            );
            if self.pending.len() > frame.hop {
                self.pending.copy_within(frame.hop.., 0);
                let keep = self.pending.len() - frame.hop;
                self.pending.truncate(keep);
            } else {
                self.pending.clear();
            }
            self.compute_base();
        }
        // Drain the delta lookahead with end-of-utterance clamping.
        let n = self.bases;
        if self.pipeline.config().deltas && n > 0 {
            // The final delta: next clamps to the last static frame.
            let t = n - 1;
            let prev = t.saturating_sub(1) % 3;
            delta_slot(&self.base_win, prev, t % 3, &mut self.delta_win[t % 3]);
            for j in self.emitted..n {
                let next = (j + 1).min(n - 1);
                delta_slot(
                    &self.delta_win,
                    j.saturating_sub(1) % 3,
                    next % 3,
                    &mut self.dd_buf,
                );
                push_frame(
                    &mut self.ready,
                    &self.base_win[j % 3],
                    Some((&self.delta_win[j % 3], &self.dd_buf)),
                );
            }
            self.emitted = n;
        }
    }

    /// Pops the oldest complete feature vector into `out`; `false` when
    /// none is ready yet. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from [`OnlineMfcc::dim`].
    pub fn pop_frame_into(&mut self, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.dim(), "feature dimension mismatch");
        let n = out.len();
        if self.ready.len() < n {
            return false;
        }
        for (o, v) in out.iter_mut().zip(self.ready.drain(..n)) {
            *o = v;
        }
        true
    }

    /// Allocating convenience form of [`OnlineMfcc::pop_frame_into`].
    pub fn pop_frame(&mut self) -> Option<Vec<f32>> {
        let mut out = vec![0.0; self.dim()];
        if self.pop_frame_into(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Clears all streaming state for the next utterance, keeping every
    /// buffer (so a pooled extractor is reused allocation-free).
    pub fn reset(&mut self) {
        self.pre_emphasis.reset();
        self.pending.clear();
        self.skip = 0;
        self.bases = 0;
        self.emitted = 0;
        self.ready.clear();
        self.finished = false;
    }

    /// Windows the full pending frame, advances the ring by one hop, and
    /// runs the static feature chain.
    fn emit_full_frame(&mut self) {
        let frame = self.pipeline.config().frame;
        crate::frame::window_frame_into(&self.pending, &self.window, &mut self.frame_buf);
        if frame.hop >= frame.frame_len {
            self.pending.clear();
            self.skip = frame.hop - frame.frame_len;
        } else {
            self.pending.copy_within(frame.hop.., 0);
            let keep = frame.frame_len - frame.hop;
            self.pending.truncate(keep);
        }
        self.compute_base();
    }

    /// Static cepstra for the windowed frame in `frame_buf`, then one step
    /// of the streaming delta recurrence.
    fn compute_base(&mut self) {
        let slot = self.bases % 3;
        self.pipeline.static_features_into(
            &self.frame_buf,
            &mut self.scratch,
            &mut self.base_win[slot],
        );
        self.bases += 1;
        if !self.pipeline.config().deltas {
            push_frame(&mut self.ready, &self.base_win[slot], None);
            self.emitted += 1;
            return;
        }
        let k = self.bases - 1;
        if k >= 1 {
            // base[k] is the lookahead for delta[k-1].
            let t = k - 1;
            delta_slot(
                &self.base_win,
                t.saturating_sub(1) % 3,
                k % 3,
                &mut self.delta_win[t % 3],
            );
            if t >= 1 {
                // delta[t] is the lookahead for delta-delta[t-1]:
                // frame t-1 is now complete.
                let j = t - 1;
                delta_slot(
                    &self.delta_win,
                    j.saturating_sub(1) % 3,
                    t % 3,
                    &mut self.dd_buf,
                );
                push_frame(
                    &mut self.ready,
                    &self.base_win[j % 3],
                    Some((&self.delta_win[j % 3], &self.dd_buf)),
                );
                self.emitted = j + 1;
            }
        }
    }
}

/// `delta_into` between two slots of a rotating window (distinct or, at
/// the clamped edges, the same slot).
fn delta_slot(win: &[Vec<f32>; 3], prev: usize, next: usize, out: &mut [f32]) {
    delta_into(&win[prev], &win[next], out);
}

/// Appends one finished frame (base, optionally Δ and ΔΔ) to the ready
/// queue.
fn push_frame(ready: &mut VecDeque<f32>, base: &[f32], deltas: Option<(&[f32], &[f32])>) {
    ready.extend(base.iter().copied());
    if let Some((d, dd)) = deltas {
        ready.extend(d.iter().copied());
        ready.extend(dd.iter().copied());
    }
}

/// An acoustic model that can score one frame's features into a cost row
/// (`row[0]` the epsilon column, fixed at 0; `row[p]` the cost of phone
/// `p`) — the per-frame contract [`OnlineScorer`] pumps.
///
/// Implementations take `&mut self` so models that need scratch (the MLP)
/// can score without allocating; pure models ([`TemplateScorer`]) also
/// implement the trait for shared references.
pub trait FrameScorer {
    /// Length of a cost row (phone count including the epsilon column 0).
    fn row_len(&self) -> usize;

    /// Scores one frame's feature vector into `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.row_len()` or the feature dimension
    /// does not match the model's.
    fn score_into(&mut self, features: &[f32], row: &mut [f32]);
}

impl<S: FrameScorer + ?Sized> FrameScorer for &mut S {
    fn row_len(&self) -> usize {
        (**self).row_len()
    }

    fn score_into(&mut self, features: &[f32], row: &mut [f32]) {
        (**self).score_into(features, row)
    }
}

impl FrameScorer for &TemplateScorer {
    fn row_len(&self) -> usize {
        self.num_phones() as usize + 1
    }

    fn score_into(&mut self, features: &[f32], row: &mut [f32]) {
        assert_eq!(
            row.len(),
            self.num_phones() as usize + 1,
            "row length mismatch"
        );
        row[0] = 0.0;
        for (p, slot) in row.iter_mut().enumerate().skip(1) {
            *slot = self.frame_cost(features, PhoneId(p as u32));
        }
    }
}

impl FrameScorer for TemplateScorer {
    fn row_len(&self) -> usize {
        self.num_phones() as usize + 1
    }

    fn score_into(&mut self, features: &[f32], row: &mut [f32]) {
        let mut shared = &*self;
        shared.score_into(features, row);
    }
}

/// Allocation-free [`FrameScorer`] adapter for the [`Mlp`] acoustic model:
/// owns the layer activation scratch and emits the same costs as
/// [`Mlp::score_utterance`] (negative log-posteriors, epsilon at 0).
#[derive(Debug)]
pub struct MlpScorer<'m> {
    mlp: &'m Mlp,
    x: Vec<f32>,
    y: Vec<f32>,
}

impl<'m> MlpScorer<'m> {
    /// Wraps a network.
    pub fn new(mlp: &'m Mlp) -> Self {
        Self {
            mlp,
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl FrameScorer for MlpScorer<'_> {
    fn row_len(&self) -> usize {
        self.mlp.output_dim() + 1
    }

    fn score_into(&mut self, features: &[f32], row: &mut [f32]) {
        self.mlp
            .score_row_into(features, row, &mut self.x, &mut self.y);
    }
}

/// Streaming acoustic scorer: push raw samples, pop per-frame cost rows —
/// the software form of the GPU filling the accelerator's Acoustic
/// Likelihood Buffer while the search drains it.
///
/// Composes an [`OnlineMfcc`] with any [`FrameScorer`]; rows are
/// bit-identical to batch scoring
/// ([`TemplateScorer::score_waveform`] / [`Mlp::score_utterance`] over
/// [`MfccPipeline::process`] features) for the same audio.
#[derive(Debug)]
pub struct OnlineScorer<S> {
    mfcc: OnlineMfcc,
    scorer: S,
    feat: Vec<f32>,
    row: Vec<f32>,
    ready: VecDeque<f32>,
    row_len: usize,
}

impl<S: FrameScorer> OnlineScorer<S> {
    /// Builds the scorer with a fresh [`OnlineMfcc`] for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent MFCC configurations (see
    /// [`MfccPipeline::new`]).
    pub fn new(cfg: MfccConfig, scorer: S) -> Self {
        Self::with_mfcc(OnlineMfcc::new(cfg), scorer)
    }

    /// Builds the scorer around an existing (pooled) extractor, which is
    /// reset first.
    pub fn with_mfcc(mut mfcc: OnlineMfcc, scorer: S) -> Self {
        mfcc.reset();
        let row_len = scorer.row_len();
        let dim = mfcc.dim();
        Self {
            mfcc,
            scorer,
            feat: vec![0.0; dim],
            row: vec![0.0; row_len],
            ready: VecDeque::new(),
            row_len,
        }
    }

    /// Length of each cost row (phones including the epsilon column).
    pub fn row_len(&self) -> usize {
        self.row_len
    }

    /// Cost rows currently available to pop.
    pub fn ready_rows(&self) -> usize {
        self.ready.len() / self.row_len
    }

    /// Feeds raw audio samples; newly completed frames are scored
    /// immediately. Allocation-free once warm.
    ///
    /// # Panics
    ///
    /// Panics after [`OnlineScorer::finish`] without a reset.
    pub fn push_samples(&mut self, samples: &[f32]) {
        self.mfcc.push_samples(samples);
        self.drain_frames();
    }

    /// Ends the utterance, scoring the flushed lookahead frames.
    /// Idempotent.
    pub fn finish(&mut self) {
        self.mfcc.finish();
        self.drain_frames();
    }

    /// Pops the oldest cost row into `out`; `false` when none is ready.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.row_len()`.
    pub fn pop_row_into(&mut self, out: &mut [f32]) -> bool {
        assert_eq!(out.len(), self.row_len, "row length mismatch");
        let n = out.len();
        if self.ready.len() < n {
            return false;
        }
        for (o, v) in out.iter_mut().zip(self.ready.drain(..n)) {
            *o = v;
        }
        true
    }

    /// Allocating convenience form of [`OnlineScorer::pop_row_into`].
    pub fn pop_row(&mut self) -> Option<Vec<f32>> {
        let mut out = vec![0.0; self.row_len];
        if self.pop_row_into(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Clears all streaming state for the next utterance, keeping every
    /// buffer.
    pub fn reset(&mut self) {
        self.mfcc.reset();
        self.ready.clear();
    }

    /// Recovers the extractor (for pooling) and the scorer.
    pub fn into_parts(self) -> (OnlineMfcc, S) {
        (self.mfcc, self.scorer)
    }

    fn drain_frames(&mut self) {
        while self.mfcc.pop_frame_into(&mut self.feat) {
            self.scorer.score_into(&self.feat, &mut self.row);
            self.ready.extend(self.row.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{render_phones, SignalConfig};

    fn wave(frames: usize) -> Vec<f32> {
        render_phones(&[PhoneId(1), PhoneId(4)], frames, &SignalConfig::default())
    }

    fn drain(online: &mut OnlineMfcc) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        while let Some(f) = online.pop_frame() {
            out.push(f);
        }
        out
    }

    #[test]
    fn lookahead_is_two_frames_with_deltas() {
        let mut online = OnlineMfcc::new(MfccConfig::default());
        assert_eq!(online.lookahead_frames(), 2);
        online.push_samples(&wave(3)); // 6 frames of audio
        assert_eq!(online.ready_frames(), 4, "two frames held back");
        online.finish();
        assert_eq!(online.ready_frames(), 6);
    }

    #[test]
    fn no_deltas_streams_without_lookahead() {
        let cfg = MfccConfig {
            deltas: false,
            ..MfccConfig::default()
        };
        let mut online = OnlineMfcc::new(cfg);
        assert_eq!(online.lookahead_frames(), 0);
        online.push_samples(&wave(2)); // 4 frames
        assert_eq!(online.ready_frames(), 4);
        assert_eq!(online.dim(), 13);
    }

    #[test]
    fn empty_utterance_emits_nothing() {
        let mut online = OnlineMfcc::new(MfccConfig::default());
        online.finish();
        assert_eq!(online.ready_frames(), 0);
        assert!(online.pop_frame().is_none());
    }

    #[test]
    fn reset_reuses_the_extractor() {
        let audio = wave(2);
        let batch = MfccPipeline::new(MfccConfig::default()).process(&audio);
        let mut online = OnlineMfcc::new(MfccConfig::default());
        for _ in 0..3 {
            online.push_samples(&audio);
            online.finish();
            assert_eq!(drain(&mut online), batch);
            online.reset();
        }
    }

    #[test]
    #[should_panic(expected = "after finish")]
    fn push_after_finish_panics() {
        let mut online = OnlineMfcc::new(MfccConfig::default());
        online.finish();
        online.push_samples(&[0.0]);
    }

    #[test]
    fn template_rows_match_batch_scoring() {
        let scorer = TemplateScorer::with_default_signal(6);
        let audio = wave(3);
        let table = scorer.score_waveform(&audio);
        let mut online = OnlineScorer::new(MfccConfig::default(), &scorer);
        online.push_samples(&audio);
        online.finish();
        for frame in 0..table.num_frames() {
            let row = online.pop_row().expect("row per frame");
            let expect = table.frame_row(frame);
            assert_eq!(row.len(), expect.len());
            for (a, b) in row.iter().zip(expect) {
                assert_eq!(a.to_bits(), b.to_bits(), "frame {frame}");
            }
        }
        assert_eq!(online.ready_rows(), 0);
    }

    #[test]
    fn mlp_rows_match_score_utterance() {
        let mlp = Mlp::new(&[39, 16, 5], 9);
        let pipeline = MfccPipeline::new(MfccConfig::default());
        let audio = wave(2);
        let feats = pipeline.process(&audio);
        let table = mlp.score_utterance(&feats);
        let mut online = OnlineScorer::new(MfccConfig::default(), MlpScorer::new(&mlp));
        for chunk in audio.chunks(101) {
            online.push_samples(chunk);
        }
        online.finish();
        for frame in 0..table.num_frames() {
            let row = online.pop_row().expect("row per frame");
            for (p, (a, b)) in row.iter().zip(table.frame_row(frame)).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "frame {frame} phone {p}");
            }
        }
    }
}
