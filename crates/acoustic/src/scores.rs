//! The per-frame acoustic score table consumed by the Viterbi search.
//!
//! This is the software image of what the paper's accelerator keeps in its
//! Acoustic Likelihood Buffer: for each frame of speech, one score per
//! phone. Scores are *costs* (negative log likelihood/posterior), so the
//! Likelihood Evaluation unit adds them (Equation 1 in log space). The
//! buffer in hardware is double-buffered per frame; that behaviour is
//! modelled in `asr-accel`, which reads rows out of this table.

use asr_wfst::PhoneId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense `frames x phones` matrix of acoustic costs.
///
/// Phone id 0 is the epsilon label; its column exists (so `PhoneId` indexes
/// directly) but is never read by a correct search, and is fixed at 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcousticTable {
    num_frames: usize,
    num_phones: usize,
    data: Vec<f32>,
}

impl AcousticTable {
    /// Builds a table by evaluating `f(frame, phone)` for every cell.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(
        num_frames: usize,
        num_phones: usize,
        mut f: F,
    ) -> Self {
        let mut data = Vec::with_capacity(num_frames * num_phones);
        for frame in 0..num_frames {
            for phone in 0..num_phones {
                data.push(f(frame, phone));
            }
        }
        Self {
            num_frames,
            num_phones,
            data,
        }
    }

    /// Builds a deterministic random table: costs uniform in `[lo, hi)`.
    ///
    /// Random scores exercise the identical accelerator code path as real
    /// DNN outputs (the search only reads one score per arc) and are the
    /// workload used for the large-scale memory-system experiments.
    pub fn random(num_frames: usize, num_phones: usize, range: (f32, f32), seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Self::from_fn(num_frames, num_phones, |_, phone| {
            if phone == 0 {
                0.0
            } else {
                rng.gen_range(range.0..range.1)
            }
        })
    }

    /// Number of frames (rows).
    pub fn num_frames(&self) -> usize {
        self.num_frames
    }

    /// Number of phone columns (including the epsilon column 0).
    pub fn num_phones(&self) -> usize {
        self.num_phones
    }

    /// Cost of `phone` at `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame or phone is out of range.
    #[inline]
    pub fn cost(&self, frame: usize, phone: PhoneId) -> f32 {
        assert!(frame < self.num_frames, "frame {frame} out of range");
        let p = phone.index();
        assert!(p < self.num_phones, "phone {p} out of range");
        self.data[frame * self.num_phones + p]
    }

    /// The full score row of one frame — what gets DMA'd into the
    /// accelerator's Acoustic Likelihood Buffer for that frame.
    #[inline]
    pub fn frame_row(&self, frame: usize) -> &[f32] {
        assert!(frame < self.num_frames, "frame {frame} out of range");
        &self.data[frame * self.num_phones..(frame + 1) * self.num_phones]
    }

    /// Bytes one frame row occupies (the per-frame DMA transfer size).
    pub fn frame_bytes(&self) -> usize {
        self.num_phones * std::mem::size_of::<f32>()
    }

    /// Concatenates another table's frames after this one's.
    ///
    /// # Panics
    ///
    /// Panics if the phone dimensions differ.
    pub fn extend(&mut self, other: &AcousticTable) {
        assert_eq!(
            self.num_phones, other.num_phones,
            "phone dimension mismatch"
        );
        self.data.extend_from_slice(&other.data);
        self.num_frames += other.num_frames;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_lays_out_row_major() {
        let t = AcousticTable::from_fn(2, 3, |f, p| (f * 10 + p) as f32);
        assert_eq!(t.cost(0, PhoneId(2)), 2.0);
        assert_eq!(t.cost(1, PhoneId(0)), 10.0);
        assert_eq!(t.frame_row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let a = AcousticTable::random(4, 8, (0.5, 2.0), 11);
        let b = AcousticTable::random(4, 8, (0.5, 2.0), 11);
        assert_eq!(a, b);
        for f in 0..4 {
            for p in 1..8u32 {
                let c = a.cost(f, PhoneId(p));
                assert!((0.5..2.0).contains(&c));
            }
            assert_eq!(a.cost(f, PhoneId::EPSILON), 0.0);
        }
    }

    #[test]
    fn frame_bytes_matches_row_size() {
        let t = AcousticTable::random(1, 2001, (0.0, 1.0), 0);
        assert_eq!(t.frame_bytes(), 2001 * 4);
        assert_eq!(t.frame_row(0).len(), 2001);
    }

    #[test]
    fn extend_appends_frames() {
        let mut a = AcousticTable::from_fn(2, 3, |_, _| 1.0);
        let b = AcousticTable::from_fn(3, 3, |_, _| 2.0);
        a.extend(&b);
        assert_eq!(a.num_frames(), 5);
        assert_eq!(a.cost(4, PhoneId(1)), 2.0);
        assert_eq!(a.cost(1, PhoneId(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_frame_panics() {
        AcousticTable::from_fn(1, 2, |_, _| 0.0).cost(1, PhoneId(0));
    }

    #[test]
    #[should_panic(expected = "phone dimension mismatch")]
    fn extend_rejects_mismatched_phones() {
        let mut a = AcousticTable::from_fn(1, 3, |_, _| 0.0);
        a.extend(&AcousticTable::from_fn(1, 4, |_, _| 0.0));
    }
}
