//! Deterministic synthetic speech.
//!
//! The paper drives its evaluation with Librispeech audio. We cannot ship
//! that corpus, so utterances are synthesized: each phone id maps to a
//! stable set of three formant-like frequencies (derived from a hash of the
//! id) rendered as a sum of sinusoids with a pinch of deterministic noise.
//! Distinct phones get distinct spectral envelopes, which is all the MFCC +
//! template acoustic model needs to discriminate them — preserving the code
//! path and the workload shape of a real front-end (see DESIGN.md).

use crate::SAMPLE_RATE;
use asr_wfst::PhoneId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters of the synthetic speech renderer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalConfig {
    /// Sample rate in Hz.
    pub sample_rate: u32,
    /// Samples per frame (10 ms worth).
    pub frame_samples: usize,
    /// Amplitude of the deterministic noise floor.
    pub noise_level: f32,
    /// Seed for the noise generator.
    pub seed: u64,
}

impl Default for SignalConfig {
    fn default() -> Self {
        Self {
            sample_rate: SAMPLE_RATE,
            frame_samples: crate::FRAME_SAMPLES,
            noise_level: 0.02,
            seed: 7,
        }
    }
}

/// The three formant frequencies assigned to a phone.
///
/// Frequencies are deterministic functions of the phone id, spread over
/// 200-3800 Hz so every phone has a distinct spectral signature.
pub fn formants(phone: PhoneId) -> [f32; 3] {
    // Small multiplicative hash; stable across runs and platforms.
    let h = phone.0.wrapping_mul(2654435761);
    let f1 = 200.0 + (h % 600) as f32; // 200-800 Hz
    let f2 = 900.0 + ((h >> 10) % 1400) as f32; // 900-2300 Hz
    let f3 = 2400.0 + ((h >> 20) % 1400) as f32; // 2400-3800 Hz
    [f1, f2, f3]
}

/// Renders `frames_per_phone` frames of waveform for each phone in
/// sequence.
///
/// Epsilon ids are rendered as near-silence (noise only), though decoding
/// graphs never ask the acoustic model to score epsilon.
pub fn render_phones(phones: &[PhoneId], frames_per_phone: usize, cfg: &SignalConfig) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let samples_per_phone = frames_per_phone * cfg.frame_samples;
    let mut out = Vec::with_capacity(phones.len() * samples_per_phone);
    for &phone in phones {
        let [f1, f2, f3] = formants(phone);
        let silent = phone.is_epsilon();
        for i in 0..samples_per_phone {
            let t = i as f32 / cfg.sample_rate as f32;
            let mut s = 0.0;
            if !silent {
                let w = 2.0 * std::f32::consts::PI * t;
                s += 0.5 * (w * f1).sin();
                s += 0.3 * (w * f2).sin();
                s += 0.2 * (w * f3).sin();
            }
            s += cfg.noise_level * (rng.gen::<f32>() * 2.0 - 1.0);
            out.push(s);
        }
    }
    out
}

/// A labelled synthetic utterance: the waveform plus the frame-aligned
/// ground-truth phone sequence (one label per frame), used by functional
/// tests to verify that decoding recovers the source words.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// Rendered waveform.
    pub samples: Vec<f32>,
    /// Ground-truth phone per frame.
    pub frame_phones: Vec<PhoneId>,
}

impl Utterance {
    /// Renders an utterance from a phone sequence.
    pub fn render(phones: &[PhoneId], frames_per_phone: usize, cfg: &SignalConfig) -> Self {
        let samples = render_phones(phones, frames_per_phone, cfg);
        let mut frame_phones = Vec::with_capacity(phones.len() * frames_per_phone);
        for &p in phones {
            frame_phones.extend(std::iter::repeat_n(p, frames_per_phone));
        }
        Self {
            samples,
            frame_phones,
        }
    }

    /// Number of frames in the utterance.
    pub fn num_frames(&self) -> usize {
        self.frame_phones.len()
    }

    /// Utterance duration in seconds.
    pub fn seconds(&self, cfg: &SignalConfig) -> f64 {
        self.samples.len() as f64 / cfg.sample_rate as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        let cfg = SignalConfig::default();
        let a = render_phones(&[PhoneId(1), PhoneId(2)], 3, &cfg);
        let b = render_phones(&[PhoneId(1), PhoneId(2)], 3, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn length_matches_request() {
        let cfg = SignalConfig::default();
        let wave = render_phones(&[PhoneId(1); 4], 5, &cfg);
        assert_eq!(wave.len(), 4 * 5 * cfg.frame_samples);
    }

    #[test]
    fn distinct_phones_have_distinct_formants() {
        let a = formants(PhoneId(1));
        let b = formants(PhoneId(2));
        assert_ne!(a, b);
        for f in a.iter().chain(&b) {
            assert!(*f >= 200.0 && *f <= 3800.0);
        }
    }

    #[test]
    fn formants_are_stable() {
        assert_eq!(formants(PhoneId(5)), formants(PhoneId(5)));
    }

    #[test]
    fn epsilon_renders_near_silence() {
        let cfg = SignalConfig::default();
        let quiet = render_phones(&[PhoneId::EPSILON], 2, &cfg);
        let loud = render_phones(&[PhoneId(3)], 2, &cfg);
        let energy = |w: &[f32]| w.iter().map(|s| s * s).sum::<f32>();
        assert!(energy(&quiet) < energy(&loud) / 10.0);
    }

    #[test]
    fn utterance_tracks_frame_labels() {
        let cfg = SignalConfig::default();
        let u = Utterance::render(&[PhoneId(1), PhoneId(2)], 3, &cfg);
        assert_eq!(u.num_frames(), 6);
        assert_eq!(u.frame_phones[0], PhoneId(1));
        assert_eq!(u.frame_phones[5], PhoneId(2));
        assert!((u.seconds(&cfg) - 0.06).abs() < 1e-9);
    }
}
