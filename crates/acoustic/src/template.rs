//! Template (nearest-prototype) acoustic scorer.
//!
//! The reproduction ships no trained DNN weights, but the functional tests
//! must decode synthetic utterances back to the words that produced them.
//! This scorer fills that role: for every phone it precomputes a prototype
//! MFCC vector from that phone's synthetic rendering, then scores a frame
//! as a scaled squared distance to each prototype — a single-component,
//! identity-covariance Gaussian in feature space. On the synthetic signal
//! this behaves like a well-trained acoustic model (the true phone gets the
//! lowest cost), while exercising exactly the same downstream code path as
//! a DNN: a per-frame table of per-phone costs.

use crate::mfcc::{MfccConfig, MfccPipeline};
use crate::scores::AcousticTable;
use crate::signal::{render_phones, SignalConfig};
use asr_wfst::PhoneId;

/// Prototype-distance acoustic model over a fixed phone set.
#[derive(Debug, Clone)]
pub struct TemplateScorer {
    pipeline: MfccPipeline,
    templates: Vec<Vec<f32>>, // indexed by phone id; [0] unused (epsilon)
    scale: f32,
}

impl TemplateScorer {
    /// Builds prototypes for phones `1..=num_phones` by rendering each
    /// phone in isolation and averaging its interior frames' static
    /// coefficients.
    ///
    /// `scale` converts squared distance to cost; larger values sharpen the
    /// model's discrimination.
    pub fn new(num_phones: u32, signal_cfg: &SignalConfig, scale: f32) -> Self {
        let pipeline = MfccPipeline::new(MfccConfig::default());
        let mut templates = vec![Vec::new(); num_phones as usize + 1];
        for phone in 1..=num_phones {
            let wave = render_phones(&[PhoneId(phone)], 6, signal_cfg);
            let feats = pipeline.process(&wave);
            // Average interior frames (skip the edges where deltas spike).
            let interior = &feats[1..feats.len() - 1];
            let dim = interior[0].len();
            let mut mean = vec![0.0f32; dim];
            for f in interior {
                for (m, v) in mean.iter_mut().zip(f) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= interior.len() as f32;
            }
            templates[phone as usize] = mean;
        }
        Self {
            pipeline,
            templates,
            scale,
        }
    }

    /// Convenience constructor with the default signal model and a scale
    /// tuned so costs land in the same few-nats range as log-posteriors.
    pub fn with_default_signal(num_phones: u32) -> Self {
        Self::new(num_phones, &SignalConfig::default(), 0.05)
    }

    /// Number of phones scored (excluding epsilon).
    pub fn num_phones(&self) -> u32 {
        (self.templates.len() - 1) as u32
    }

    /// The MFCC configuration the scorer extracts features with — an
    /// [`crate::online::OnlineMfcc`] built from it feeds
    /// [`TemplateScorer::frame_cost`] features bit-identical to the batch
    /// path.
    pub fn mfcc_config(&self) -> &MfccConfig {
        self.pipeline.config()
    }

    /// Cost of `phone` given one frame's feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `phone` is epsilon/out of range or the feature dimension
    /// does not match the pipeline's.
    pub fn frame_cost(&self, features: &[f32], phone: PhoneId) -> f32 {
        let t = &self.templates[phone.index()];
        assert!(!t.is_empty(), "no template for {phone:?}");
        assert_eq!(features.len(), t.len(), "feature dimension mismatch");
        let d2: f32 = features.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum();
        self.scale * d2
    }

    /// Scores a block of `rows` feature vectors (packed row-major at the
    /// pipeline's feature dimension) into packed acoustic cost rows of
    /// `num_phones + 1` entries each — the template model's leg of the
    /// cross-session batched scoring service. Each output row is computed
    /// with exactly the per-frame [`TemplateScorer::frame_cost`] loop, so
    /// it is bit-identical to scoring the row alone; unlike the MLP the
    /// template model needs no scratch at all.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `out` do not hold exactly `rows` packed
    /// vectors of the expected widths.
    pub fn score_block_into(&self, features: &[f32], rows: usize, out: &mut [f32]) {
        let row_len = self.templates.len();
        let dim = self.templates.last().map_or(0, Vec::len);
        assert_eq!(
            features.len(),
            rows * dim,
            "feature block dimension mismatch"
        );
        assert_eq!(out.len(), rows * row_len, "output block dimension mismatch");
        for r in 0..rows {
            let feat = &features[r * dim..(r + 1) * dim];
            let row = &mut out[r * row_len..(r + 1) * row_len];
            row[0] = 0.0;
            for (p, slot) in row.iter_mut().enumerate().skip(1) {
                *slot = self.frame_cost(feat, PhoneId(p as u32));
            }
        }
    }

    /// Scores a full waveform into an [`AcousticTable`].
    pub fn score_waveform(&self, samples: &[f32]) -> AcousticTable {
        let feats = self.pipeline.process(samples);
        AcousticTable::from_fn(feats.len(), self.templates.len(), |frame, phone| {
            if phone == 0 {
                0.0
            } else {
                self.frame_cost(&feats[frame], PhoneId(phone as u32))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_phone_gets_lowest_cost_on_interior_frames() {
        let scorer = TemplateScorer::with_default_signal(8);
        let cfg = SignalConfig::default();
        for truth in 1..=8u32 {
            let wave = render_phones(&[PhoneId(truth)], 6, &cfg);
            let table = scorer.score_waveform(&wave);
            // Check an interior frame: the true phone should win.
            let frame = 3;
            let best = (1..=8u32)
                .min_by(|&a, &b| {
                    table
                        .cost(frame, PhoneId(a))
                        .total_cmp(&table.cost(frame, PhoneId(b)))
                })
                .unwrap();
            assert_eq!(best, truth, "frame {frame} misclassified");
        }
    }

    #[test]
    fn costs_are_nonnegative_and_finite() {
        let scorer = TemplateScorer::with_default_signal(4);
        let cfg = SignalConfig::default();
        let wave = render_phones(&[PhoneId(1), PhoneId(2)], 4, &cfg);
        let table = scorer.score_waveform(&wave);
        for f in 0..table.num_frames() {
            for p in 1..=4u32 {
                let c = table.cost(f, PhoneId(p));
                assert!(c.is_finite() && c >= 0.0);
            }
        }
    }

    #[test]
    fn epsilon_column_is_zero() {
        let scorer = TemplateScorer::with_default_signal(3);
        let cfg = SignalConfig::default();
        let wave = render_phones(&[PhoneId(1)], 3, &cfg);
        let table = scorer.score_waveform(&wave);
        for f in 0..table.num_frames() {
            assert_eq!(table.cost(f, PhoneId::EPSILON), 0.0);
        }
    }

    #[test]
    fn scale_multiplies_costs() {
        let cfg = SignalConfig::default();
        let a = TemplateScorer::new(3, &cfg, 0.05);
        let b = TemplateScorer::new(3, &cfg, 0.10);
        let wave = render_phones(&[PhoneId(2)], 4, &cfg);
        let ta = a.score_waveform(&wave);
        let tb = b.score_waveform(&wave);
        let ca = ta.cost(1, PhoneId(1));
        let cb = tb.cost(1, PhoneId(1));
        assert!((cb - 2.0 * ca).abs() < 1e-4 * cb.max(1.0));
    }

    #[test]
    #[should_panic(expected = "no template")]
    fn epsilon_frame_cost_panics() {
        let scorer = TemplateScorer::with_default_signal(2);
        scorer.frame_cost(&[0.0; 39], PhoneId::EPSILON);
    }

    #[test]
    fn block_scoring_matches_per_frame_bit_for_bit() {
        let scorer = TemplateScorer::with_default_signal(5);
        let cfg = SignalConfig::default();
        let wave = render_phones(&[PhoneId(1), PhoneId(3)], 4, &cfg);
        let feats = MfccPipeline::new(MfccConfig::default()).process(&wave);
        let rows = feats.len();
        let dim = feats[0].len();
        let packed: Vec<f32> = feats.iter().flatten().copied().collect();
        let row_len = scorer.num_phones() as usize + 1;
        let mut out = vec![0.0; rows * row_len];
        scorer.score_block_into(&packed, rows, &mut out);
        for (r, feat) in feats.iter().enumerate() {
            assert_eq!(feat.len(), dim);
            let row = &out[r * row_len..(r + 1) * row_len];
            assert_eq!(row[0], 0.0);
            for (p, cost) in row.iter().enumerate().skip(1) {
                assert_eq!(
                    cost.to_bits(),
                    scorer.frame_cost(feat, PhoneId(p as u32)).to_bits(),
                    "frame {r} phone {p}"
                );
            }
        }
    }
}
