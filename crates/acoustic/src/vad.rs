//! Energy-based voice activity detection and endpointing.
//!
//! Mobile ASR systems (the paper's target segment) do not run the search
//! continuously: a cheap always-on detector gates the expensive pipeline.
//! This module provides the standard short-time-energy VAD with hangover
//! smoothing, plus utterance endpointing used by the streaming example.

use serde::{Deserialize, Serialize};

/// VAD tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VadConfig {
    /// Samples per analysis frame (10 ms at 16 kHz).
    pub frame_len: usize,
    /// Energy threshold relative to the running noise floor (linear
    /// factor; speech must exceed `noise_floor * threshold`).
    pub threshold: f32,
    /// Frames of hangover: speech is held active this many frames after
    /// energy drops, bridging short pauses.
    pub hangover: usize,
    /// Exponential smoothing factor for the noise-floor estimate.
    pub floor_alpha: f32,
}

impl Default for VadConfig {
    fn default() -> Self {
        Self {
            frame_len: crate::FRAME_SAMPLES,
            threshold: 4.0,
            hangover: 5,
            floor_alpha: 0.95,
        }
    }
}

/// Per-frame voice activity decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct VadResult {
    /// One flag per frame: `true` = speech.
    pub active: Vec<bool>,
    /// Mean frame energy, for diagnostics.
    pub mean_energy: f32,
}

impl VadResult {
    /// Contiguous active segments as `(first_frame, last_frame)` pairs —
    /// the utterance endpoints handed to the decoder.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &a) in self.active.iter().enumerate() {
            match (a, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    out.push((s, i - 1));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push((s, self.active.len() - 1));
        }
        out
    }

    /// Segments with up to `tail` trailing frames removed — undoing the
    /// hangover padding before the segment is handed to the decoder, so
    /// trailing silence is not force-aligned to phones.
    pub fn segments_trimmed(&self, tail: usize) -> Vec<(usize, usize)> {
        self.segments()
            .into_iter()
            .map(|(start, end)| (start, end.saturating_sub(tail).max(start)))
            .collect()
    }

    /// Fraction of frames marked as speech.
    pub fn activity_ratio(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        self.active.iter().filter(|&&a| a).count() as f64 / self.active.len() as f64
    }
}

/// The detector.
#[derive(Debug, Clone, Default)]
pub struct Vad {
    cfg: VadConfig,
}

impl Vad {
    /// Creates a detector.
    pub fn new(cfg: VadConfig) -> Self {
        Self { cfg }
    }

    /// Classifies every frame of `samples`.
    ///
    /// The noise floor starts at the first frame's energy and tracks quiet
    /// frames with exponential smoothing; a frame is speech when its
    /// energy exceeds `threshold x floor`, extended by `hangover` frames.
    pub fn detect(&self, samples: &[f32]) -> VadResult {
        let n = self.cfg.frame_len.max(1);
        let energies: Vec<f32> = samples
            .chunks(n)
            .map(|c| c.iter().map(|s| s * s).sum::<f32>() / c.len() as f32)
            .collect();
        let mean_energy = if energies.is_empty() {
            0.0
        } else {
            energies.iter().sum::<f32>() / energies.len() as f32
        };
        // Seed the noise floor from the quietest frame so utterances that
        // begin mid-speech are still detected.
        let mut floor = energies
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
            .max(1e-9);
        if !floor.is_finite() {
            floor = 1e-9;
        }
        let mut active = Vec::with_capacity(energies.len());
        let mut hang = 0usize;
        for &e in &energies {
            let speech = e > floor * self.cfg.threshold;
            if speech {
                hang = self.cfg.hangover;
                active.push(true);
            } else if hang > 0 {
                hang -= 1;
                active.push(true);
            } else {
                active.push(false);
                // Only quiet frames update the noise floor.
                floor = self.cfg.floor_alpha * floor + (1.0 - self.cfg.floor_alpha) * e.max(1e-9);
            }
        }
        VadResult {
            active,
            mean_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{render_phones, SignalConfig};
    use asr_wfst::PhoneId;

    fn noisy_silence(frames: usize) -> Vec<f32> {
        // Match the synthetic renderer's noise floor.
        render_phones(&[PhoneId::EPSILON], frames, &SignalConfig::default())
    }

    #[test]
    fn silence_is_inactive() {
        let vad = Vad::default();
        let r = vad.detect(&noisy_silence(20));
        assert!(r.activity_ratio() < 0.2, "ratio {}", r.activity_ratio());
    }

    #[test]
    fn speech_between_silences_is_segmented() {
        let cfg = SignalConfig::default();
        let mut samples = noisy_silence(10);
        samples.extend(render_phones(&[PhoneId(3), PhoneId(4)], 5, &cfg));
        samples.extend(noisy_silence(12));
        let r = Vad::default().detect(&samples);
        let segs = r.segments();
        assert_eq!(segs.len(), 1, "segments: {segs:?}");
        let (start, end) = segs[0];
        // Speech spans frames 10..19 (+hangover at the tail).
        assert!((8..=11).contains(&start), "start {start}");
        assert!((19..=26).contains(&end), "end {end}");
    }

    #[test]
    fn hangover_bridges_short_pauses() {
        let cfg = SignalConfig::default();
        let mut samples = render_phones(&[PhoneId(3)], 4, &cfg);
        samples.extend(noisy_silence(2)); // 2-frame pause < 5-frame hangover
        samples.extend(render_phones(&[PhoneId(4)], 4, &cfg));
        let r = Vad::default().detect(&samples);
        assert_eq!(r.segments().len(), 1, "pause should be bridged");
    }

    #[test]
    fn long_pause_splits_segments() {
        let cfg = SignalConfig::default();
        let mut samples = render_phones(&[PhoneId(3)], 4, &cfg);
        samples.extend(noisy_silence(15));
        samples.extend(render_phones(&[PhoneId(4)], 4, &cfg));
        let r = Vad::default().detect(&samples);
        assert_eq!(r.segments().len(), 2, "{:?}", r.segments());
    }

    #[test]
    fn trimmed_segments_shrink_but_never_invert() {
        let r = VadResult {
            active: vec![false, true, true, true, true, false, true, false],
            mean_energy: 0.0,
        };
        assert_eq!(r.segments(), vec![(1, 4), (6, 6)]);
        assert_eq!(r.segments_trimmed(2), vec![(1, 2), (6, 6)]);
        // Over-trimming collapses to the start frame, never below it.
        assert_eq!(r.segments_trimmed(100), vec![(1, 1), (6, 6)]);
    }

    #[test]
    fn empty_input_is_safe() {
        let r = Vad::default().detect(&[]);
        assert!(r.active.is_empty());
        assert!(r.segments().is_empty());
        assert_eq!(r.activity_ratio(), 0.0);
        assert_eq!(r.mean_energy, 0.0);
    }
}
