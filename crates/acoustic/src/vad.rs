//! Energy-based voice activity detection and endpointing.
//!
//! Mobile ASR systems (the paper's target segment) do not run the search
//! continuously: a cheap always-on detector gates the expensive pipeline.
//! This module provides the standard short-time-energy VAD with hangover
//! smoothing, plus utterance endpointing used by the streaming example.

use serde::{Deserialize, Serialize};

/// VAD tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VadConfig {
    /// Samples per analysis frame (10 ms at 16 kHz).
    pub frame_len: usize,
    /// Energy threshold relative to the running noise floor (linear
    /// factor; speech must exceed `noise_floor * threshold`).
    pub threshold: f32,
    /// Frames of hangover: speech is held active this many frames after
    /// energy drops, bridging short pauses.
    pub hangover: usize,
    /// Exponential smoothing factor for the noise-floor estimate.
    pub floor_alpha: f32,
}

impl Default for VadConfig {
    fn default() -> Self {
        Self {
            frame_len: crate::FRAME_SAMPLES,
            threshold: 4.0,
            hangover: 5,
            floor_alpha: 0.95,
        }
    }
}

/// Per-frame voice activity decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct VadResult {
    /// One flag per frame: `true` = speech.
    pub active: Vec<bool>,
    /// Mean frame energy, for diagnostics.
    pub mean_energy: f32,
}

impl VadResult {
    /// Contiguous active segments as `(first_frame, last_frame)` pairs —
    /// the utterance endpoints handed to the decoder.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &a) in self.active.iter().enumerate() {
            match (a, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    out.push((s, i - 1));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            out.push((s, self.active.len() - 1));
        }
        out
    }

    /// Segments with up to `tail` trailing frames removed — undoing the
    /// hangover padding before the segment is handed to the decoder, so
    /// trailing silence is not force-aligned to phones.
    pub fn segments_trimmed(&self, tail: usize) -> Vec<(usize, usize)> {
        self.segments()
            .into_iter()
            .map(|(start, end)| (start, end.saturating_sub(tail).max(start)))
            .collect()
    }

    /// Fraction of frames marked as speech.
    pub fn activity_ratio(&self) -> f64 {
        if self.active.is_empty() {
            return 0.0;
        }
        self.active.iter().filter(|&&a| a).count() as f64 / self.active.len() as f64
    }
}

/// The detector.
#[derive(Debug, Clone, Default)]
pub struct Vad {
    cfg: VadConfig,
}

impl Vad {
    /// Creates a detector.
    pub fn new(cfg: VadConfig) -> Self {
        Self { cfg }
    }

    /// Classifies every frame of `samples`.
    ///
    /// The noise floor starts at the first frame's energy and tracks quiet
    /// frames with exponential smoothing; a frame is speech when its
    /// energy exceeds `threshold x floor`, extended by `hangover` frames.
    pub fn detect(&self, samples: &[f32]) -> VadResult {
        let n = self.cfg.frame_len.max(1);
        let energies: Vec<f32> = samples
            .chunks(n)
            .map(|c| c.iter().map(|s| s * s).sum::<f32>() / c.len() as f32)
            .collect();
        let mean_energy = if energies.is_empty() {
            0.0
        } else {
            energies.iter().sum::<f32>() / energies.len() as f32
        };
        // Seed the noise floor from the quietest frame so utterances that
        // begin mid-speech are still detected.
        let mut floor = energies
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
            .max(1e-9);
        if !floor.is_finite() {
            floor = 1e-9;
        }
        let mut active = Vec::with_capacity(energies.len());
        let mut hang = 0usize;
        for &e in &energies {
            let speech = e > floor * self.cfg.threshold;
            if speech {
                hang = self.cfg.hangover;
                active.push(true);
            } else if hang > 0 {
                hang -= 1;
                active.push(true);
            } else {
                active.push(false);
                // Only quiet frames update the noise floor.
                floor = self.cfg.floor_alpha * floor + (1.0 - self.cfg.floor_alpha) * e.max(1e-9);
            }
        }
        VadResult {
            active,
            mean_energy,
        }
    }
}

/// Streaming (causal) voice activity detector: push samples in any
/// chunking, collect one decision per completed 10 ms frame.
///
/// Unlike the batch [`Vad`] — which seeds its noise floor from the
/// quietest frame of the *whole* utterance — the online detector can only
/// look backward: the floor seeds from the first completed frame, tracks
/// quiet frames with the same exponential smoothing, and during the first
/// second of the stream drifts upward on speech-classified frames so a
/// spuriously quiet opening frame cannot latch the detector into speech.
/// The two detectors therefore classify borderline frames differently;
/// on streams that open with representative ambience (the always-on
/// listening scenario) their decisions coincide in practice, but no
/// equality is guaranteed.
#[derive(Debug, Clone)]
pub struct OnlineVad {
    cfg: VadConfig,
    /// Running noise-floor estimate; `None` until the first frame.
    floor: Option<f32>,
    hang: usize,
    /// Frames classified so far (bounds the floor-recovery drift).
    frames: usize,
    /// Partial-frame energy accumulator.
    acc: f32,
    acc_count: usize,
}

/// Frames of stream-open warm-up during which [`OnlineVad`] lets its
/// floor drift upward on speech-classified frames (one second).
const FLOOR_RECOVERY_FRAMES: usize = 100;

/// Per-frame upward floor drift applied during the recovery window.
const FLOOR_RECOVERY_DRIFT: f32 = 1.05;

impl OnlineVad {
    /// Creates a streaming detector.
    pub fn new(cfg: VadConfig) -> Self {
        Self {
            cfg,
            floor: None,
            hang: 0,
            frames: 0,
            acc: 0.0,
            acc_count: 0,
        }
    }

    /// Feeds samples; appends one speech/silence flag per completed frame
    /// to `decisions` (allocation-free once `decisions` has capacity).
    pub fn push_samples(&mut self, samples: &[f32], decisions: &mut Vec<bool>) {
        let frame_len = self.cfg.frame_len.max(1);
        for &s in samples {
            self.acc += s * s;
            self.acc_count += 1;
            if self.acc_count == frame_len {
                let energy = self.acc / frame_len as f32;
                decisions.push(self.classify(energy));
                self.acc = 0.0;
                self.acc_count = 0;
            }
        }
    }

    /// Classifies any trailing partial frame (end of stream); `None` when
    /// no samples are pending.
    pub fn flush(&mut self) -> Option<bool> {
        if self.acc_count == 0 {
            return None;
        }
        let energy = self.acc / self.acc_count as f32;
        self.acc = 0.0;
        self.acc_count = 0;
        Some(self.classify(energy))
    }

    /// Forgets all state (noise floor included).
    pub fn reset(&mut self) {
        self.floor = None;
        self.hang = 0;
        self.frames = 0;
        self.acc = 0.0;
        self.acc_count = 0;
    }

    fn classify(&mut self, energy: f32) -> bool {
        let floor = *self.floor.get_or_insert(energy.max(1e-9));
        self.frames += 1;
        let speech = energy > floor * self.cfg.threshold;
        if speech {
            self.hang = self.cfg.hangover;
            // Upward floor drift, stream-open warm-up only. A spuriously
            // low seed — say a digital-zero warm-up frame from the mic
            // driver — would otherwise classify steady ambient noise as
            // speech forever, because only silent frames update the
            // floor; the drift lets the floor climb until genuine
            // silence reclassifies. Bounding it to the first second
            // keeps sustained later speech (dictation, read speech) from
            // slowly deafening the detector mid-utterance.
            if self.frames <= FLOOR_RECOVERY_FRAMES {
                self.floor = Some(floor * FLOOR_RECOVERY_DRIFT);
            }
            true
        } else if self.hang > 0 {
            self.hang -= 1;
            true
        } else {
            // Only quiet frames update the noise floor.
            self.floor = Some(
                self.cfg.floor_alpha * floor + (1.0 - self.cfg.floor_alpha) * energy.max(1e-9),
            );
            false
        }
    }
}

/// VAD-gated utterance endpointing over a sample stream: arms on the
/// first active frame, fires once `min_silence` consecutive inactive
/// frames follow speech — the auto-endpointing a streaming session uses
/// to decide when to finalize (see `examples/streaming.rs`).
#[derive(Debug, Clone)]
pub struct Endpointer {
    vad: OnlineVad,
    min_silence: usize,
    in_speech: bool,
    last_active: bool,
    silence_run: usize,
    frames: usize,
    decisions: Vec<bool>,
}

impl Endpointer {
    /// Creates an endpointer firing after `min_silence` inactive frames.
    pub fn new(cfg: VadConfig, min_silence: usize) -> Self {
        Self {
            vad: OnlineVad::new(cfg),
            min_silence: min_silence.max(1),
            in_speech: false,
            last_active: false,
            silence_run: 0,
            frames: 0,
            decisions: Vec::new(),
        }
    }

    /// Feeds samples; returns `true` if an utterance endpoint was crossed
    /// while consuming them (the endpointer then re-arms for the next
    /// utterance, keeping its noise floor).
    pub fn push_samples(&mut self, samples: &[f32]) -> bool {
        let mut decisions = std::mem::take(&mut self.decisions);
        decisions.clear();
        self.vad.push_samples(samples, &mut decisions);
        let mut endpoint = false;
        for &active in &decisions {
            self.frames += 1;
            self.last_active = active;
            if active {
                self.in_speech = true;
                self.silence_run = 0;
            } else if self.in_speech {
                self.silence_run += 1;
                if self.silence_run >= self.min_silence {
                    endpoint = true;
                    self.in_speech = false;
                    self.silence_run = 0;
                }
            }
        }
        self.decisions = decisions;
        endpoint
    }

    /// `true` between the first active frame and the endpoint — the whole
    /// utterance *including* the trailing silence the endpoint waits out.
    pub fn in_speech(&self) -> bool {
        self.in_speech
    }

    /// The VAD decision (speech or hangover-extended speech) of the most
    /// recently classified frame — the per-frame gate that decides whether
    /// a packet of audio should reach the recognizer, as opposed to
    /// [`Endpointer::in_speech`], which also spans the pre-endpoint
    /// silence.
    pub fn last_frame_active(&self) -> bool {
        self.last_active
    }

    /// Frames classified so far.
    pub fn frames(&self) -> usize {
        self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{render_phones, SignalConfig};
    use asr_wfst::PhoneId;

    fn noisy_silence(frames: usize) -> Vec<f32> {
        // Match the synthetic renderer's noise floor.
        render_phones(&[PhoneId::EPSILON], frames, &SignalConfig::default())
    }

    #[test]
    fn silence_is_inactive() {
        let vad = Vad::default();
        let r = vad.detect(&noisy_silence(20));
        assert!(r.activity_ratio() < 0.2, "ratio {}", r.activity_ratio());
    }

    #[test]
    fn speech_between_silences_is_segmented() {
        let cfg = SignalConfig::default();
        let mut samples = noisy_silence(10);
        samples.extend(render_phones(&[PhoneId(3), PhoneId(4)], 5, &cfg));
        samples.extend(noisy_silence(12));
        let r = Vad::default().detect(&samples);
        let segs = r.segments();
        assert_eq!(segs.len(), 1, "segments: {segs:?}");
        let (start, end) = segs[0];
        // Speech spans frames 10..19 (+hangover at the tail).
        assert!((8..=11).contains(&start), "start {start}");
        assert!((19..=26).contains(&end), "end {end}");
    }

    #[test]
    fn hangover_bridges_short_pauses() {
        let cfg = SignalConfig::default();
        let mut samples = render_phones(&[PhoneId(3)], 4, &cfg);
        samples.extend(noisy_silence(2)); // 2-frame pause < 5-frame hangover
        samples.extend(render_phones(&[PhoneId(4)], 4, &cfg));
        let r = Vad::default().detect(&samples);
        assert_eq!(r.segments().len(), 1, "pause should be bridged");
    }

    #[test]
    fn long_pause_splits_segments() {
        let cfg = SignalConfig::default();
        let mut samples = render_phones(&[PhoneId(3)], 4, &cfg);
        samples.extend(noisy_silence(15));
        samples.extend(render_phones(&[PhoneId(4)], 4, &cfg));
        let r = Vad::default().detect(&samples);
        assert_eq!(r.segments().len(), 2, "{:?}", r.segments());
    }

    #[test]
    fn trimmed_segments_shrink_but_never_invert() {
        let r = VadResult {
            active: vec![false, true, true, true, true, false, true, false],
            mean_energy: 0.0,
        };
        assert_eq!(r.segments(), vec![(1, 4), (6, 6)]);
        assert_eq!(r.segments_trimmed(2), vec![(1, 2), (6, 6)]);
        // Over-trimming collapses to the start frame, never below it.
        assert_eq!(r.segments_trimmed(100), vec![(1, 1), (6, 6)]);
    }

    #[test]
    fn empty_input_is_safe() {
        let r = Vad::default().detect(&[]);
        assert!(r.active.is_empty());
        assert!(r.segments().is_empty());
        assert_eq!(r.activity_ratio(), 0.0);
        assert_eq!(r.mean_energy, 0.0);
    }

    #[test]
    fn online_vad_detects_speech_after_quiet_lead_in() {
        let cfg = SignalConfig::default();
        let mut stream = noisy_silence(10);
        stream.extend(render_phones(&[PhoneId(3)], 6, &cfg));
        stream.extend(noisy_silence(10));
        let mut vad = OnlineVad::new(VadConfig::default());
        let mut decisions = Vec::new();
        // Push in uneven chunks to exercise the partial-frame accumulator.
        for chunk in stream.chunks(117) {
            vad.push_samples(chunk, &mut decisions);
        }
        assert_eq!(decisions.len(), stream.len() / 160);
        assert!(!decisions[..8].iter().any(|&a| a), "lead-in marked speech");
        assert!(
            decisions[10..16].iter().all(|&a| a),
            "speech frames missed: {decisions:?}"
        );
        assert!(!decisions[decisions.len() - 1], "tail silence still active");
    }

    #[test]
    fn online_vad_recovers_from_a_silent_first_frame() {
        // A digital-zero warm-up frame seeds the floor at the 1e-9 clamp;
        // steady ambient noise then reads as "speech" until the upward
        // floor drift catches up. The detector must unlatch, and stay
        // unlatched, rather than classify ambience as speech forever.
        let mut vad = OnlineVad::new(VadConfig::default());
        let mut decisions = Vec::new();
        vad.push_samples(&vec![0.0f32; 160], &mut decisions);
        assert!(!decisions[0], "zero frame is not speech");
        // Ambient noise at ~1e-7 energy: 100x the clamped floor.
        let ambient = vec![3.2e-4f32; 160 * 300];
        decisions.clear();
        vad.push_samples(&ambient, &mut decisions);
        assert!(decisions[0], "ambience over the bad seed reads as speech");
        let tail = &decisions[decisions.len() - 20..];
        assert!(tail.iter().all(|&a| !a), "floor never recovered: {tail:?}");
    }

    #[test]
    fn online_vad_does_not_deafen_during_sustained_speech() {
        // The recovery drift must not erode detection of long continuous
        // speech: after the warm-up window the floor freezes on speech
        // frames, so a 6 s utterance stays active end to end.
        let cfg = SignalConfig::default();
        let mut stream = noisy_silence(10);
        stream.extend(render_phones(&[PhoneId(3)], 600, &cfg));
        let mut vad = OnlineVad::new(VadConfig::default());
        let mut decisions = Vec::new();
        vad.push_samples(&stream, &mut decisions);
        assert!(
            decisions[12..].iter().all(|&a| a),
            "sustained speech went inactive at frame {}",
            decisions[12..].iter().position(|&a| !a).unwrap() + 12
        );
    }

    #[test]
    fn online_vad_flush_classifies_partial_frame() {
        let mut vad = OnlineVad::new(VadConfig::default());
        let mut decisions = Vec::new();
        vad.push_samples(&vec![0.001f32; 200], &mut decisions);
        assert_eq!(decisions.len(), 1);
        assert!(vad.flush().is_some(), "40 pending samples classified");
        assert!(vad.flush().is_none(), "accumulator drained");
    }

    #[test]
    fn endpointer_fires_after_trailing_silence() {
        let cfg = SignalConfig::default();
        let mut stream = noisy_silence(10);
        stream.extend(render_phones(&[PhoneId(3), PhoneId(4)], 6, &cfg));
        stream.extend(noisy_silence(30));
        let mut ep = Endpointer::new(VadConfig::default(), 10);
        let mut endpoints = 0;
        let mut spoke = false;
        for chunk in stream.chunks(160) {
            if ep.push_samples(chunk) {
                endpoints += 1;
                assert!(!ep.in_speech(), "endpoint re-arms the detector");
            }
            spoke |= ep.in_speech();
        }
        assert!(spoke, "speech was never detected");
        assert_eq!(endpoints, 1, "exactly one utterance endpoint");
        assert_eq!(ep.frames(), stream.len() / 160);
    }

    #[test]
    fn endpointer_stays_quiet_on_silence() {
        let mut ep = Endpointer::new(VadConfig::default(), 5);
        let silence = noisy_silence(40);
        for chunk in silence.chunks(160) {
            assert!(!ep.push_samples(chunk));
        }
        assert!(!ep.in_speech());
    }
}
