//! The streaming front-end's acceptance contract: [`OnlineMfcc`] and
//! [`OnlineScorer`] are **bit-identical** to the batch pipeline
//! ([`MfccPipeline::process`], [`TemplateScorer::score_waveform`]) for the
//! same audio, for every chunking of the sample stream — one sample at a
//! time, 10 ms packets, odd prime strides, or the whole utterance at once
//! — and across framing configurations (overlapping hops, gapped hops,
//! deltas off, trailing partial frames).

use asr_acoustic::frame::FrameConfig;
use asr_acoustic::mfcc::{MfccConfig, MfccPipeline};
use asr_acoustic::online::{OnlineMfcc, OnlineScorer};
use asr_acoustic::signal::{render_phones, SignalConfig};
use asr_acoustic::template::TemplateScorer;
use asr_wfst::PhoneId;

/// Chunk sizes the stream is cut into: single samples, a few odd primes
/// (never aligned with the 160-sample frame), one frame, and effectively
/// the whole utterance.
const CHUNKS: &[usize] = &[1, 7, 97, 160, 163, usize::MAX];

fn speech(frames_per_phone: usize) -> Vec<f32> {
    render_phones(
        &[PhoneId(1), PhoneId(5), PhoneId(2)],
        frames_per_phone,
        &SignalConfig::default(),
    )
}

/// Streams `samples` through a fresh `OnlineMfcc` in `chunk`-sized pieces
/// and returns every popped frame.
fn stream_features(cfg: MfccConfig, samples: &[f32], chunk: usize) -> Vec<Vec<f32>> {
    let mut online = OnlineMfcc::new(cfg);
    let mut out = Vec::new();
    for piece in samples.chunks(chunk.min(samples.len().max(1))) {
        online.push_samples(piece);
        // Pop eagerly, as a live consumer would.
        while let Some(frame) = online.pop_frame() {
            out.push(frame);
        }
    }
    online.finish();
    while let Some(frame) = online.pop_frame() {
        out.push(frame);
    }
    out
}

fn assert_bit_identical(batch: &[Vec<f32>], online: &[Vec<f32>], label: &str) {
    assert_eq!(batch.len(), online.len(), "{label}: frame count");
    for (t, (b, o)) in batch.iter().zip(online).enumerate() {
        assert_eq!(b.len(), o.len(), "{label}: dim at frame {t}");
        for (i, (x, y)) in b.iter().zip(o).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: frame {t} coeff {i}: batch {x} vs online {y}"
            );
        }
    }
}

#[test]
fn default_config_matches_across_chunkings() {
    let cfg = MfccConfig::default();
    let samples = speech(6);
    let batch = MfccPipeline::new(cfg).process(&samples);
    for &chunk in CHUNKS {
        let online = stream_features(cfg, &samples, chunk);
        assert_bit_identical(&batch, &online, &format!("chunk {chunk}"));
    }
}

#[test]
fn trailing_partial_frame_matches() {
    let cfg = MfccConfig::default();
    // 2.5 frames of audio plus 37 stray samples: the batch framer
    // zero-pads the tail, and so must the stream at finish().
    let mut samples = speech(2);
    samples.truncate(2 * 160 + 117);
    let batch = MfccPipeline::new(cfg).process(&samples);
    assert_eq!(batch.len(), 3, "trailing partial frame expected");
    for &chunk in CHUNKS {
        let online = stream_features(cfg, &samples, chunk);
        assert_bit_identical(&batch, &online, &format!("partial tail, chunk {chunk}"));
    }
}

#[test]
fn overlapping_hop_matches() {
    let cfg = MfccConfig {
        frame: FrameConfig {
            hop: 80,
            ..FrameConfig::default()
        },
        ..MfccConfig::default()
    };
    let samples = speech(4);
    let batch = MfccPipeline::new(cfg).process(&samples);
    for &chunk in &[1usize, 97, 163] {
        let online = stream_features(cfg, &samples, chunk);
        assert_bit_identical(&batch, &online, &format!("hop 80, chunk {chunk}"));
    }
}

#[test]
fn gapped_hop_matches() {
    let cfg = MfccConfig {
        frame: FrameConfig {
            hop: 230,
            ..FrameConfig::default()
        },
        ..MfccConfig::default()
    };
    let samples = speech(5);
    let batch = MfccPipeline::new(cfg).process(&samples);
    for &chunk in &[1usize, 97, 160] {
        let online = stream_features(cfg, &samples, chunk);
        assert_bit_identical(&batch, &online, &format!("hop 230, chunk {chunk}"));
    }
}

#[test]
fn no_delta_config_matches() {
    let cfg = MfccConfig {
        deltas: false,
        ..MfccConfig::default()
    };
    let samples = speech(3);
    let batch = MfccPipeline::new(cfg).process(&samples);
    for &chunk in CHUNKS {
        let online = stream_features(cfg, &samples, chunk);
        assert_bit_identical(&batch, &online, &format!("no deltas, chunk {chunk}"));
    }
}

#[test]
fn short_utterances_match() {
    // One and two frames exercise every delta edge clamp at once.
    let cfg = MfccConfig::default();
    let pipeline = MfccPipeline::new(cfg);
    for frames in [1usize, 2, 3] {
        let samples = &speech(6)[..frames * 160];
        let batch = pipeline.process(samples);
        assert_eq!(batch.len(), frames);
        for &chunk in &[1usize, 163] {
            let online = stream_features(cfg, samples, chunk);
            assert_bit_identical(&batch, &online, &format!("{frames} frames, chunk {chunk}"));
        }
    }
}

#[test]
fn empty_utterance_matches() {
    let cfg = MfccConfig::default();
    assert!(MfccPipeline::new(cfg).process(&[]).is_empty());
    let mut online = OnlineMfcc::new(cfg);
    online.finish();
    assert!(online.pop_frame().is_none());
}

#[test]
fn scorer_rows_match_batch_table_across_chunkings() {
    let scorer = TemplateScorer::with_default_signal(8);
    let samples = speech(6);
    let table = scorer.score_waveform(&samples);
    for &chunk in &[1usize, 97, 160, usize::MAX] {
        let mut online = OnlineScorer::new(*scorer.mfcc_config(), &scorer);
        assert_eq!(online.row_len(), table.num_phones());
        for piece in samples.chunks(chunk.min(samples.len())) {
            online.push_samples(piece);
        }
        online.finish();
        let mut row = vec![0.0f32; online.row_len()];
        for frame in 0..table.num_frames() {
            assert!(online.pop_row_into(&mut row), "row {frame} missing");
            for (p, (a, b)) in row.iter().zip(table.frame_row(frame)).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "chunk {chunk}, frame {frame}, phone {p}"
                );
            }
        }
        assert_eq!(online.ready_rows(), 0, "no surplus rows");
    }
}

#[test]
fn scorer_reset_recycles_buffers_bit_identically() {
    let scorer = TemplateScorer::with_default_signal(4);
    let a = speech(4);
    let b = render_phones(&[PhoneId(3)], 5, &SignalConfig::default());
    let mut online = OnlineScorer::new(*scorer.mfcc_config(), &scorer);
    for samples in [&a, &b, &a] {
        let table = scorer.score_waveform(samples);
        online.push_samples(samples);
        online.finish();
        let mut row = vec![0.0f32; online.row_len()];
        for frame in 0..table.num_frames() {
            assert!(online.pop_row_into(&mut row));
            for (x, y) in row.iter().zip(table.frame_row(frame)) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        online.reset();
    }
}
