//! One Criterion benchmark per paper table/figure, each timing the
//! simulation kernel that regenerates it (at reduced scale so `cargo
//! bench` stays fast). The actual series are produced by the `asr-bench`
//! binaries (`cargo run -p asr-bench --release --bin fig09_decoding_time`
//! etc.); these benches track the cost of regenerating them and guard the
//! simulator against performance regressions.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_wfst::sorted::SortedWfst;
use asr_wfst::stats::DegreeCdf;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const STATES: usize = 30_000;
const FRAMES: usize = 10;
const BEAM: f32 = 10.0;

fn workload() -> (Wfst, AcousticTable) {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(STATES)).unwrap();
    let scores = AcousticTable::random(FRAMES, wfst.num_phones() as usize, (0.5, 4.0), 11);
    (wfst, scores)
}

fn sim_cycles(wfst: &Wfst, scores: &AcousticTable, cfg: AcceleratorConfig) -> u64 {
    Simulator::new(cfg)
        .decode_wfst(wfst, scores)
        .unwrap()
        .stats
        .cycles
}

fn bench_figures(c: &mut Criterion) {
    let (wfst, scores) = workload();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Figure 1: baseline profile = one reference decode (workload probe).
    g.bench_function("fig01_profile_probe", |b| {
        let d = ViterbiDecoder::new(DecodeOptions::with_beam(BEAM));
        b.iter(|| black_box(d.decode(&wfst, &scores)))
    });

    // Figure 4: one cache-capacity point.
    g.bench_function("fig04_cache_point", |b| {
        b.iter(|| {
            let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(BEAM);
            cfg.arc_cache.capacity = 256 * 1024;
            cfg.state_cache.capacity = 256 * 1024;
            cfg.token_cache.capacity = 256 * 1024;
            black_box(sim_cycles(&wfst, &scores, cfg))
        })
    });

    // Figure 5: one hash-entries point.
    g.bench_function("fig05_hash_point", |b| {
        b.iter(|| {
            let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(BEAM);
            cfg.hash_entries = 8 * 1024;
            black_box(sim_cycles(&wfst, &scores, cfg))
        })
    });

    // Figure 7: static degree CDF.
    g.bench_function("fig07_degree_cdf", |b| {
        b.iter(|| black_box(DegreeCdf::from_static(&wfst).curve()))
    });

    // Figures 9/10/12/14: one design-point simulation each.
    for design in DesignPoint::ALL {
        g.bench_function(format!("fig09_{}", design.label()), |b| {
            b.iter(|| {
                black_box(sim_cycles(
                    &wfst,
                    &scores,
                    AcceleratorConfig::for_design(design).with_beam(BEAM),
                ))
            })
        });
    }

    // Figure 13 / Section IV-B: the offline re-layout itself.
    g.bench_function("fig13_sorted_relayout", |b| {
        b.iter(|| black_box(SortedWfst::new(&wfst).unwrap().static_direct_fraction()))
    });

    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
