//! Microbenchmarks of the simulator's hardware building blocks and the
//! software substrates: per-operation costs of the cache, hash table, DRAM
//! model and in-order window, plus the front-end (FFT/MFCC) and the
//! reference decoder's per-frame step.

use asr_accel::config::{AcceleratorConfig, CacheConfig, DesignPoint};
use asr_accel::hash::HashTable;
use asr_accel::mem::{Cache, Dram, TrafficKind};
use asr_accel::prefetch::InOrderWindow;
use asr_accel::sim::Simulator;
use asr_acoustic::fft::power_spectrum;
use asr_acoustic::mfcc::{MfccConfig, MfccPipeline};
use asr_acoustic::scores::AcousticTable;
use asr_acoustic::signal::{render_phones, SignalConfig};
use asr_decoder::reference::ReferenceDecoder;
use asr_decoder::search::{DecodeOptions, DecodeScratch, ViterbiDecoder};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::PhoneId;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.bench_function("access_hit", |b| {
        let mut cache = Cache::new(
            CacheConfig {
                capacity: 1024 * 1024,
                ways: 4,
                line: 64,
            },
            false,
        );
        cache.access(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1000), false)))
    });
    group.bench_function("access_streaming_misses", |b| {
        let mut cache = Cache::new(
            CacheConfig {
                capacity: 1024 * 1024,
                ways: 4,
                line: 64,
            },
            false,
        );
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(4096);
            black_box(cache.access(black_box(addr), false))
        })
    });
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    group.bench_function("access_32k_entries", |b| {
        let mut h = HashTable::new(32 * 1024, false);
        // Realistic state space: the timing model's slot arrays are dense
        // per-state, like the token table they shadow.
        h.reserve_states(1 << 20);
        let mut s = 0u32;
        b.iter(|| {
            s = s.wrapping_add(7919) & ((1 << 20) - 1);
            black_box(h.access(black_box(s)))
        })
    });
    group.finish();
}

fn bench_dram_and_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_models");
    group.bench_function("dram_request", |b| {
        let mut d = Dram::new(50, 32, 64);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(d.request(black_box(t), TrafficKind::Arcs))
        })
    });
    group.bench_function("inorder_window_push", |b| {
        let mut w = InOrderWindow::new(64);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(w.push(black_box(t + 50)))
        })
    });
    group.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("acoustic_frontend");
    let frame: Vec<f32> = (0..160).map(|i| (i as f32 * 0.1).sin()).collect();
    group.bench_function("fft_256", |b| {
        b.iter(|| black_box(power_spectrum(black_box(&frame), 256)))
    });
    let pipeline = MfccPipeline::new(MfccConfig::default());
    let wave = render_phones(&[PhoneId(1); 10], 6, &SignalConfig::default());
    group.bench_function("mfcc_60_frames", |b| {
        b.iter(|| black_box(pipeline.process(black_box(&wave))))
    });
    group.finish();
}

fn bench_decoder_and_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    group.sample_size(20);
    let wfst = SynthWfst::generate(&SynthConfig::with_states(20_000)).unwrap();
    let scores = AcousticTable::random(10, wfst.num_phones() as usize, (0.5, 4.0), 5);
    group.bench_function("hashmap_reference_10_frames", |b| {
        let d = ReferenceDecoder::new(DecodeOptions::with_beam(10.0));
        b.iter(|| black_box(d.decode(black_box(&wfst), black_box(&scores))))
    });
    group.bench_function("token_table_decoder_10_frames", |b| {
        let d = ViterbiDecoder::new(DecodeOptions::with_beam(10.0));
        b.iter(|| black_box(d.decode(black_box(&wfst), black_box(&scores))))
    });
    group.bench_function("token_table_reused_scratch_10_frames", |b| {
        let d = ViterbiDecoder::new(DecodeOptions::with_beam(10.0));
        let mut scratch = DecodeScratch::new(wfst.num_states());
        b.iter(|| black_box(d.decode_with(&mut scratch, black_box(&wfst), black_box(&scores))))
    });
    group.bench_function("simulator_base_10_frames", |b| {
        let sim = Simulator::new(AcceleratorConfig::for_design(DesignPoint::Base).with_beam(10.0));
        b.iter(|| {
            black_box(
                sim.decode_wfst(black_box(&wfst), black_box(&scores))
                    .unwrap(),
            )
        })
    });
    group.bench_function("simulator_final_10_frames", |b| {
        let sim =
            Simulator::new(AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(10.0));
        b.iter(|| {
            black_box(
                sim.decode_wfst(black_box(&wfst), black_box(&scores))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_hash,
    bench_dram_and_window,
    bench_frontend,
    bench_decoder_and_sim
);
criterion_main!(benches);
