//! Extension study: what if the WFST were epsilon-free?
//!
//! The paper keeps Kaldi's epsilon arcs (11.5% of the graph) and the
//! accelerator handles them with in-frame closure passes. Removing
//! epsilons offline trades graph size for pipeline simplicity; this
//! experiment quantifies that trade-off on the simulator — an ablation
//! the paper mentions only implicitly (epsilon arcs exist to keep the
//! graph small).

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use asr_wfst::rmeps::remove_epsilons;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    arcs: usize,
    epsilon_fraction: f64,
    cycles: u64,
    eps_arcs_evaluated: u64,
    traffic_mb: f64,
}

fn main() {
    let mut scale = Scale::from_args();
    // Epsilon removal is O(closure x arcs); run at reduced size.
    if scale.states > 300_000 {
        scale.states = 300_000;
    }
    banner(
        "ablation_epsilon",
        "epsilon arcs vs offline epsilon removal",
        "extension: Kaldi keeps 11.5% epsilon arcs to bound graph size",
    );
    let (wfst, scores) = scale.build();
    let eps_free = remove_epsilons(&wfst).expect("epsilon removal");
    let mut rows = Vec::new();
    for (name, graph) in [("with epsilons", &wfst), ("epsilon-free", &eps_free)] {
        let cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(scale.beam);
        let r = Simulator::new(cfg)
            .decode_wfst(graph, &scores)
            .expect("sim");
        rows.push(Row {
            graph: name.to_owned(),
            arcs: graph.num_arcs(),
            epsilon_fraction: graph.epsilon_fraction(),
            cycles: r.stats.cycles,
            eps_arcs_evaluated: r.stats.eps_arcs_processed,
            traffic_mb: r.stats.traffic.search_bytes() as f64 / 1e6,
        });
    }
    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>10} {:>10}",
        "graph", "arcs", "eps%", "cycles", "eps evals", "traffic"
    );
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>7.1}% {:>12} {:>10} {:>8.1}MB",
            r.graph,
            r.arcs,
            100.0 * r.epsilon_fraction,
            r.cycles,
            r.eps_arcs_evaluated,
            r.traffic_mb
        );
    }
    let growth = rows[1].arcs as f64 / rows[0].arcs as f64;
    println!("\narc-count growth from removal: {growth:.2}x");
    println!(
        "epsilon evaluations eliminated: {}",
        rows[0].eps_arcs_evaluated
    );
    write_json("ablation_epsilon", &rows);
}
