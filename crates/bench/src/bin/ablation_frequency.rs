//! Frequency-scaling ablation (extension beyond the paper).
//!
//! The paper fixes 600 MHz from the SRAM critical path (Section V). This
//! study asks what a different clock would buy: cycles shift with the
//! memory latency (83 ns of DRAM is more cycles at a faster clock),
//! wall-clock time divides by frequency, and leakage energy follows time.
//! The result shows the knee the authors designed at — past the SRAM
//! limit, extra frequency mostly waits on DRAM.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::energy::EnergyModel;
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mhz: u64,
    mem_latency_cycles: u64,
    cycles: u64,
    decode_ms: f64,
    energy_mj: f64,
    power_mw: f64,
}

/// The DRAM's absolute latency, fixed by the memory parts (83 ns).
const DRAM_NS: f64 = 83.3;

fn main() {
    let scale = Scale::from_args();
    banner(
        "ablation_frequency",
        "clock frequency sweep of the final design",
        "extension: the paper fixes 600 MHz from the SRAM critical path",
    );
    let (wfst, scores) = scale.build();
    let model = EnergyModel::default();
    let mut rows = Vec::new();
    for mhz in [300u64, 450, 600, 800, 1000] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(scale.beam);
        cfg.frequency_hz = mhz * 1_000_000;
        // The DRAM's nanoseconds are constant; its cycle count is not.
        cfg.mem_latency = ((DRAM_NS * mhz as f64) / 1000.0).round() as u64;
        let r = Simulator::new(cfg.clone())
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        let energy = model.energy(&cfg, &r.stats);
        let seconds = r.stats.seconds(cfg.frequency_hz);
        rows.push(Row {
            mhz,
            mem_latency_cycles: cfg.mem_latency,
            cycles: r.stats.cycles,
            decode_ms: seconds * 1e3,
            energy_mj: energy.total_j() * 1e3,
            power_mw: energy.power_w(seconds) * 1e3,
        });
    }
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "MHz", "mem cyc", "cycles", "time", "energy", "power"
    );
    for r in &rows {
        println!(
            "{:>6} {:>10} {:>12} {:>8.2}ms {:>8.3}mJ {:>8.0}mW",
            r.mhz, r.mem_latency_cycles, r.cycles, r.decode_ms, r.energy_mj, r.power_mw
        );
    }
    // Diminishing returns: speedup from doubling 300 -> 600 vs 600 -> 1000+.
    let t = |mhz: u64| rows.iter().find(|r| r.mhz == mhz).unwrap().decode_ms;
    println!(
        "\nspeedup 300->600 MHz: {:.2}x; 600->1000 MHz (1.67x clock): {:.2}x",
        t(300) / t(600),
        t(600) / t(1000)
    );
    write_json("ablation_frequency", &rows);
}
