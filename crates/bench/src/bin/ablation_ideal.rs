//! Section IV analysis: idealized memory structures.
//!
//! Paper: perfect caches speed the base accelerator up by 2.11x, while an
//! ideal (collision-free) hash gains only 2.8% — which is why the paper
//! attacks memory latency. Per cache: a perfect Token cache gives 1.02x, a
//! perfect State cache 1.09x, and a perfect Arc cache 1.95x; the
//! prefetcher reaches ~97% of the perfect Arc cache.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    cycles: u64,
    speedup_vs_base: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "ablation_ideal",
        "idealized caches and hash (Section IV)",
        "perfect caches 2.11x; ideal hash +2.8%; Arc/State/Token perfect = 1.95x/1.09x/1.02x",
    );
    let (wfst, scores) = scale.build();
    let beam = scale.beam;
    let base_cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(beam);
    let configs: Vec<(&str, AcceleratorConfig)> = vec![
        ("base", base_cfg.clone()),
        ("perfect all caches", base_cfg.clone().with_perfect_caches()),
        ("ideal hash", base_cfg.clone().with_ideal_hash()),
        ("perfect State cache", {
            let mut c = base_cfg.clone();
            c.perfect_state_cache = true;
            c
        }),
        ("perfect Arc cache", {
            let mut c = base_cfg.clone();
            c.perfect_arc_cache = true;
            c
        }),
        ("perfect Token cache", {
            let mut c = base_cfg.clone();
            c.perfect_token_cache = true;
            c
        }),
        (
            "arc prefetcher",
            AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(beam),
        ),
    ];
    let mut rows = Vec::new();
    let mut base_cycles = 0u64;
    for (name, cfg) in configs {
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        if name == "base" {
            base_cycles = r.stats.cycles;
        }
        rows.push(Row {
            config: name.to_owned(),
            cycles: r.stats.cycles,
            speedup_vs_base: base_cycles as f64 / r.stats.cycles as f64,
        });
    }
    println!("{:<22} {:>12} {:>14}", "config", "cycles", "speedup");
    for r in &rows {
        println!(
            "{:<22} {:>12} {:>13.3}x",
            r.config, r.cycles, r.speedup_vs_base
        );
    }
    let get = |n: &str| rows.iter().find(|r| r.config == n).unwrap().speedup_vs_base;
    let prefetch_vs_perfect_arc = {
        let pf = rows.iter().find(|r| r.config == "arc prefetcher").unwrap();
        let pa = rows
            .iter()
            .find(|r| r.config == "perfect Arc cache")
            .unwrap();
        pa.cycles as f64 / pf.cycles as f64
    };
    println!("\nchecks (paper values in parens):");
    println!(
        "  perfect caches speedup:   {:.2}x (2.11x)",
        get("perfect all caches")
    );
    println!(
        "  ideal hash speedup:       {:.3}x (1.028x)",
        get("ideal hash")
    );
    println!(
        "  perfect Arc cache:        {:.2}x (1.95x)",
        get("perfect Arc cache")
    );
    println!(
        "  perfect State cache:      {:.2}x (1.09x)",
        get("perfect State cache")
    );
    println!(
        "  perfect Token cache:      {:.2}x (1.02x)",
        get("perfect Token cache")
    );
    println!(
        "  Arc cache dominates:      {}",
        get("perfect Arc cache") > get("perfect State cache")
            && get("perfect State cache") >= get("perfect Token cache")
    );
    println!(
        "  prefetcher vs perfect Arc: {:.1}% (97%)",
        100.0 * prefetch_vs_perfect_arc
    );
    write_json("ablation_ideal", &rows);
}
