//! Section IV-A baseline: conventional hardware prefetchers.
//!
//! Paper: "the miss address stream during the Viterbi search is highly
//! unpredictable due to the pruning and, hence, conventional hardware
//! prefetchers are ineffective. We implemented and evaluated different
//! state-of-the-art hardware prefetchers, and our results show that these
//! schemes produce slowdowns and increase energy due to the useless
//! prefetches that they generate."
//!
//! This experiment puts next-line and stride prefetchers on the Arc cache
//! and compares them against the paper's decoupled computed-address
//! architecture.

use asr_accel::config::{AcceleratorConfig, DesignPoint, HwPrefetcher};
use asr_accel::energy::EnergyModel;
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    cycles: u64,
    speedup_vs_base: f64,
    arc_traffic_mb: f64,
    prefetch_fills: u64,
    useful_fraction: f64,
    energy_mj: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "ablation_prefetchers",
        "conventional prefetchers vs the decoupled architecture",
        "predicted-address prefetchers waste bandwidth; computed addresses do not",
    );
    let (wfst, scores) = scale.build();
    let model = EnergyModel::default();
    let configs: Vec<(String, AcceleratorConfig)> = vec![
        (
            "base (no prefetch)".into(),
            AcceleratorConfig::for_design(DesignPoint::Base).with_beam(scale.beam),
        ),
        ("base + next-line".into(), {
            let mut c = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(scale.beam);
            c.hw_prefetcher = HwPrefetcher::NextLine;
            c
        }),
        ("base + stride".into(), {
            let mut c = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(scale.beam);
            c.hw_prefetcher = HwPrefetcher::Stride;
            c
        }),
        (
            "decoupled (paper)".into(),
            AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(scale.beam),
        ),
    ];
    let mut rows: Vec<Row> = Vec::new();
    let mut base_cycles = 0u64;
    for (name, cfg) in configs {
        let r = Simulator::new(cfg.clone())
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        if base_cycles == 0 {
            base_cycles = r.stats.cycles;
        }
        let s = &r.stats;
        let fills = s.arc_cache.prefetch_fills;
        rows.push(Row {
            config: name,
            cycles: s.cycles,
            speedup_vs_base: base_cycles as f64 / s.cycles as f64,
            arc_traffic_mb: s.traffic.arcs as f64 / 1e6,
            prefetch_fills: fills,
            useful_fraction: if fills == 0 {
                0.0
            } else {
                s.arc_cache.prefetch_hits as f64 / fills as f64
            },
            energy_mj: model.energy(&cfg, &r.stats).total_j() * 1e3,
        });
    }
    println!(
        "{:<20} {:>12} {:>9} {:>10} {:>10} {:>8} {:>10}",
        "config", "cycles", "speedup", "arc MB", "pf fills", "useful", "energy"
    );
    for r in &rows {
        println!(
            "{:<20} {:>12} {:>8.2}x {:>9.1}MB {:>10} {:>7.0}% {:>8.3}mJ",
            r.config,
            r.cycles,
            r.speedup_vs_base,
            r.arc_traffic_mb,
            r.prefetch_fills,
            100.0 * r.useful_fraction,
            r.energy_mj
        );
    }
    let base = &rows[0];
    let decoupled = rows.last().unwrap();
    let conventional_best = rows[1..3]
        .iter()
        .map(|r| r.speedup_vs_base)
        .fold(f64::MIN, f64::max);
    println!("\nchecks (paper claims):");
    println!(
        "  conventional prefetchers increase arc traffic: {}",
        rows[1].arc_traffic_mb > base.arc_traffic_mb
            && rows[2].arc_traffic_mb > base.arc_traffic_mb
    );
    println!(
        "  conventional prefetchers increase energy: {}",
        rows[1].energy_mj > base.energy_mj && rows[2].energy_mj > base.energy_mj
    );
    println!(
        "  best conventional speedup {:.2}x << decoupled {:.2}x",
        conventional_best, decoupled.speedup_vs_base
    );
    write_json("ablation_prefetchers", &rows);
}
