//! Design-space sweeps beyond the paper's figures, exercising the design
//! choices DESIGN.md calls out: beam width, prefetch FIFO depth
//! (timeliness), the direct-index threshold `N`, and the memory
//! controller's in-flight limit.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Sweeps {
    beam: Vec<(f32, u64, f64)>,          // beam, cycles, arcs/frame
    fifo_depth: Vec<(usize, u64)>,       // depth, cycles
    threshold_n: Vec<(usize, u64, f64)>, // N, state traffic bytes, direct fraction
    inflight: Vec<(usize, u64)>,         // mem in-flight, cycles
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "ablation_sweeps",
        "beam / FIFO depth / N / in-flight sweeps",
        "design-choice sensitivity (not a paper figure)",
    );
    let (wfst, scores) = scale.build();
    let mut out = Sweeps::default();

    println!("beam width (base design):");
    for beam in [4.0f32, 8.0, 12.0, 16.0] {
        let cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(beam);
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        println!(
            "  beam {:>4}: cycles {:>12}, arcs/frame {:>9.0}",
            beam,
            r.stats.cycles,
            r.stats.arcs_per_frame()
        );
        out.beam
            .push((beam, r.stats.cycles, r.stats.arcs_per_frame()));
    }

    println!("\nprefetch FIFO depth (arc-prefetch design):");
    for depth in [8usize, 16, 32, 64, 128] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::ArcPrefetch).with_beam(scale.beam);
        cfg.prefetch_fifo = depth;
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        println!("  depth {:>4}: cycles {:>12}", depth, r.stats.cycles);
        out.fifo_depth.push((depth, r.stats.cycles));
    }

    println!("\ndirect-index threshold N (state-opt design):");
    for n in [2usize, 4, 8, 16, 32] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::StateOpt).with_beam(scale.beam);
        cfg.state_opt_threshold = n;
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        let direct_frac = r.stats.state_fetches_avoided as f64
            / (r.stats.state_fetches + r.stats.state_fetches_avoided).max(1) as f64;
        println!(
            "  N {:>3}: state traffic {:>10} B, direct fraction {:>6.1}%",
            n,
            r.stats.traffic.states,
            100.0 * direct_frac
        );
        out.threshold_n
            .push((n, r.stats.traffic.states, direct_frac));
    }

    println!("\nmemory controller in-flight limit (final design):");
    for inflight in [4usize, 8, 16, 32, 64] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(scale.beam);
        cfg.mem_inflight = inflight;
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        println!("  in-flight {:>3}: cycles {:>12}", inflight, r.stats.cycles);
        out.inflight.push((inflight, r.stats.cycles));
    }

    write_json("ablation_sweeps", &out);
}
