//! Section VI text: accelerator area.
//!
//! Paper: 24.06 mm² for the base design (16.5x smaller than a GTX 980's
//! 398 mm² die); the prefetcher adds 0.05% and the bandwidth-saving State
//! Issuer hardware 0.02%, totalling 24.09 mm².

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::energy::AreaModel;
use asr_bench::{banner, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    caches_mm2: f64,
    hash_mm2: f64,
    acoustic_mm2: f64,
    logic_mm2: f64,
    prefetch_mm2: f64,
    state_opt_mm2: f64,
    total_mm2: f64,
}

const GTX980_MM2: f64 = 398.0;

fn main() {
    banner(
        "area",
        "accelerator area by component",
        "24.06 mm2 base, +0.05% prefetch, +0.02% state issuer; 16.5x below GTX 980",
    );
    let mut rows = Vec::new();
    for design in DesignPoint::ALL {
        let area = AreaModel.area(&AcceleratorConfig::for_design(design));
        rows.push(Row {
            config: design.label().to_owned(),
            caches_mm2: area.caches_mm2,
            hash_mm2: area.hash_mm2,
            acoustic_mm2: area.acoustic_mm2,
            logic_mm2: area.logic_mm2,
            prefetch_mm2: area.prefetch_mm2,
            state_opt_mm2: area.state_opt_mm2,
            total_mm2: area.total_mm2(),
        });
    }
    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>8} {:>9} {:>10} {:>8}",
        "config", "caches", "hash", "acoustic", "logic", "prefetch", "state-opt", "total"
    );
    for r in &rows {
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>9.2} {:>8.2} {:>9.3} {:>10.3} {:>8.2}",
            r.config,
            r.caches_mm2,
            r.hash_mm2,
            r.acoustic_mm2,
            r.logic_mm2,
            r.prefetch_mm2,
            r.state_opt_mm2,
            r.total_mm2
        );
    }
    let final_total = rows.last().unwrap().total_mm2;
    println!("\nchecks:");
    println!("  base total: {:.2} mm2 (paper 24.06)", rows[0].total_mm2);
    println!("  final total: {:.2} mm2 (paper 24.09)", final_total);
    println!(
        "  vs GTX 980 die: {:.1}x smaller (paper 16.5x)",
        GTX980_MM2 / rows[0].total_mm2
    );
    write_json("area_report", &rows);
}
