//! Accelerator-simulator benchmark: all four design points on the pinned
//! fixture, with an exact-counter regression gate against the pre-port
//! simulator.
//!
//! The PR that ported the simulator's functional search onto
//! `asr-decoder::token_table` promised that the timing model would not
//! move: for the base design the hardware counters (cycles, token and arc
//! activity, hash probes, off-chip traffic) must equal the values the
//! HashMap-era simulator produced on the same fixture. This binary
//! measures all four design points, reports cycles/frame and the
//! real-time factor at the paper's 600 MHz clock, computes the
//! base-design deltas against that frozen baseline, and splices an
//! `"accel"` section into `BENCH_decode.json`. CI greps the section and
//! the `"stats_regression_ok": true` gate.
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_accel
//! ```

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// The pinned fixture (also asserted, counter by counter, in
/// `crates/accel/tests/sim_token_table_equivalence.rs`).
const STATES: usize = 20_000;
const FRAMES: usize = 30;
const SEED: u64 = 2;
const BEAM: f32 = 6.0;

/// Pre-port base-design counters on the fixture above, captured from the
/// HashMap-era simulator at the commit before the token-table port.
#[derive(Debug, Clone, Copy)]
struct PrePortBaseline {
    cycles: u64,
    tokens_fetched: u64,
    tokens_pruned: u64,
    tokens_created: u64,
    arcs_processed: u64,
    eps_arcs_processed: u64,
    hash_requests: u64,
    hash_cycles: u64,
    traffic_states: u64,
    traffic_arcs: u64,
    traffic_tokens: u64,
    mem_requests: u64,
    fp_adds: u64,
    fp_compares: u64,
}

const PRE_PORT: PrePortBaseline = PrePortBaseline {
    cycles: 72_085,
    tokens_fetched: 4_230,
    tokens_pruned: 2_624,
    tokens_created: 4_273,
    arcs_processed: 3_710,
    eps_arcs_processed: 633,
    hash_requests: 4_344,
    hash_cycles: 4_344,
    traffic_states: 59_008,
    traffic_arcs: 111_040,
    traffic_tokens: 34_240,
    mem_requests: 3_192,
    fp_adds: 8_053,
    fp_compares: 8_573,
};

#[derive(Debug, Clone, Serialize)]
struct DesignRow {
    design: String,
    cycles: u64,
    cycles_per_frame: f64,
    cycles_per_arc: f64,
    /// Speech seconds decoded per wall-clock second at the paper's clock.
    real_time_factor_at_600mhz: f64,
    /// Host seconds to simulate the decode (simulator throughput).
    sim_wall_seconds: f64,
    /// Simulated cycles per host second.
    sim_cycles_per_second: f64,
    off_chip_bytes: u64,
}

/// Signed difference of one counter against the pre-port baseline.
#[derive(Debug, Clone, Serialize)]
struct StatDelta {
    counter: String,
    pre_port: u64,
    measured: u64,
    delta: i64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    states: usize,
    frames: usize,
    seed: u64,
    beam: f32,
    designs: Vec<DesignRow>,
    /// Base-design counter deltas vs the pre-port (HashMap-era) simulator.
    base_deltas_vs_pre_port: Vec<StatDelta>,
    /// The regression bound: every base-design counter delta is exactly 0.
    stats_regression_ok: bool,
}

fn main() {
    asr_bench::banner(
        "bench_accel",
        "accelerator simulator on the shared token table",
        "Section III datapath; counters gated against the pre-port model",
    );
    let wfst = SynthWfst::generate(&SynthConfig::with_states(STATES).with_seed(SEED)).unwrap();
    let scores = AcousticTable::random(
        FRAMES,
        wfst.num_phones() as usize,
        (0.5, 4.0),
        SEED ^ 0xABCD,
    );

    let mut designs = Vec::new();
    let mut base_deltas = Vec::new();
    let mut regression_ok = true;
    for design in DesignPoint::ALL {
        let cfg = AcceleratorConfig::for_design(design).with_beam(BEAM);
        let sim = Simulator::new(cfg.clone());
        // Warm-up, then best-of-3 wall clock (the result is deterministic;
        // only the host timing varies).
        let result = sim.decode_wfst(&wfst, &scores).unwrap();
        let mut wall = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let again = sim.decode_wfst(&wfst, &scores).unwrap();
            wall = wall.min(t0.elapsed().as_secs_f64());
            assert_eq!(again.stats.cycles, result.stats.cycles, "nondeterminism");
        }
        let s = &result.stats;
        let row = DesignRow {
            design: design.label().to_owned(),
            cycles: s.cycles,
            cycles_per_frame: s.cycles as f64 / FRAMES as f64,
            cycles_per_arc: s.cycles_per_arc(),
            real_time_factor_at_600mhz: s.real_time_factor(cfg.frequency_hz),
            sim_wall_seconds: wall,
            sim_cycles_per_second: s.cycles as f64 / wall,
            off_chip_bytes: s.traffic.search_bytes(),
        };
        println!(
            "{:<16} cycles {:>8}  cyc/frame {:>8.1}  RTF {:>7.1}x  sim {:>7.3} ms",
            row.design,
            row.cycles,
            row.cycles_per_frame,
            row.real_time_factor_at_600mhz,
            wall * 1e3,
        );
        if design == DesignPoint::Base {
            let pairs: [(&str, u64, u64); 14] = [
                ("cycles", PRE_PORT.cycles, s.cycles),
                ("tokens_fetched", PRE_PORT.tokens_fetched, s.tokens_fetched),
                ("tokens_pruned", PRE_PORT.tokens_pruned, s.tokens_pruned),
                ("tokens_created", PRE_PORT.tokens_created, s.tokens_created),
                ("arcs_processed", PRE_PORT.arcs_processed, s.arcs_processed),
                (
                    "eps_arcs_processed",
                    PRE_PORT.eps_arcs_processed,
                    s.eps_arcs_processed,
                ),
                ("hash_requests", PRE_PORT.hash_requests, s.hash.requests),
                ("hash_cycles", PRE_PORT.hash_cycles, s.hash.cycles),
                ("traffic_states", PRE_PORT.traffic_states, s.traffic.states),
                ("traffic_arcs", PRE_PORT.traffic_arcs, s.traffic.arcs),
                ("traffic_tokens", PRE_PORT.traffic_tokens, s.traffic.tokens),
                ("mem_requests", PRE_PORT.mem_requests, s.mem_requests),
                ("fp_adds", PRE_PORT.fp_adds, s.fp_adds),
                ("fp_compares", PRE_PORT.fp_compares, s.fp_compares),
            ];
            for (name, pre, measured) in pairs {
                let delta = measured as i64 - pre as i64;
                regression_ok &= delta == 0;
                base_deltas.push(StatDelta {
                    counter: name.to_owned(),
                    pre_port: pre,
                    measured,
                    delta,
                });
            }
        }
        designs.push(row);
    }
    println!(
        "base-design counters vs pre-port simulator: {}",
        if regression_ok {
            "all deltas 0 (exact)"
        } else {
            "REGRESSION — see base_deltas_vs_pre_port"
        }
    );

    let report = Report {
        benchmark: "accel_simulator_token_table_port".to_owned(),
        states: STATES,
        frames: FRAMES,
        seed: SEED,
        beam: BEAM,
        designs,
        base_deltas_vs_pre_port: base_deltas,
        stats_regression_ok: regression_ok,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "accel", &json);
    println!("[spliced \"accel\" into {}]", path.display());
    assert!(
        report.stats_regression_ok,
        "base-design hardware counters drifted from the pre-port simulator"
    );
}
