//! Cross-session batched scoring benchmark: what the gather window buys.
//!
//! Measures aggregate scored-frames-per-second for N concurrent sessions
//! on an MLP acoustic runtime, batched (all sessions share the runtime's
//! gather window, one block forward pass per window) versus per-session
//! (`batched_scoring(false)`, every frame its own forward pass). Both
//! modes run on the **same runtime** — same weights, same graph — and are
//! driven identically: one thread, round-robin, one 160-sample packet per
//! session per turn, so the delta isolates the batched block pass from
//! scheduling effects.
//!
//! The win mechanism is what batching uniquely provides: independent
//! rows. A lone frame's dot products are serialized by the float-add
//! dependency chain (the fold order is pinned for byte-identity, so it
//! cannot be vectorized); the block pass interleaves four rows'
//! accumulator chains per weight row — and streams each weight row of
//! the ~1.2 MB matrix once per window instead of once per row — the
//! same batching economics the paper's accelerator exploits in its DNN
//! pipeline, applied across sessions instead of across time.
//!
//! Every finalized transcript in both modes is checked byte-for-byte
//! (words + cost bits) against the runtime's batch `recognize` path;
//! `equivalent` reports the conjunction.
//!
//! Results are spliced into `BENCH_decode.json` (section `"batch"`), with
//! `batched_speedup_at_8_sessions` as the acceptance headline (recorded
//! as 0.0 / failed when the `--sessions` list never reaches 8 — an
//! unmeasured point is not a pass).
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_batch [-- --sessions 1,2,4,8,16,32,64]
//! ```

use asr_repro::runtime::{
    AsrRuntime, BatchScoringConfig, RuntimeConfig, Session, SessionOptions, Transcript,
};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Samples per push: one 10 ms hop at 16 kHz, the paper's frame cadence.
const PACKET: usize = 160;
/// Hidden layers of the benchmark MLP. Sized so acoustic scoring
/// (~290k MACs/frame, ~1.2 MB of weights) dominates the frame loop;
/// the demo graph keeps the search side cheap so the measurement
/// isolates the block pass.
const HIDDEN: [usize; 2] = [512, 512];
const MLP_SEED: u64 = 0xBA7C;
/// Gather window capacity — covers the widest sweep point; the window's
/// self-sizing flush target keeps smaller session counts from waiting.
const WINDOW: usize = 64;
/// Timed walls per sweep point, interleaved batched/per-session; best
/// wall wins on each side.
const WALLS: usize = 5;

#[derive(Debug, Clone, Serialize)]
struct Sample {
    seconds: f64,
    frames_per_second: f64,
}

/// One point of the sweep: `sessions` concurrent sessions, batched vs
/// per-session scoring.
#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    sessions: usize,
    /// Sessions share the gather window; flushes run one block forward
    /// pass over every pending row.
    batched: Sample,
    /// `batched_scoring(false)`: each session scores its own frames
    /// inline, one forward pass per frame.
    per_session: Sample,
    /// batched over per_session throughput.
    batched_vs_per_session_speedup: f64,
    /// Every transcript in both modes matched the batch `recognize`
    /// reference byte-for-byte (words + cost bits).
    equivalent: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    hidden_layers: Vec<usize>,
    window_rows: usize,
    frames_per_utterance: usize,
    packet_samples: usize,
    sweep: Vec<SweepPoint>,
    /// The acceptance headline: batched over per-session throughput at
    /// the 8-session point. 0.0 when the `--sessions` list never
    /// measured 8 sessions.
    batched_speedup_at_8_sessions: f64,
    /// An 8+-session point was measured AND batched scoring beat the
    /// per-session path on every such point. `false` when unmeasured.
    batched_wins_at_8_plus_sessions: bool,
    /// Widest batch the service actually assembled across the run.
    widest_batch: usize,
}

fn check(t: &Transcript, expected: &Transcript, equivalent: &mut bool) {
    if t.words != expected.words || t.cost.to_bits() != expected.cost.to_bits() {
        *equivalent = false;
    }
}

/// One wall: `sessions` sessions opened in `batched` mode, driven
/// round-robin on this thread one packet each per turn, then finalized.
/// Returns the wall seconds; every transcript is checked against
/// `expected`.
fn one_wall(
    runtime: &AsrRuntime,
    audio: &[f32],
    sessions: usize,
    batched: bool,
    expected: &Transcript,
    equivalent: &mut bool,
) -> f64 {
    let opts = SessionOptions::new().batched_scoring(batched);
    let chunks: Vec<&[f32]> = audio.chunks(PACKET).collect();
    let start = Instant::now();
    let mut open: Vec<Session> = (0..sessions)
        .map(|_| runtime.open_session_with(opts.clone()))
        .collect();
    for piece in &chunks {
        for session in &mut open {
            session.push_samples(piece);
        }
    }
    for session in open {
        check(&session.finalize(), expected, equivalent);
    }
    start.elapsed().as_secs_f64()
}

fn sweep_point(
    runtime: &AsrRuntime,
    audio: &[f32],
    sessions: usize,
    frames: usize,
    expected: &Transcript,
) -> SweepPoint {
    let mut equivalent = true;
    // Warm both modes (slots, ready queues, pooled front-ends, decode
    // scratches at this concurrency), then interleave the timed walls so
    // machine drift cancels out of the comparison.
    one_wall(runtime, audio, sessions, true, expected, &mut equivalent);
    one_wall(runtime, audio, sessions, false, expected, &mut equivalent);
    let (mut batched_best, mut per_session_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..WALLS {
        batched_best = batched_best.min(one_wall(
            runtime,
            audio,
            sessions,
            true,
            expected,
            &mut equivalent,
        ));
        per_session_best = per_session_best.min(one_wall(
            runtime,
            audio,
            sessions,
            false,
            expected,
            &mut equivalent,
        ));
    }

    let total_frames = (sessions * frames) as f64;
    let batched = Sample {
        seconds: batched_best,
        frames_per_second: total_frames / batched_best,
    };
    let per_session = Sample {
        seconds: per_session_best,
        frames_per_second: total_frames / per_session_best,
    };
    SweepPoint {
        sessions,
        batched_vs_per_session_speedup: batched.frames_per_second / per_session.frames_per_second,
        batched,
        per_session,
        equivalent,
    }
}

/// `--sessions 1,2,4,8` override for the sweep's concurrency levels.
fn sweep_sessions_from_args() -> Vec<usize> {
    let default = vec![1, 2, 4, 8, 16, 32, 64];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--sessions" {
            if let Some(list) = args.next() {
                let parsed: Vec<usize> = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&k| k > 0)
                    .collect();
                if !parsed.is_empty() {
                    return parsed;
                }
            }
        }
    }
    default
}

fn main() {
    asr_bench::banner(
        "bench_batch",
        "cross-session batched acoustic scoring vs per-session forward passes",
        "Section IV-B (DNN pipeline batching economics), serving twin",
    );
    let runtime = AsrRuntime::demo_with(
        RuntimeConfig::new()
            .lanes(1)
            .mlp_acoustic(&HIDDEN, MLP_SEED)
            .batch_scoring(BatchScoringConfig::new(WINDOW)),
    )
    .expect("demo runtime");
    let audio = runtime
        .render_words(&["call", "mom", "play", "music"])
        .expect("render demo utterance");
    let frames = runtime.score(&audio).num_frames();
    // The MLP's weights are random, so the *content* of the transcript is
    // noise; what the benchmark pins is that every session in both modes
    // reproduces this reference byte-for-byte.
    let expected = runtime.recognize(&audio);
    assert!(
        expected.cost.is_finite(),
        "reference decode must survive the beam"
    );

    let sweep_sessions = sweep_sessions_from_args();
    println!(
        "\nMLP {HIDDEN:?}, window {WINDOW} rows, {frames} frames/utterance, \
         sweep {sweep_sessions:?} sessions, {WALLS} walls/point"
    );
    let mut sweep = Vec::new();
    for &sessions in &sweep_sessions {
        let point = sweep_point(&runtime, &audio.samples, sessions, frames, &expected);
        println!(
            "  {sessions:>2} session(s): batched {:>9.1} fps | per-session {:>9.1} fps \
             | batched is {:.2}x | equivalent: {}",
            point.batched.frames_per_second,
            point.per_session.frames_per_second,
            point.batched_vs_per_session_speedup,
            point.equivalent,
        );
        sweep.push(point);
    }

    // The acceptance claim requires a *measured* 8-session point: a
    // `--sessions` list without one (e.g. a quick smoke run) must not
    // splice a vacuously-true acceptance into the artifact.
    let batched_speedup_at_8_sessions = sweep
        .iter()
        .find(|p| p.sessions == 8)
        .map_or(0.0, |p| p.batched_vs_per_session_speedup);
    let eight_plus: Vec<&SweepPoint> = sweep.iter().filter(|p| p.sessions >= 8).collect();
    let batched_wins_at_8_plus_sessions = !eight_plus.is_empty()
        && eight_plus
            .iter()
            .all(|p| p.batched_vs_per_session_speedup >= 1.0);
    if eight_plus.is_empty() {
        println!(
            "NOTE: no sweep point ran 8+ sessions; the acceptance flag is \
             recorded as false (unmeasured), not as a pass"
        );
    } else if !batched_wins_at_8_plus_sessions {
        println!(
            "WARNING: batched scoring did not beat per-session forward passes \
             at 8+ concurrent sessions on this machine"
        );
    }

    let widest_batch = runtime.stats().batch.map_or(0, |stats| stats.widest_batch);
    let report = Report {
        benchmark: "batched_scoring".to_owned(),
        unit: "frames_per_second".to_owned(),
        hidden_layers: HIDDEN.to_vec(),
        window_rows: WINDOW,
        frames_per_utterance: frames,
        packet_samples: PACKET,
        sweep,
        batched_speedup_at_8_sessions,
        batched_wins_at_8_plus_sessions,
        widest_batch,
    };
    println!(
        "widest batch assembled: {widest_batch} rows | speedup at 8 sessions: {:.2}x",
        report.batched_speedup_at_8_sessions
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "batch", &json);
    println!("[spliced section \"batch\" into {}]", path.display());
}
