//! Decode-throughput benchmark: the token-table engine vs the retained
//! `HashMap` reference, across synthetic WFST sizes.
//!
//! Measures frames decoded per second for the reference decoder, the
//! token-table decoder (with and without scratch reuse), and the sharded
//! parallel decoder on 2k/50k/200k-state Kaldi-statistics graphs, and
//! writes the trajectory to `BENCH_decode.json` in the repository root.
//! The headline acceptance number is the 50k-state, beam-8 speedup.
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_decode
//! ```

use asr_acoustic::scores::AcousticTable;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::reference::ReferenceDecoder;
use asr_decoder::search::{DecodeOptions, DecodeScratch, ViterbiDecoder};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

const FRAMES: usize = 50;
const BEAM: f32 = 8.0;
const PARALLEL_THREADS: usize = 4;

#[derive(Debug, Clone, Serialize)]
struct Sample {
    /// Decode wall time for the whole utterance, seconds.
    seconds: f64,
    /// Frames decoded per second.
    frames_per_second: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ConfigResult {
    states: usize,
    arcs: usize,
    frames: usize,
    beam: f32,
    /// Mean arcs traversed per frame (workload size proxy).
    arcs_per_frame: f64,
    reference: Sample,
    token_table: Sample,
    token_table_reused_scratch: Sample,
    parallel: Sample,
    /// token-table (reused scratch) throughput over reference throughput.
    speedup: f64,
    /// Decode results agree with the reference byte-for-byte.
    equivalent: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    beam: f32,
    frames: usize,
    parallel_threads: usize,
    /// One point per graph size — the throughput trajectory.
    trajectory: Vec<ConfigResult>,
    /// The acceptance headline: 50k states, beam 8.
    headline_speedup_50k: f64,
}

fn time_decode<R>(reps: usize, mut run: impl FnMut() -> R) -> (Sample, R) {
    // One untimed warm-up, then the best of `reps` timed runs.
    let mut result = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (
        Sample {
            seconds: best,
            frames_per_second: FRAMES as f64 / best,
        },
        result,
    )
}

fn bench_config(states: usize) -> ConfigResult {
    let wfst: Wfst =
        SynthWfst::generate(&SynthConfig::with_states(states).with_seed(0xBEA7)).unwrap();
    let scores = AcousticTable::random(FRAMES, wfst.num_phones() as usize, (0.5, 4.0), 0xACC0);
    let opts = DecodeOptions::with_beam(BEAM);
    let reps = if states >= 100_000 { 3 } else { 5 };

    let reference_decoder = ReferenceDecoder::new(opts.clone());
    let (reference, ref_result) = time_decode(reps, || reference_decoder.decode(&wfst, &scores));

    let table_decoder = ViterbiDecoder::new(opts.clone());
    let (token_table, table_result) = time_decode(reps, || table_decoder.decode(&wfst, &scores));

    let mut scratch = DecodeScratch::new(wfst.num_states());
    let (token_table_reused_scratch, reused_result) = time_decode(reps, || {
        table_decoder.decode_with(&mut scratch, &wfst, &scores)
    });

    let parallel_decoder = ParallelDecoder::new(opts, PARALLEL_THREADS);
    let (parallel, par_result) = time_decode(reps, || parallel_decoder.decode(&wfst, &scores));

    let equivalent = [&table_result, &reused_result, &par_result]
        .iter()
        .all(|r| {
            r.cost.to_bits() == ref_result.cost.to_bits()
                && r.words == ref_result.words
                && r.best_state == ref_result.best_state
        });

    ConfigResult {
        states,
        arcs: wfst.num_arcs(),
        frames: FRAMES,
        beam: BEAM,
        arcs_per_frame: ref_result.stats.mean_arcs_per_frame(),
        speedup: token_table_reused_scratch.frames_per_second / reference.frames_per_second,
        reference,
        token_table,
        token_table_reused_scratch,
        parallel,
        equivalent,
    }
}

fn main() {
    asr_bench::banner(
        "bench_decode",
        "decode throughput: token-table engine vs HashMap reference",
        "Section III (token hash datapath), software twin",
    );
    let mut trajectory = Vec::new();
    for states in [2_000usize, 50_000, 200_000] {
        let result = bench_config(states);
        println!(
            "{:>8} states | ref {:>8.1} fps | table {:>8.1} fps | reused {:>8.1} fps | par{} {:>8.1} fps | speedup {:>5.2}x | equivalent: {}",
            result.states,
            result.reference.frames_per_second,
            result.token_table.frames_per_second,
            result.token_table_reused_scratch.frames_per_second,
            PARALLEL_THREADS,
            result.parallel.frames_per_second,
            result.speedup,
            result.equivalent,
        );
        trajectory.push(result);
    }
    let headline = trajectory
        .iter()
        .find(|r| r.states == 50_000)
        .map(|r| r.speedup)
        .unwrap_or(0.0);
    let report = Report {
        benchmark: "decode_throughput".to_owned(),
        unit: "frames_per_second".to_owned(),
        beam: BEAM,
        frames: FRAMES,
        parallel_threads: PARALLEL_THREADS,
        trajectory,
        headline_speedup_50k: headline,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    // Rewriting the file must not drop the other binaries' spliced
    // sections (bench_serving, bench_frontend, bench_accel, bench_batch,
    // bench_load, bench_store).
    let carried: Vec<(&str, Option<String>)> =
        ["serving", "frontend", "accel", "batch", "load", "store"]
            .into_iter()
            .map(|key| (key, asr_bench::extract_json_section(&path, key)))
            .collect();
    std::fs::write(&path, json).expect("write BENCH_decode.json");
    for (key, section) in carried {
        if let Some(section) = section {
            asr_bench::splice_json_section(&path, key, &section);
        }
    }
    println!("\nheadline speedup at 50k states, beam {BEAM}: {headline:.2}x");
    println!("[wrote {}]", path.display());
}
