//! Front-end benchmark: the streaming MFCC/scorer path vs the batch path.
//!
//! The streaming refactor's acceptance bar: pushing raw audio through
//! [`OnlineScorer`] in microphone-sized (160-sample) packets — streaming
//! MFCC with the Δ/ΔΔ lookahead, then per-frame template scoring — must
//! cost no more than **1.25x** the wall-clock of batch-scoring the same
//! waveform ([`TemplateScorer::score_waveform`]), while producing
//! bit-identical cost rows.
//!
//! Results are spliced into `BENCH_decode.json` (section `"frontend"`)
//! next to the decode and serving numbers.
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_frontend
//! ```
//!
//! [`OnlineScorer`]: asr_acoustic::online::OnlineScorer
//! [`TemplateScorer::score_waveform`]: asr_acoustic::template::TemplateScorer::score_waveform

use asr_acoustic::online::OnlineScorer;
use asr_acoustic::signal::{render_phones, SignalConfig};
use asr_acoustic::template::TemplateScorer;
use asr_wfst::PhoneId;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Phones in the scored inventory (demo-lexicon scale).
const NUM_PHONES: u32 = 16;
/// Phone tokens in the utterance; at 6 frames each this is ~6 s of audio.
const PHONE_TOKENS: usize = 100;
const FRAMES_PER_PHONE: usize = 6;
/// Samples per streamed packet (one 10 ms frame at 16 kHz).
const PACKET: usize = 160;
const REPS: usize = 7;

#[derive(Debug, Clone, Serialize)]
struct Sample {
    seconds: f64,
    samples_per_second: f64,
    frames_per_second: f64,
    /// Fraction of real time spent (decode seconds per speech second).
    real_time_factor: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    num_phones: u32,
    frames: usize,
    samples: usize,
    audio_seconds: f64,
    packet_samples: usize,
    /// Whole-utterance `score_waveform` (batch MFCC + batch scoring).
    batch: Sample,
    /// 160-sample packets through `OnlineScorer`, rows popped eagerly.
    online: Sample,
    /// online.seconds / batch.seconds — the acceptance bar is <= 1.25.
    online_over_batch_time: f64,
    /// Online rows were bit-identical to the batch table.
    equivalent: bool,
}

fn time_runs(frames: usize, samples: usize, mut run: impl FnMut()) -> Sample {
    run(); // untimed warm-up
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let audio_seconds = frames as f64 * 0.01;
    Sample {
        seconds: best,
        samples_per_second: samples as f64 / best,
        frames_per_second: frames as f64 / best,
        real_time_factor: best / audio_seconds,
    }
}

fn main() {
    asr_bench::banner(
        "bench_frontend",
        "streaming vs batch acoustic front-end (MFCC + scorer)",
        "Section II front-end / Section VI ALB fill, software streaming twin",
    );
    let signal = SignalConfig::default();
    let scorer = TemplateScorer::new(NUM_PHONES, &signal, 0.05);
    let phones: Vec<PhoneId> = (0..PHONE_TOKENS)
        .map(|i| PhoneId(1 + (i as u32 % NUM_PHONES)))
        .collect();
    let audio = render_phones(&phones, FRAMES_PER_PHONE, &signal);
    let frames = audio.len() / PACKET;

    // Correctness first: online rows must be bit-identical to the batch
    // table before their timings are comparable.
    let table = scorer.score_waveform(&audio);
    let mut online = OnlineScorer::new(*scorer.mfcc_config(), &scorer);
    let mut row = vec![0.0f32; online.row_len()];
    let mut equivalent = table.num_frames() == frames;
    for packet in audio.chunks(PACKET) {
        online.push_samples(packet);
    }
    online.finish();
    for frame in 0..table.num_frames() {
        if !online.pop_row_into(&mut row) {
            equivalent = false;
            break;
        }
        equivalent &= row
            .iter()
            .zip(table.frame_row(frame))
            .all(|(a, b)| a.to_bits() == b.to_bits());
    }

    let batch = time_runs(frames, audio.len(), || {
        let table = scorer.score_waveform(&audio);
        assert_eq!(table.num_frames(), frames);
    });

    let online_sample = time_runs(frames, audio.len(), || {
        online.reset();
        let mut popped = 0usize;
        for packet in audio.chunks(PACKET) {
            online.push_samples(packet);
            while online.pop_row_into(&mut row) {
                popped += 1;
            }
        }
        online.finish();
        while online.pop_row_into(&mut row) {
            popped += 1;
        }
        assert_eq!(popped, frames);
    });

    let report = Report {
        benchmark: "frontend_throughput".to_owned(),
        unit: "samples_per_second".to_owned(),
        num_phones: NUM_PHONES,
        frames,
        samples: audio.len(),
        audio_seconds: frames as f64 * 0.01,
        packet_samples: PACKET,
        online_over_batch_time: online_sample.seconds / batch.seconds,
        batch,
        online: online_sample,
        equivalent,
    };

    println!(
        "{} phones, {} frames ({:.1} s of audio), {PACKET}-sample packets\n\
         batch  score_waveform   {:>12.0} samples/s  ({:>8.1} frames/s, RTF {:.4})\n\
         online push+pop packets {:>12.0} samples/s  ({:>8.1} frames/s, RTF {:.4})\n\
         online/batch time: {:.3}x (bar: 1.25x)   rows bit-identical: {}",
        NUM_PHONES,
        report.frames,
        report.audio_seconds,
        report.batch.samples_per_second,
        report.batch.frames_per_second,
        report.batch.real_time_factor,
        report.online.samples_per_second,
        report.online.frames_per_second,
        report.online.real_time_factor,
        report.online_over_batch_time,
        report.equivalent,
    );
    if report.online_over_batch_time > 1.25 {
        println!("WARNING: online front-end exceeded 1.25x of batch time on this machine");
    }
    if !report.equivalent {
        println!("WARNING: online rows diverged from the batch table");
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "frontend", &json);
    println!("[spliced section \"frontend\" into {}]", path.display());
}
