//! Open-loop overload harness: what the QoS layer buys past saturation.
//!
//! An open-loop generator offers Poisson session arrivals (seeded, so
//! both sides replay the *same* schedule) at multiples of the measured
//! service capacity to two runtimes over the same 20k-state synthetic
//! graph:
//!
//! * **fixed** — today's runtime: every arrival is admitted
//!   ([`AsrRuntime::open_session`]), every session decodes at the full
//!   beam. Past saturation the backlog, and with it the end-to-end
//!   latency, grows without bound.
//! * **qos** — the same runtime with a [`QosPolicy`]: admission control
//!   sheds arrivals past the session limit
//!   ([`AsrRuntime::try_open_session`]), and pressure tiers narrow the
//!   beam at frame boundaries while the runtime is saturated.
//!
//! End-to-end latency is measured from the *scheduled arrival time*
//! (queueing included — this is the open-loop point), so an unbounded
//! backlog shows up as a diverging p99 instead of being hidden by
//! closed-loop self-throttling. Results are spliced into
//! `BENCH_decode.json` (section `"load"`); the acceptance flag
//! `bounded_p99_under_overload` requires a measured 2x point where the
//! fixed runtime's p99 is at least [`DIVERGENCE_FACTOR`]x the QoS
//! runtime's.
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_load \
//!     [-- --arrivals 150 --loads 1,2 --seed 7]
//! ```
//!
//! [`AsrRuntime::open_session`]: asr_repro::runtime::AsrRuntime::open_session
//! [`AsrRuntime::try_open_session`]: asr_repro::runtime::AsrRuntime::try_open_session
//! [`QosPolicy`]: asr_repro::runtime::QosPolicy

use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::DecodeOptions;
use asr_repro::runtime::{AsrRuntime, PipelineError, QosPolicy, RuntimeConfig, Transcript};
use asr_wfst::lexicon::demo_lexicon;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

const STATES: usize = 20_000;
const BEAM: f32 = 8.0;
/// Pre-rendered utterances the arrival schedule draws from.
const UTTERANCES: usize = 8;
/// Utterance lengths, in 10 ms frames (0.3 s – 0.8 s of audio).
const FRAME_RANGE: (usize, usize) = (30, 80);
/// Client worker threads draining the arrival queue on each side.
const WORKERS: usize = 4;
/// The QoS policy's admission limit. On the single-core CI box extra
/// concurrency adds no capacity, so capping concurrent sessions below
/// the worker count sheds excess load without shrinking throughput.
const MAX_SESSIONS: usize = 2;
/// Acceptance bar: at 2x saturation the fixed runtime's p99 must be at
/// least this many times the QoS runtime's.
const DIVERGENCE_FACTOR: f64 = 3.0;

/// The degradation policy the QoS side runs: tiers keyed to session
/// saturation (1 of 2 slots busy -> 0.5, both busy -> 1.0), beams
/// narrowing below the fixed side's 8.0, floored well above zero. The
/// tiers are deliberately mild — they shave service time without
/// absorbing a 2x overload on their own, so the artifact shows *both*
/// mechanisms: degradation trimming the beam AND admission control
/// shedding the excess.
fn load_policy() -> QosPolicy {
    QosPolicy::new()
        .tier(0.45, 7.0, Some(2048))
        .tier(0.95, 6.0, Some(512))
        .floors(4.0, 128)
        .max_sessions(MAX_SESSIONS)
}

#[derive(Debug, Clone, Serialize)]
struct SideStats {
    /// Sessions admitted and finalized.
    completed: usize,
    /// Arrivals refused by admission control (always 0 on the fixed
    /// side, which cannot shed).
    shed: usize,
    /// End-to-end latency percentiles over completed sessions, from
    /// scheduled arrival to finalized transcript, queueing included.
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    /// Mean decode-time / audio-duration over completed sessions
    /// (service only, no queueing).
    mean_rtf: f64,
    /// Highest degradation tier the runtime reached (0 = never left the
    /// base beam; always 0 on the fixed side).
    peak_tier: usize,
    /// Completed transcripts that differ from the full-beam reference —
    /// the accuracy price of degradation.
    degraded_transcripts: usize,
    /// Worker threads that panicked (must be 0 everywhere).
    panics: usize,
}

#[derive(Debug, Clone, Serialize)]
struct LoadPoint {
    /// Offered load as a multiple of the calibrated service capacity.
    load_multiplier: f64,
    arrivals: usize,
    fixed: SideStats,
    qos: SideStats,
    /// fixed.p99_ms over qos.p99_ms — the divergence headline.
    p99_ratio_fixed_over_qos: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    states: usize,
    beam: f32,
    utterances: usize,
    frame_range: (usize, usize),
    workers: usize,
    qos_max_sessions: usize,
    qos_tier_beams: Vec<f32>,
    seed: u64,
    /// Calibrated mean service time per utterance at the full beam —
    /// the 1x capacity the load multipliers scale.
    service_ms_per_utterance: f64,
    points: Vec<LoadPoint>,
    /// A 2x+ point was measured AND the fixed runtime's p99 diverged to
    /// at least `DIVERGENCE_FACTOR` times the QoS runtime's there.
    /// `false` when no 2x+ point ran (unmeasured is not a pass).
    bounded_p99_under_overload: bool,
    /// No worker or dispatcher thread panicked anywhere in the sweep.
    zero_panics: bool,
}

/// One scheduled session arrival.
#[derive(Debug, Clone, Copy)]
struct Job {
    utterance: usize,
    /// Scheduled arrival, as an offset from the side's epoch.
    arrival: Duration,
}

/// The open-loop arrival queue: the dispatcher pushes jobs at their
/// scheduled times, `WORKERS` clients drain them.
#[derive(Debug, Default)]
struct JobQueue {
    jobs: VecDeque<Job>,
    done: bool,
}

/// One completed session's measurements.
#[derive(Debug, Clone, Copy)]
struct Completion {
    latency: Duration,
    service: Duration,
    utterance: usize,
    matched_reference: bool,
}

/// Draws a Poisson arrival schedule: exponential interarrivals at
/// `rate_per_sec`, utterances drawn uniformly from the pool. Seeded, so
/// the fixed and QoS sides replay the identical schedule.
fn poisson_schedule(arrivals: usize, rate_per_sec: f64, seed: u64) -> Vec<Job> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut at = Duration::ZERO;
    (0..arrivals)
        .map(|_| {
            let u: f64 = rng.gen();
            let interarrival = -(1.0 - u).ln() / rate_per_sec;
            at += Duration::from_secs_f64(interarrival);
            Job {
                utterance: rng.gen_range(0..UTTERANCES),
                arrival: at,
            }
        })
        .collect()
}

/// Runs one side of one load point: dispatches `schedule` open-loop
/// against `runtime`, returns the per-side stats. `shedding` selects
/// the fallible admission path.
fn run_side(
    runtime: &AsrRuntime,
    schedule: &[Job],
    tables: &[AcousticTable],
    references: &[Transcript],
    shedding: bool,
) -> SideStats {
    let queue = Arc::new((Mutex::new(JobQueue::default()), Condvar::new()));
    let completions: Mutex<Vec<Completion>> = Mutex::new(Vec::new());
    let shed: Mutex<usize> = Mutex::new(0);
    let mut panics = 0usize;
    let epoch = Instant::now();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..WORKERS {
            let queue = Arc::clone(&queue);
            let runtime = runtime.clone();
            let completions = &completions;
            let shed = &shed;
            handles.push(scope.spawn(move || {
                let (lock, cvar) = &*queue;
                loop {
                    let job = {
                        let mut q = lock.lock().unwrap();
                        loop {
                            if let Some(job) = q.jobs.pop_front() {
                                break Some(job);
                            }
                            if q.done {
                                break None;
                            }
                            q = cvar.wait(q).unwrap();
                        }
                    };
                    let Some(job) = job else { break };
                    let session = if shedding {
                        match runtime.try_open_session() {
                            Ok(session) => Some(session),
                            Err(PipelineError::Overloaded { .. }) => {
                                *shed.lock().unwrap() += 1;
                                None
                            }
                            Err(other) => panic!("unexpected admission error: {other}"),
                        }
                    } else {
                        Some(runtime.open_session())
                    };
                    let Some(mut session) = session else { continue };
                    let service_start = Instant::now();
                    session.push_frames(&tables[job.utterance]);
                    let transcript = session.finalize();
                    let now = Instant::now();
                    let reference = &references[job.utterance];
                    completions.lock().unwrap().push(Completion {
                        latency: now.saturating_duration_since(epoch + job.arrival),
                        service: now - service_start,
                        utterance: job.utterance,
                        matched_reference: transcript.words == reference.words
                            && transcript.cost.to_bits() == reference.cost.to_bits(),
                    });
                }
            }));
        }

        // The dispatcher: release each job at its scheduled time, no
        // matter how far behind the servers fall (open loop).
        let dispatcher = scope.spawn(|| {
            let (lock, cvar) = &*queue;
            for job in schedule {
                let target = epoch + job.arrival;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                lock.lock().unwrap().jobs.push_back(*job);
                cvar.notify_one();
            }
            lock.lock().unwrap().done = true;
            cvar.notify_all();
        });

        if dispatcher.join().is_err() {
            panics += 1;
        }
        for handle in handles {
            if handle.join().is_err() {
                panics += 1;
            }
        }
    });

    let mut completions = completions.into_inner().unwrap();
    completions.sort_by_key(|c| c.latency);
    let percentile = |q: f64| -> f64 {
        if completions.is_empty() {
            return 0.0;
        }
        let idx = ((completions.len() - 1) as f64 * q).round() as usize;
        completions[idx].latency.as_secs_f64() * 1e3
    };
    let mean_rtf = if completions.is_empty() {
        0.0
    } else {
        completions
            .iter()
            .map(|c| {
                let audio_secs = tables[c.utterance].num_frames() as f64 * 0.01;
                c.service.as_secs_f64() / audio_secs
            })
            .sum::<f64>()
            / completions.len() as f64
    };
    SideStats {
        completed: completions.len(),
        shed: shed.into_inner().unwrap(),
        p50_ms: percentile(0.50),
        p99_ms: percentile(0.99),
        max_ms: percentile(1.0),
        mean_rtf,
        peak_tier: runtime.stats().peak_tier,
        degraded_transcripts: completions.iter().filter(|c| !c.matched_reference).count(),
        panics,
    }
}

/// `--arrivals N`, `--loads 1,2`, `--seed N` overrides, in
/// bench_serving's flag style.
fn args() -> (usize, Vec<f64>, u64) {
    let (mut arrivals, mut loads, mut seed) = (150usize, vec![1.0, 2.0], 7u64);
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--arrivals" => {
                if let Some(n) = argv.next().and_then(|s| s.trim().parse().ok()) {
                    arrivals = n;
                }
            }
            "--loads" => {
                if let Some(list) = argv.next() {
                    let parsed: Vec<f64> = list
                        .split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .filter(|&x| x > 0.0)
                        .collect();
                    if !parsed.is_empty() {
                        loads = parsed;
                    }
                }
            }
            "--seed" => {
                if let Some(n) = argv.next().and_then(|s| s.trim().parse().ok()) {
                    seed = n;
                }
            }
            _ => {}
        }
    }
    (arrivals, loads, seed)
}

fn main() {
    asr_bench::banner(
        "bench_load",
        "open-loop Poisson overload: fixed-beam vs QoS-degrading runtime",
        "beam/cycles/accuracy trade-off (Fig. 8) as a serving-time knob",
    );
    let (arrivals, loads, seed) = args();

    let wfst: Wfst = SynthWfst::generate(&SynthConfig::with_states(STATES).with_seed(0xBEA7))
        .expect("synthetic graph");
    let phones = wfst.num_phones() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tables: Vec<AcousticTable> = (0..UTTERANCES)
        .map(|i| {
            let frames = rng.gen_range(FRAME_RANGE.0..=FRAME_RANGE.1);
            AcousticTable::random(frames, phones, (0.5, 4.0), seed ^ (i as u64) << 8)
        })
        .collect();

    let base = RuntimeConfig::new()
        .lanes(1)
        .decode_options(DecodeOptions::with_beam(BEAM));
    let make_fixed = || AsrRuntime::with_graph(wfst.clone(), demo_lexicon(), base.clone());
    let make_qos = || {
        AsrRuntime::with_graph(
            wfst.clone(),
            demo_lexicon(),
            base.clone().qos(load_policy()),
        )
    };

    // Full-beam reference transcripts: the accuracy yardstick for the
    // degraded decodes, and a warm-up for the calibration runtime.
    let calibration = make_fixed();
    let references: Vec<Transcript> = tables
        .iter()
        .map(|t| calibration.recognize_scores(t))
        .collect();

    // Calibrate 1x: mean sequential service time at the full beam. On
    // the single-core target extra workers add queueing, not capacity,
    // so the sequential rate IS the saturation rate.
    let calib_start = Instant::now();
    const CALIB_REPS: usize = 3;
    for _ in 0..CALIB_REPS {
        for table in &tables {
            calibration.recognize_scores(table);
        }
    }
    let service_secs = calib_start.elapsed().as_secs_f64() / (CALIB_REPS * UTTERANCES) as f64;
    let capacity_per_sec = 1.0 / service_secs;
    println!(
        "{STATES} states, beam {BEAM}, {UTTERANCES} utterances of {}..={} frames\n\
         calibrated service: {:.2} ms/utterance ({:.1} sessions/s at 1x)",
        FRAME_RANGE.0,
        FRAME_RANGE.1,
        service_secs * 1e3,
        capacity_per_sec,
    );

    let mut points = Vec::new();
    let mut zero_panics = true;
    for &load in &loads {
        let schedule = poisson_schedule(arrivals, load * capacity_per_sec, seed ^ 0x10AD);
        println!(
            "\nload {load:.1}x: {arrivals} Poisson arrivals at {:.1}/s, {WORKERS} workers",
            load * capacity_per_sec
        );

        let fixed_runtime = make_fixed();
        let fixed = run_side(&fixed_runtime, &schedule, &tables, &references, false);
        let qos_runtime = make_qos();
        let qos = run_side(&qos_runtime, &schedule, &tables, &references, true);
        zero_panics &= fixed.panics == 0 && qos.panics == 0;

        let ratio = if qos.p99_ms > 0.0 {
            fixed.p99_ms / qos.p99_ms
        } else {
            0.0
        };
        for (name, side) in [("fixed", &fixed), ("qos", &qos)] {
            println!(
                "  {name:<5} completed {:>4} | shed {:>4} | p50 {:>9.1} ms | p99 {:>9.1} ms \
                 | mean rtf {:.3} | peak tier {} | degraded {}",
                side.completed,
                side.shed,
                side.p50_ms,
                side.p99_ms,
                side.mean_rtf,
                side.peak_tier,
                side.degraded_transcripts,
            );
        }
        println!("  fixed p99 is {ratio:.2}x the qos p99");
        points.push(LoadPoint {
            load_multiplier: load,
            arrivals,
            fixed,
            qos,
            p99_ratio_fixed_over_qos: ratio,
        });
    }

    // The acceptance claim needs a *measured* overload point: a --loads
    // list without 2x must not splice a vacuously-true flag.
    let overload_points: Vec<&LoadPoint> =
        points.iter().filter(|p| p.load_multiplier >= 2.0).collect();
    let bounded_p99_under_overload = !overload_points.is_empty()
        && overload_points
            .iter()
            .all(|p| p.p99_ratio_fixed_over_qos >= DIVERGENCE_FACTOR);
    if overload_points.is_empty() {
        println!(
            "\nNOTE: no load point reached 2x; bounded_p99_under_overload is \
             recorded as false (unmeasured), not as a pass"
        );
    } else if !bounded_p99_under_overload {
        println!(
            "\nWARNING: the fixed runtime's p99 did not diverge to \
             {DIVERGENCE_FACTOR}x the QoS p99 at overload on this machine"
        );
    }

    let report = Report {
        benchmark: "load_overload".to_owned(),
        unit: "milliseconds_end_to_end".to_owned(),
        states: STATES,
        beam: BEAM,
        utterances: UTTERANCES,
        frame_range: FRAME_RANGE,
        workers: WORKERS,
        qos_max_sessions: MAX_SESSIONS,
        qos_tier_beams: load_policy().tiers().iter().map(|t| t.beam()).collect(),
        seed,
        service_ms_per_utterance: service_secs * 1e3,
        points,
        bounded_p99_under_overload,
        zero_panics,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "load", &json);
    println!("[spliced section \"load\" into {}]", path.display());
}
