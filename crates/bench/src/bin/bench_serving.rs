//! Serving-path benchmark: what the persistent pools buy.
//!
//! Quantifies the two pooling layers of the serving pipeline on the
//! acceptance workload (50k-state Kaldi-statistics graph, beam 8):
//!
//! * **pool vs spawn** — the persistent-lane `ParallelDecoder` against
//!   its retired spawn-two-thread-rounds-per-frame strategy, and against
//!   the sequential `ViterbiDecoder` it must beat wall-clock;
//! * **pooled vs fresh scratch** — the facade's `ScratchPool` serving
//!   path against per-request scratch allocation;
//! * **streaming session** — rows through `StreamingDecode` with a
//!   pooled scratch, the facade's `open_session` shape;
//! * **concurrency sweep** (the `AsrRuntime` redesign's acceptance
//!   measurement) — aggregate throughput of 1/2/4/8/16/32 concurrent
//!   sessions decoding through **one shared lock-free work-stealing
//!   executor** versus the retired deployment of one private
//!   `WorkerPool` per decoder. Both sides run the same lane width, so
//!   the delta isolates executor sharing (fewer threads, one injector)
//!   from parallelization itself. The headline key
//!   `shared_speedup_monotone_in_sessions` records that the shared
//!   executor's advantage keeps climbing as sessions pile on;
//! * **lanes-vs-throughput curve** — aggregate shared-executor
//!   throughput at a fixed session count as the executor widens,
//!   the scaling shape of the lock-free deques themselves.
//!
//! Results are spliced into `BENCH_decode.json` (section `"serving"`)
//! next to the decode-throughput trajectory.
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_serving \
//!     [-- --sessions 1,2,4,8,16,32] [--lanes 1,2,4,8]
//! ```

use asr_acoustic::scores::AcousticTable;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::pool::{ScratchPool, WorkerPool};
use asr_decoder::search::{DecodeOptions, DecodeResult, ViterbiDecoder};
use asr_decoder::stream::StreamingDecode;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const STATES: usize = 50_000;
const FRAMES: usize = 50;
const BEAM: f32 = 8.0;
const REPS: usize = 7;
/// Lane width used on *both* sides of the concurrency sweep. Pinned (not
/// machine-sized) so the shared-vs-private comparison is the same
/// experiment everywhere: k private pools spawn `k * (SWEEP_LANES - 1)`
/// worker threads, the shared executor spawns `SWEEP_LANES - 1` total.
const SWEEP_LANES: usize = 8;
/// Timed walls per sweep point (best wall wins, like `time_decode`).
const SWEEP_WALLS: usize = 9;
/// Total decodes a single sweep wall issues, regardless of session
/// count: reps per session are `SWEEP_WALL_DECODES / sessions`, so every
/// sweep point times the same amount of work. Equal-work walls keep the
/// low-session points (which would otherwise finish in single-digit
/// milliseconds and drown in scheduler noise) as tight as the 16/32
/// points, and walls long enough to average over scheduler churn are
/// what the cross-point monotone-speedup comparison depends on.
const SWEEP_WALL_DECODES: usize = 256;
/// Slack factor for the monotone-speedup acceptance key: no sweep
/// point's shared-vs-private speedup may fall more than 5% below the
/// 1-session baseline point. The claim this encodes is that scaling the
/// session count never *erodes* the shared executor's advantage — the
/// failure mode a lock-protected executor exhibits (speedup collapsing
/// below 1.0 as submitters pile onto the mutex). Pointwise-adjacent
/// monotonicity is deliberately not required: on an oversubscribed
/// (e.g. single-core) box the mid-curve ratio wobbles ±10% run to run,
/// which says nothing about the executor.
const MONOTONE_TOLERANCE: f64 = 0.95;
/// Noise bound for the 4+-sessions win flag: a point counts as "shared
/// at or above private" down to a 3% measurement-noise shortfall.
const WIN_TOLERANCE: f64 = 0.97;

/// Reps per session thread for a sweep wall at `sessions` concurrency —
/// see [`SWEEP_WALL_DECODES`].
fn sweep_reps_for(sessions: usize) -> usize {
    (SWEEP_WALL_DECODES / sessions).max(1)
}

#[derive(Debug, Clone, Serialize)]
struct Sample {
    seconds: f64,
    frames_per_second: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    states: usize,
    frames: usize,
    beam: f32,
    /// Lanes the pooled/spawning parallel decoders use (the machine's
    /// available parallelism).
    parallel_lanes: usize,
    /// Sequential decoder, fresh scratch per request (the pre-pool
    /// serving path, and the wall-clock bar the pool must beat).
    sequential_fresh_scratch: Sample,
    /// Sequential decoder through the facade's `ScratchPool`.
    sequential_pooled_scratch: Sample,
    /// Streaming rows through `StreamingDecode` with a pooled scratch.
    session_pooled: Sample,
    /// Persistent-pool `ParallelDecoder::decode`.
    parallel_pool: Sample,
    /// Retired spawn-per-frame `ParallelDecoder::decode_spawning`.
    parallel_spawn: Sample,
    /// parallel_pool over parallel_spawn throughput.
    pool_vs_spawn_speedup: f64,
    /// sequential_pooled_scratch over sequential_fresh_scratch.
    pooled_vs_fresh_scratch_speedup: f64,
    /// parallel_pool over sequential_fresh_scratch — the acceptance
    /// headline: the persistent pool must beat the sequential decoder.
    parallel_vs_sequential_speedup: f64,
    /// All strategies agreed with the sequential result byte-for-byte.
    equivalent: bool,
    /// Lane width both sides of the concurrency sweep run at.
    sweep_lanes: usize,
    /// Aggregate throughput at 1/2/4/8/16/32 concurrent sessions: one
    /// shared work-stealing executor vs one private pool per decoder.
    concurrency_sweep: Vec<SweepPoint>,
    /// A 4+-session point was measured AND every such point had the
    /// shared executor at or above private-pool throughput (within
    /// [`WIN_TOLERANCE`] measurement noise) — the runtime-redesign
    /// acceptance bar. `false` when the `--sessions` list never reached
    /// 4 (unmeasured is not a pass).
    shared_wins_at_4_plus_sessions: bool,
    /// Scaling the session count never erodes the shared executor's
    /// advantage: every sweep point's shared-vs-private speedup stays at
    /// or above the 1-session baseline point's, within
    /// [`MONOTONE_TOLERANCE`] slack — the monotone floor a
    /// lock-protected executor fails as submitters pile onto its mutex.
    /// `false` when fewer than two sweep points were measured
    /// (unmeasured is not a pass).
    shared_speedup_monotone_in_sessions: bool,
    /// Session count the lanes-vs-throughput curve is measured at.
    curve_sessions: usize,
    /// Shared-executor aggregate throughput as the executor widens —
    /// the scaling shape of the lock-free deques under a fixed
    /// concurrent-session load.
    lanes_throughput_curve: Vec<LanesPoint>,
}

/// One point of the lanes-vs-throughput curve: `curve_sessions` threads
/// decoding through one shared executor of `lanes` lanes.
#[derive(Debug, Clone, Serialize)]
struct LanesPoint {
    lanes: usize,
    /// Decodes each session thread performs per timed wall.
    reps_per_session: usize,
    /// Aggregate frames/s across all sessions.
    shared_executor: Sample,
    /// Every decode matched the sequential decoder byte-for-byte.
    equivalent: bool,
}

/// One point of the concurrency sweep: `sessions` threads decoding the
/// acceptance workload concurrently, shared executor vs private pools.
#[derive(Debug, Clone, Serialize)]
struct SweepPoint {
    sessions: usize,
    /// Decodes each session thread performs per timed wall.
    reps_per_session: usize,
    /// One `WorkerPool`, every decode leases lanes from it
    /// (`ParallelDecoder::on_pool`); aggregate frames/s across all
    /// sessions.
    shared_executor: Sample,
    /// One private `WorkerPool` per decoder (the retired deployment);
    /// aggregate frames/s across all sessions.
    private_pools: Sample,
    /// Shared over private throughput, estimated as the **median of
    /// paired per-wall time ratios** (walls alternate shared/private, so
    /// each pair shares its machine conditions) — steadier than the
    /// ratio of the best-wall samples above, which is what the monotone
    /// acceptance key needs.
    shared_vs_private_speedup: f64,
    /// Both sides matched the sequential decoder byte-for-byte on every
    /// decode.
    equivalent: bool,
}

/// One wall: `sessions` threads each running `SWEEP_REPS` decodes
/// through `run(thread_index)`; equivalence is checked on every result.
fn one_wall(
    sessions: usize,
    reps: usize,
    run: &(impl Fn(usize) -> DecodeResult + Sync),
    expected: &DecodeResult,
    equivalent: &AtomicBool,
) -> f64 {
    let check = |r: &DecodeResult| {
        if r.cost.to_bits() != expected.cost.to_bits()
            || r.words != expected.words
            || r.best_state != expected.best_state
        {
            equivalent.store(false, Ordering::Relaxed);
        }
    };
    let start = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..sessions {
            let check = &check;
            scope.spawn(move || {
                for _ in 0..reps {
                    check(&run(i));
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

fn sweep_point(
    sessions: usize,
    wfst: &Wfst,
    scores: &AcousticTable,
    expected: &DecodeResult,
) -> SweepPoint {
    let opts = DecodeOptions::with_beam(BEAM);
    let equivalent = AtomicBool::new(true);
    let reps = sweep_reps_for(sessions);

    // Shared: ONE executor, one decoder whose concurrent decodes each
    // check out their own working set and lease lanes from it.
    let shared_pool = Arc::new(WorkerPool::new(SWEEP_LANES));
    let shared_decoder = ParallelDecoder::on_pool(opts.clone(), SWEEP_LANES, shared_pool);
    let run_shared = |_: usize| shared_decoder.decode(wfst, scores);

    // Private: the retired deployment — every session's decoder hoards
    // its own pool (and its own worker threads).
    let private_decoders: Vec<ParallelDecoder> = (0..sessions)
        .map(|_| ParallelDecoder::new(opts.clone(), SWEEP_LANES))
        .collect();
    let run_private = |i: usize| private_decoders[i].decode(wfst, scores);

    // Warm-up both sides (fills every scratch pool to peak concurrency),
    // then interleave the timed walls shared/private so slow machine
    // drift (frequency, background load) cancels out of the comparison.
    one_wall(sessions, 1, &run_shared, expected, &equivalent);
    one_wall(sessions, 1, &run_private, expected, &equivalent);
    let (mut shared_best, mut private_best) = (f64::INFINITY, f64::INFINITY);
    let mut wall_ratios = Vec::with_capacity(SWEEP_WALLS);
    for _ in 0..SWEEP_WALLS {
        let shared_wall = one_wall(sessions, reps, &run_shared, expected, &equivalent);
        let private_wall = one_wall(sessions, reps, &run_private, expected, &equivalent);
        shared_best = shared_best.min(shared_wall);
        private_best = private_best.min(private_wall);
        // Adjacent-in-time pair: whatever the machine was doing affected
        // both walls alike, so the ratio is far steadier than either
        // absolute time.
        wall_ratios.push(private_wall / shared_wall);
    }
    // Speedup = median of the paired per-wall ratios — robust to the
    // occasional wall where a scheduler hiccup hit one side only, which
    // a ratio-of-bests estimator amplifies (each side's best wall can
    // come from different machine conditions).
    wall_ratios.sort_by(f64::total_cmp);
    let speedup = wall_ratios[wall_ratios.len() / 2];

    let total_frames = (sessions * reps * FRAMES) as f64;
    let shared = Sample {
        seconds: shared_best,
        frames_per_second: total_frames / shared_best,
    };
    let private = Sample {
        seconds: private_best,
        frames_per_second: total_frames / private_best,
    };
    SweepPoint {
        sessions,
        reps_per_session: reps,
        shared_vs_private_speedup: speedup,
        shared_executor: shared,
        private_pools: private,
        equivalent: equivalent.load(Ordering::Relaxed),
    }
}

/// One lanes-curve point: `sessions` threads decoding through a single
/// shared executor of `lanes` lanes (no private side — the curve
/// measures how the lock-free deques scale with width, not sharing).
fn lanes_point(
    lanes: usize,
    sessions: usize,
    wfst: &Wfst,
    scores: &AcousticTable,
    expected: &DecodeResult,
) -> LanesPoint {
    let equivalent = AtomicBool::new(true);
    let reps = sweep_reps_for(sessions);
    let pool = Arc::new(WorkerPool::new(lanes));
    let decoder = ParallelDecoder::on_pool(DecodeOptions::with_beam(BEAM), lanes, pool);
    let run = |_: usize| decoder.decode(wfst, scores);

    one_wall(sessions, 1, &run, expected, &equivalent);
    let mut best = f64::INFINITY;
    for _ in 0..SWEEP_WALLS {
        best = best.min(one_wall(sessions, reps, &run, expected, &equivalent));
    }
    LanesPoint {
        lanes,
        reps_per_session: reps,
        shared_executor: Sample {
            seconds: best,
            frames_per_second: (sessions * reps * FRAMES) as f64 / best,
        },
        equivalent: equivalent.load(Ordering::Relaxed),
    }
}

/// `--<name> 1,2,4,8`-style comma-separated positive-integer override;
/// falls back to `default` when absent or unparseable.
fn usize_list_arg(name: &str, default: &[usize]) -> Vec<usize> {
    let flag = format!("--{name}");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            if let Some(list) = args.next() {
                let parsed: Vec<usize> = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&k| k > 0)
                    .collect();
                if !parsed.is_empty() {
                    return parsed;
                }
            }
        }
    }
    default.to_vec()
}

fn time_decode(reps: usize, mut run: impl FnMut() -> DecodeResult) -> (Sample, DecodeResult) {
    let mut result = run(); // untimed warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (
        Sample {
            seconds: best,
            frames_per_second: FRAMES as f64 / best,
        },
        result,
    )
}

fn stream_decode(wfst: &Wfst, scores: &AcousticTable, pool: &ScratchPool) -> DecodeResult {
    let mut decode = StreamingDecode::new(wfst, DecodeOptions::with_beam(BEAM), pool.checkout());
    for frame in 0..FRAMES - 1 {
        decode.step(scores.frame_row(frame));
    }
    let (result, scratch) = decode.finish(Some(scores.frame_row(FRAMES - 1)));
    pool.restore(scratch);
    result
}

fn main() {
    asr_bench::banner(
        "bench_serving",
        "persistent pools vs per-request construction on the serving path",
        "Section VI (pipelined system), software serving twin",
    );
    let wfst: Wfst =
        SynthWfst::generate(&SynthConfig::with_states(STATES).with_seed(0xBEA7)).unwrap();
    let scores = AcousticTable::random(FRAMES, wfst.num_phones() as usize, (0.5, 4.0), 0xACC0);
    let opts = DecodeOptions::with_beam(BEAM);
    let lanes = WorkerPool::default_lanes();

    let sequential = ViterbiDecoder::new(opts.clone());
    let (fresh, fresh_result) = time_decode(REPS, || sequential.decode(&wfst, &scores));

    let scratch_pool = ScratchPool::new(wfst.num_states());
    let (pooled, pooled_result) = time_decode(REPS, || {
        let mut scratch = scratch_pool.scratch();
        sequential.decode_with(&mut scratch, &wfst, &scores)
    });

    let (session, session_result) =
        time_decode(REPS, || stream_decode(&wfst, &scores, &scratch_pool));

    let parallel = ParallelDecoder::new(opts, lanes);
    let (pool, pool_result) = time_decode(REPS, || parallel.decode(&wfst, &scores));
    let (spawn, spawn_result) = time_decode(REPS, || parallel.decode_spawning(&wfst, &scores));

    let equivalent = [&pooled_result, &session_result, &pool_result, &spawn_result]
        .iter()
        .all(|r| {
            r.cost.to_bits() == fresh_result.cost.to_bits()
                && r.words == fresh_result.words
                && r.best_state == fresh_result.best_state
        });

    let mut sweep_sessions = usize_list_arg("sessions", &[1, 2, 4, 8, 16, 32]);
    // Monotonicity is a statement about speedup *as sessions grow*:
    // keep the sweep in ascending order whatever the CLI said.
    sweep_sessions.sort_unstable();
    sweep_sessions.dedup();
    println!(
        "\nconcurrency sweep: {sweep_sessions:?} sessions, {SWEEP_LANES} lanes both sides, \
         {SWEEP_WALL_DECODES} decodes/wall (equal work per point)"
    );
    let mut concurrency_sweep = Vec::new();
    for &sessions in &sweep_sessions {
        let point = sweep_point(sessions, &wfst, &scores, &fresh_result);
        println!(
            "  {sessions} session(s): shared executor {:>9.1} fps | private pools {:>9.1} fps \
             | shared is {:.2}x | equivalent: {}",
            point.shared_executor.frames_per_second,
            point.private_pools.frames_per_second,
            point.shared_vs_private_speedup,
            point.equivalent,
        );
        concurrency_sweep.push(point);
    }
    // The acceptance claim requires a *measured* 4+-session point: a
    // `--sessions` list without one (e.g. a quick smoke run) must not
    // splice a vacuously-true acceptance flag into the artifact.
    let four_plus: Vec<&SweepPoint> = concurrency_sweep
        .iter()
        .filter(|p| p.sessions >= 4)
        .collect();
    let shared_wins_at_4_plus_sessions = !four_plus.is_empty()
        && four_plus
            .iter()
            .all(|p| p.shared_vs_private_speedup >= WIN_TOLERANCE);
    if four_plus.is_empty() {
        println!(
            "NOTE: no sweep point ran 4+ sessions; the acceptance flag is \
             recorded as false (unmeasured), not as a pass"
        );
    } else if !shared_wins_at_4_plus_sessions {
        println!(
            "WARNING: the shared executor did not beat private per-decoder pools \
             at 4+ concurrent sessions on this machine"
        );
    }
    // Same unmeasured-is-not-a-pass rule for the monotone claim: it
    // needs at least two ascending points to say anything.
    let shared_speedup_monotone_in_sessions = concurrency_sweep.len() >= 2 && {
        let baseline = concurrency_sweep[0].shared_vs_private_speedup;
        concurrency_sweep[1..]
            .iter()
            .all(|p| p.shared_vs_private_speedup >= baseline * MONOTONE_TOLERANCE)
    };
    if concurrency_sweep.len() < 2 {
        println!(
            "NOTE: fewer than two sweep points; the monotone-speedup flag is \
             recorded as false (unmeasured), not as a pass"
        );
    } else if !shared_speedup_monotone_in_sessions {
        println!(
            "WARNING: shared-executor speedup dropped more than {:.0}% below \
             its 1-session baseline — scaling sessions eroded the shared \
             executor's advantage on this machine",
            (1.0 - MONOTONE_TOLERANCE) * 100.0
        );
    } else {
        println!("shared_speedup_monotone_in_sessions: true");
    }

    let curve_lanes = usize_list_arg("lanes", &[1, 2, 4, 8]);
    let curve_sessions = sweep_sessions.last().copied().unwrap_or(8).min(8);
    println!(
        "\nlanes-vs-throughput curve: {curve_lanes:?} lanes at {curve_sessions} concurrent \
         session(s), shared executor only"
    );
    let mut lanes_throughput_curve = Vec::new();
    for &lanes in &curve_lanes {
        let point = lanes_point(lanes, curve_sessions, &wfst, &scores, &fresh_result);
        println!(
            "  {lanes} lane(s): shared executor {:>9.1} fps | equivalent: {}",
            point.shared_executor.frames_per_second, point.equivalent,
        );
        lanes_throughput_curve.push(point);
    }

    let report = Report {
        benchmark: "serving_throughput".to_owned(),
        unit: "frames_per_second".to_owned(),
        states: STATES,
        frames: FRAMES,
        beam: BEAM,
        parallel_lanes: lanes,
        pool_vs_spawn_speedup: pool.frames_per_second / spawn.frames_per_second,
        pooled_vs_fresh_scratch_speedup: pooled.frames_per_second / fresh.frames_per_second,
        parallel_vs_sequential_speedup: pool.frames_per_second / fresh.frames_per_second,
        sequential_fresh_scratch: fresh,
        sequential_pooled_scratch: pooled,
        session_pooled: session,
        parallel_pool: pool,
        parallel_spawn: spawn,
        equivalent,
        sweep_lanes: SWEEP_LANES,
        concurrency_sweep,
        shared_wins_at_4_plus_sessions,
        shared_speedup_monotone_in_sessions,
        curve_sessions,
        lanes_throughput_curve,
    };

    println!(
        "{STATES} states, {FRAMES} frames, beam {BEAM}, {lanes} lane(s)\n\
         sequential fresh scratch  {:>9.1} fps\n\
         sequential pooled scratch {:>9.1} fps  ({:.2}x over fresh)\n\
         session (pooled scratch)  {:>9.1} fps\n\
         parallel persistent pool  {:>9.1} fps  ({:.2}x over sequential fresh)\n\
         parallel spawn-per-frame  {:>9.1} fps  (pool is {:.2}x faster)\n\
         equivalent to sequential: {}",
        report.sequential_fresh_scratch.frames_per_second,
        report.sequential_pooled_scratch.frames_per_second,
        report.pooled_vs_fresh_scratch_speedup,
        report.session_pooled.frames_per_second,
        report.parallel_pool.frames_per_second,
        report.parallel_vs_sequential_speedup,
        report.parallel_spawn.frames_per_second,
        report.pool_vs_spawn_speedup,
        report.equivalent,
    );
    if report.parallel_vs_sequential_speedup < 1.0 {
        println!(
            "WARNING: persistent-pool parallel decoder did not beat the \
             sequential decoder on this machine"
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "serving", &json);
    println!("[spliced section \"serving\" into {}]", path.display());
}
