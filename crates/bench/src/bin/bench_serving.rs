//! Serving-path benchmark: what the persistent pools buy.
//!
//! Quantifies the two pooling layers of the serving pipeline on the
//! acceptance workload (50k-state Kaldi-statistics graph, beam 8):
//!
//! * **pool vs spawn** — the persistent-lane `ParallelDecoder` against
//!   its retired spawn-two-thread-rounds-per-frame strategy, and against
//!   the sequential `ViterbiDecoder` it must beat wall-clock;
//! * **pooled vs fresh scratch** — the facade's `ScratchPool` serving
//!   path against per-request scratch allocation;
//! * **streaming session** — rows through `StreamingDecode` with a
//!   pooled scratch, the facade's `open_session` shape.
//!
//! Results are spliced into `BENCH_decode.json` (section `"serving"`)
//! next to the decode-throughput trajectory.
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_serving
//! ```

use asr_acoustic::scores::AcousticTable;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::pool::{ScratchPool, WorkerPool};
use asr_decoder::search::{DecodeOptions, DecodeResult, ViterbiDecoder};
use asr_decoder::stream::StreamingDecode;
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

const STATES: usize = 50_000;
const FRAMES: usize = 50;
const BEAM: f32 = 8.0;
const REPS: usize = 7;

#[derive(Debug, Clone, Serialize)]
struct Sample {
    seconds: f64,
    frames_per_second: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    states: usize,
    frames: usize,
    beam: f32,
    /// Lanes the pooled/spawning parallel decoders use (the machine's
    /// available parallelism).
    parallel_lanes: usize,
    /// Sequential decoder, fresh scratch per request (the pre-pool
    /// serving path, and the wall-clock bar the pool must beat).
    sequential_fresh_scratch: Sample,
    /// Sequential decoder through the facade's `ScratchPool`.
    sequential_pooled_scratch: Sample,
    /// Streaming rows through `StreamingDecode` with a pooled scratch.
    session_pooled: Sample,
    /// Persistent-pool `ParallelDecoder::decode`.
    parallel_pool: Sample,
    /// Retired spawn-per-frame `ParallelDecoder::decode_spawning`.
    parallel_spawn: Sample,
    /// parallel_pool over parallel_spawn throughput.
    pool_vs_spawn_speedup: f64,
    /// sequential_pooled_scratch over sequential_fresh_scratch.
    pooled_vs_fresh_scratch_speedup: f64,
    /// parallel_pool over sequential_fresh_scratch — the acceptance
    /// headline: the persistent pool must beat the sequential decoder.
    parallel_vs_sequential_speedup: f64,
    /// All strategies agreed with the sequential result byte-for-byte.
    equivalent: bool,
}

fn time_decode(reps: usize, mut run: impl FnMut() -> DecodeResult) -> (Sample, DecodeResult) {
    let mut result = run(); // untimed warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (
        Sample {
            seconds: best,
            frames_per_second: FRAMES as f64 / best,
        },
        result,
    )
}

fn stream_decode(wfst: &Wfst, scores: &AcousticTable, pool: &ScratchPool) -> DecodeResult {
    let mut decode = StreamingDecode::new(wfst, DecodeOptions::with_beam(BEAM), pool.checkout());
    for frame in 0..FRAMES - 1 {
        decode.step(scores.frame_row(frame));
    }
    let (result, scratch) = decode.finish(Some(scores.frame_row(FRAMES - 1)));
    pool.restore(scratch);
    result
}

fn main() {
    asr_bench::banner(
        "bench_serving",
        "persistent pools vs per-request construction on the serving path",
        "Section VI (pipelined system), software serving twin",
    );
    let wfst: Wfst =
        SynthWfst::generate(&SynthConfig::with_states(STATES).with_seed(0xBEA7)).unwrap();
    let scores = AcousticTable::random(FRAMES, wfst.num_phones() as usize, (0.5, 4.0), 0xACC0);
    let opts = DecodeOptions::with_beam(BEAM);
    let lanes = WorkerPool::default_lanes();

    let sequential = ViterbiDecoder::new(opts.clone());
    let (fresh, fresh_result) = time_decode(REPS, || sequential.decode(&wfst, &scores));

    let scratch_pool = ScratchPool::new(wfst.num_states());
    let (pooled, pooled_result) = time_decode(REPS, || {
        let mut scratch = scratch_pool.scratch();
        sequential.decode_with(&mut scratch, &wfst, &scores)
    });

    let (session, session_result) =
        time_decode(REPS, || stream_decode(&wfst, &scores, &scratch_pool));

    let parallel = ParallelDecoder::new(opts, lanes);
    let (pool, pool_result) = time_decode(REPS, || parallel.decode(&wfst, &scores));
    let (spawn, spawn_result) = time_decode(REPS, || parallel.decode_spawning(&wfst, &scores));

    let equivalent = [&pooled_result, &session_result, &pool_result, &spawn_result]
        .iter()
        .all(|r| {
            r.cost.to_bits() == fresh_result.cost.to_bits()
                && r.words == fresh_result.words
                && r.best_state == fresh_result.best_state
        });

    let report = Report {
        benchmark: "serving_throughput".to_owned(),
        unit: "frames_per_second".to_owned(),
        states: STATES,
        frames: FRAMES,
        beam: BEAM,
        parallel_lanes: lanes,
        pool_vs_spawn_speedup: pool.frames_per_second / spawn.frames_per_second,
        pooled_vs_fresh_scratch_speedup: pooled.frames_per_second / fresh.frames_per_second,
        parallel_vs_sequential_speedup: pool.frames_per_second / fresh.frames_per_second,
        sequential_fresh_scratch: fresh,
        sequential_pooled_scratch: pooled,
        session_pooled: session,
        parallel_pool: pool,
        parallel_spawn: spawn,
        equivalent,
    };

    println!(
        "{STATES} states, {FRAMES} frames, beam {BEAM}, {lanes} lane(s)\n\
         sequential fresh scratch  {:>9.1} fps\n\
         sequential pooled scratch {:>9.1} fps  ({:.2}x over fresh)\n\
         session (pooled scratch)  {:>9.1} fps\n\
         parallel persistent pool  {:>9.1} fps  ({:.2}x over sequential fresh)\n\
         parallel spawn-per-frame  {:>9.1} fps  (pool is {:.2}x faster)\n\
         equivalent to sequential: {}",
        report.sequential_fresh_scratch.frames_per_second,
        report.sequential_pooled_scratch.frames_per_second,
        report.pooled_vs_fresh_scratch_speedup,
        report.session_pooled.frames_per_second,
        report.parallel_pool.frames_per_second,
        report.parallel_vs_sequential_speedup,
        report.parallel_spawn.frames_per_second,
        report.pool_vs_spawn_speedup,
        report.equivalent,
    );
    if report.parallel_vs_sequential_speedup < 1.0 {
        println!(
            "WARNING: persistent-pool parallel decoder did not beat the \
             sequential decoder on this machine"
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "serving", &json);
    println!("[spliced section \"serving\" into {}]", path.display());
}
