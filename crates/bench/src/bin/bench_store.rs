//! Graph-store benchmark: loading the v2 image vs rebuilding the layout.
//!
//! Measures, across synthetic Kaldi-statistics graph sizes, the wall time
//! of the ways to obtain a decodable degree-sorted transducer:
//!
//! - **builder**: the construction path the image store replaces — feed
//!   every state, arc, and final cost through [`WfstBuilder`], `build()`
//!   the validated [`Wfst`], then `SortedWfst::new` for the degree-sort,
//!   renumber, and direct-index pass;
//! - **sort**: `SortedWfst::new` alone over an already-built [`Wfst`]
//!   (context: the tail of the builder path);
//! - **v1 load**: `io::load_sorted` of a v1 serialized file, which
//!   deserializes into owned arrays and re-derives the sorted layout
//!   (context: the pre-image on-disk path);
//! - **image load**: `GraphImage::load` from a v2 image file — a mapping
//!   plus a validation walk, zero record copies;
//! - **image validate**: `GraphImage::from_image_bytes` over an already
//!   resident buffer — the validation walk alone, isolating it from I/O.
//!
//! The acceptance headline is the 200k-state load speedup
//! (`image_load_vs_builder_speedup`, builder seconds over image-load
//! seconds, required ≥ 10x) together with the resident image bytes at
//! that size. A decode head-to-head then pins serving parity: the same
//! decoder over the image-backed graph and over the owned rebuild must
//! produce byte-identical results (`decode_byte_identical`) at
//! comparable throughput (`decode_rtf_ratio`).
//!
//! Results are spliced into `BENCH_decode.json` (section `"store"`).
//!
//! ```text
//! cargo run --release -p asr-bench --bin bench_store [-- --states 2000,50000,200000]
//! ```

use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::{DecodeOptions, DecodeScratch, ViterbiDecoder};
use asr_wfst::builder::WfstBuilder;
use asr_wfst::sorted::SortedWfst;
use asr_wfst::store::{self, GraphImage, ImageBytes};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::{io, StateId, Wfst};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Decode-parity utterance length and beam (matches `bench_decode`).
const FRAMES: usize = 50;
const BEAM: f32 = 8.0;
const SYNTH_SEED: u64 = 0x570E;
/// The ISSUE's acceptance size: the load and residency headlines are
/// pinned at this point of the trajectory.
const HEADLINE_STATES: usize = 200_000;

/// One graph size: builder rebuild vs image load vs in-memory validate.
#[derive(Debug, Clone, Serialize)]
struct SizePoint {
    states: usize,
    arcs: usize,
    /// Total v2 image size — header, section table, and all seven
    /// 64-byte-aligned sections; also what a loaded image keeps resident.
    image_bytes: usize,
    /// The full builder path, seconds (best of reps): `WfstBuilder` feed,
    /// `build()`, then `SortedWfst::new`.
    builder_seconds: f64,
    /// `SortedWfst::new` alone over the built graph, seconds.
    sort_seconds: f64,
    /// `io::load_sorted` of the v1 serialized file, seconds.
    v1_load_seconds: f64,
    /// `GraphImage::load` from a file, seconds (best of reps; the file is
    /// page-cached after the first rep, which is the serving steady state).
    image_load_seconds: f64,
    /// `GraphImage::from_image_bytes` over a resident buffer, seconds.
    image_validate_seconds: f64,
    /// builder_seconds over image_load_seconds.
    load_speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Sample {
    seconds: f64,
    frames_per_second: f64,
}

/// The decode head-to-head: one decoder, two backings of the same graph.
#[derive(Debug, Clone, Serialize)]
struct DecodeParity {
    states: usize,
    frames: usize,
    beam: f32,
    /// Decode over the owned `SortedWfst` rebuild.
    owned: Sample,
    /// Decode over the image-backed graph, records still in the buffer.
    image: Sample,
    /// image throughput over owned throughput — the RTF parity claim.
    image_vs_owned_ratio: f64,
    /// Words, cost bits, and best state agree between the two backings.
    byte_identical: bool,
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    benchmark: String,
    unit: String,
    trajectory: Vec<SizePoint>,
    /// The acceptance headline: builder over image-load wall time at the
    /// 200k-state point. 0.0 when the `--states` list never measured it.
    image_load_vs_builder_speedup: f64,
    /// The headline meets the ≥10x acceptance bar. `false` when the
    /// 200k-state point was not measured — unmeasured is not a pass.
    load_speedup_at_least_10x: bool,
    /// Resident bytes of the loaded 200k-state image (0 when unmeasured).
    resident_image_bytes_200k: usize,
    decode: DecodeParity,
    /// Hoisted from `decode` for the CI smoke grep.
    decode_byte_identical: bool,
    decode_rtf_ratio: f64,
}

/// One untimed warm-up, then the best of `reps` timed runs.
fn best_of<R>(reps: usize, mut run: impl FnMut() -> R) -> (f64, R) {
    let mut result = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        result = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

/// Reconstructs `wfst` through the builder — the work a system without
/// the image store does to arrive at a decodable graph.
fn builder_path(wfst: &Wfst) -> SortedWfst {
    let mut b = WfstBuilder::new();
    b.add_states(wfst.num_states());
    b.set_start(wfst.start());
    for x in 0..wfst.num_states() {
        let sid = StateId(x as u32);
        for a in wfst.arcs(sid) {
            b.add_arc(sid, a.dest, a.ilabel, a.olabel, a.weight);
        }
        let cost = wfst.final_cost(sid);
        if cost.is_finite() {
            b.set_final(sid, cost);
        }
    }
    SortedWfst::new(&b.build().expect("rebuilt graph validates")).expect("sort succeeds")
}

fn size_point(states: usize) -> (SizePoint, GraphImage, SortedWfst) {
    let wfst: Wfst =
        SynthWfst::generate(&SynthConfig::with_states(states).with_seed(SYNTH_SEED)).unwrap();
    let reps = if states >= 100_000 { 3 } else { 5 };

    let (builder_seconds, _) = best_of(reps, || builder_path(&wfst));
    let (sort_seconds, sorted) = best_of(reps, || SortedWfst::new(&wfst).unwrap());

    let pid = std::process::id();
    let v1_path = std::env::temp_dir().join(format!("bench_store_{pid}_{states}.wfst"));
    io::save(&wfst, &v1_path).unwrap();
    let (v1_load_seconds, _) = best_of(reps, || io::load_sorted(&v1_path).unwrap());
    std::fs::remove_file(&v1_path).ok();

    let path = std::env::temp_dir().join(format!("bench_store_{pid}_{states}.wfstimg"));
    store::save(&sorted, &path).unwrap();
    let (image_load_seconds, image) = best_of(reps, || GraphImage::load(&path).unwrap());
    std::fs::remove_file(&path).ok();

    let image_bytes = ImageBytes::from_slice(&store::to_bytes(&sorted));
    let (image_validate_seconds, _) = best_of(reps, || {
        GraphImage::from_image_bytes(image_bytes.clone()).unwrap()
    });

    let point = SizePoint {
        states,
        arcs: wfst.num_arcs(),
        image_bytes: image.resident_bytes(),
        builder_seconds,
        sort_seconds,
        v1_load_seconds,
        image_load_seconds,
        image_validate_seconds,
        load_speedup: builder_seconds / image_load_seconds,
    };
    (point, image, sorted)
}

/// Decodes the same synthetic utterance over both backings of the graph.
fn decode_parity(states: usize, image: &GraphImage, sorted: &SortedWfst) -> DecodeParity {
    let scores = AcousticTable::random(
        FRAMES,
        sorted.wfst().num_phones() as usize,
        (0.5, 4.0),
        0xACC0,
    );
    let decoder = ViterbiDecoder::new(DecodeOptions::with_beam(BEAM));
    let reps = if states >= 100_000 { 3 } else { 5 };

    let mut scratch = DecodeScratch::new(sorted.wfst().num_states());
    let (owned_seconds, owned_result) = best_of(reps, || {
        decoder.decode_with(&mut scratch, sorted.wfst(), &scores)
    });
    let (image_seconds, image_result) = best_of(reps, || {
        decoder.decode_with(&mut scratch, image.wfst(), &scores)
    });

    let byte_identical = owned_result.words == image_result.words
        && owned_result.cost.to_bits() == image_result.cost.to_bits()
        && owned_result.best_state == image_result.best_state;
    let owned = Sample {
        seconds: owned_seconds,
        frames_per_second: FRAMES as f64 / owned_seconds,
    };
    let image = Sample {
        seconds: image_seconds,
        frames_per_second: FRAMES as f64 / image_seconds,
    };
    DecodeParity {
        states,
        frames: FRAMES,
        beam: BEAM,
        image_vs_owned_ratio: image.frames_per_second / owned.frames_per_second,
        owned,
        image,
        byte_identical,
    }
}

/// `--states 2000,50000,200000` override for the trajectory's graph sizes.
fn states_from_args() -> Vec<usize> {
    let default = vec![2_000, 50_000, HEADLINE_STATES];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--states" {
            if let Some(list) = args.next() {
                let parsed: Vec<usize> = list
                    .split(',')
                    .filter_map(|s| s.trim().parse().ok())
                    .filter(|&k| k > 0)
                    .collect();
                if !parsed.is_empty() {
                    return parsed;
                }
            }
        }
    }
    default
}

fn main() {
    asr_bench::banner(
        "bench_store",
        "zero-copy graph image load vs layout rebuild, plus decode parity",
        "Section V (offline state-layout optimization), stored as a v2 image",
    );
    let sizes = states_from_args();
    println!("\ntrajectory over {sizes:?} states, {FRAMES} frames, beam {BEAM}\n");

    let mut trajectory = Vec::new();
    let mut headline: Option<(GraphImage, SortedWfst)> = None;
    let mut fallback: Option<(usize, GraphImage, SortedWfst)> = None;
    for &states in &sizes {
        let (point, image, sorted) = size_point(states);
        println!(
            "{:>8} states | builder {:>9.2} ms | sort {:>8.2} ms | v1 load {:>8.2} ms \
             | image load {:>8.3} ms | validate {:>8.3} ms | {:>6.1}x | {:>9} image bytes",
            point.states,
            point.builder_seconds * 1e3,
            point.sort_seconds * 1e3,
            point.v1_load_seconds * 1e3,
            point.image_load_seconds * 1e3,
            point.image_validate_seconds * 1e3,
            point.load_speedup,
            point.image_bytes,
        );
        if states == HEADLINE_STATES {
            headline = Some((image, sorted));
        } else if fallback.as_ref().is_none_or(|(s, _, _)| states > *s) {
            fallback = Some((states, image, sorted));
        }
        trajectory.push(point);
    }

    // The headline claims require a *measured* 200k-state point; a custom
    // `--states` list without one must not splice a vacuous pass.
    let headline_point = trajectory.iter().find(|p| p.states == HEADLINE_STATES);
    let image_load_vs_builder_speedup = headline_point.map_or(0.0, |p| p.load_speedup);
    let load_speedup_at_least_10x = image_load_vs_builder_speedup >= 10.0;
    let resident_image_bytes_200k = headline_point.map_or(0, |p| p.image_bytes);
    if headline_point.is_none() {
        println!(
            "NOTE: no trajectory point ran {HEADLINE_STATES} states; the load \
             headlines are recorded as unmeasured, not as a pass"
        );
    } else if !load_speedup_at_least_10x {
        println!(
            "WARNING: image load did not beat the builder path by 10x at \
             {HEADLINE_STATES} states on this machine"
        );
    }

    // Decode parity runs on the headline graph, falling back to the
    // largest measured size on a custom `--states` list.
    let (parity_states, image, sorted) = match (headline, fallback) {
        (Some((image, sorted)), _) => (HEADLINE_STATES, image, sorted),
        (None, Some((states, image, sorted))) => (states, image, sorted),
        (None, None) => unreachable!("states_from_args never returns an empty list"),
    };
    let decode = decode_parity(parity_states, &image, &sorted);
    println!(
        "\ndecode parity at {:>6} states | owned {:>8.1} fps | image {:>8.1} fps \
         | ratio {:.2} | byte-identical: {}",
        decode.states,
        decode.owned.frames_per_second,
        decode.image.frames_per_second,
        decode.image_vs_owned_ratio,
        decode.byte_identical,
    );
    assert!(
        decode.byte_identical,
        "decode over the image-backed graph diverged from the owned rebuild"
    );

    let report = Report {
        benchmark: "graph_store".to_owned(),
        unit: "seconds".to_owned(),
        trajectory,
        image_load_vs_builder_speedup,
        load_speedup_at_least_10x,
        resident_image_bytes_200k,
        decode_byte_identical: decode.byte_identical,
        decode_rtf_ratio: decode.image_vs_owned_ratio,
        decode,
    };
    println!(
        "\nimage load vs builder at {HEADLINE_STATES} states: {:.1}x \
         | resident: {} bytes",
        report.image_load_vs_builder_speedup, report.resident_image_bytes_200k
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_decode.json");
    asr_bench::splice_json_section(&path, "store", &json);
    println!("[spliced section \"store\" into {}]", path.display());
}
