//! Figure 1: execution-time share of the Viterbi search vs the DNN on the
//! CPU and GPU baselines.
//!
//! Paper: the search takes 73% of CPU time and 86% of GPU time, which
//! motivates accelerating the search rather than (only) the DNN.

use asr_bench::{banner, write_json, Scale};
use asr_platform::calibration::REFERENCE_DNN_FLOPS_PER_FRAME;
use asr_platform::{CpuModel, GpuModel};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    platform: String,
    viterbi_s: f64,
    dnn_s: f64,
    viterbi_share: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig01",
        "Viterbi vs DNN execution-time share",
        "CPU 73% / GPU 86% of time in the Viterbi search",
    );
    // Learn the workload's arc volume by decoding once with the reference
    // decoder (any design point would report the same functional counts).
    let (wfst, scores) = scale.build();
    let decoder = asr_decoder::search::ViterbiDecoder::new(
        asr_decoder::search::DecodeOptions::with_beam(scale.beam),
    );
    let result = decoder.decode(&wfst, &scores);
    let arcs_per_frame = result.stats.mean_arcs_per_frame();
    println!(
        "workload: {arcs_per_frame:.0} arcs/frame over {} frames\n",
        scale.frames
    );

    let cpu = CpuModel::default();
    let gpu = GpuModel::default();
    let rows = vec![
        Row {
            platform: "CPU".into(),
            viterbi_s: cpu.viterbi_s_per_speech_s(arcs_per_frame),
            dnn_s: cpu.dnn_s_per_speech_s(REFERENCE_DNN_FLOPS_PER_FRAME),
            viterbi_share: 0.0,
        },
        Row {
            platform: "GPU".into(),
            viterbi_s: gpu.viterbi_s_per_speech_s(arcs_per_frame),
            dnn_s: gpu.dnn_s_per_speech_s(REFERENCE_DNN_FLOPS_PER_FRAME),
            viterbi_share: 0.0,
        },
    ];
    let rows: Vec<Row> = rows
        .into_iter()
        .map(|mut r| {
            r.viterbi_share = r.viterbi_s / (r.viterbi_s + r.dnn_s);
            r
        })
        .collect();

    println!(
        "{:<6} {:>12} {:>12} {:>16}",
        "", "Viterbi (s)", "DNN (s)", "Viterbi share"
    );
    for r in &rows {
        println!(
            "{:<6} {:>12.4} {:>12.4} {:>15.1}%",
            r.platform,
            r.viterbi_s,
            r.dnn_s,
            100.0 * r.viterbi_share
        );
    }
    println!("\npaper reference: CPU 73%, GPU 86%");
    write_json("fig01_profile", &rows);
}
