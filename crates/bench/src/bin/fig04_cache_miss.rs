//! Figure 4: miss ratio vs capacity for the State, Arc and Token caches.
//!
//! Paper: even 1-2 MB caches keep significant miss ratios (20-45% for the
//! State/Arc caches at the Table I sizes) because only a tiny, sparsely
//! distributed subset of the model is touched per frame; the Token cache
//! fares better thanks to its append-mostly access pattern.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    capacity_kb: usize,
    state_miss: f64,
    arc_miss: f64,
    token_miss: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig04",
        "cache miss ratio vs capacity (256K-4M)",
        "large miss ratios persist even at 1-2 MB; Token cache lowest",
    );
    let (wfst, scores) = scale.build();
    let mut rows = Vec::new();
    for capacity_kb in [256usize, 512, 1024, 2048, 4096] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(scale.beam);
        cfg.state_cache.capacity = capacity_kb * 1024;
        cfg.arc_cache.capacity = capacity_kb * 1024;
        cfg.token_cache.capacity = capacity_kb * 1024;
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        rows.push(Row {
            capacity_kb,
            state_miss: r.stats.state_cache.miss_ratio(),
            arc_miss: r.stats.arc_cache.miss_ratio(),
            token_miss: r.stats.token_cache.miss_ratio(),
        });
        println!(
            "{:>6} KB   state {:>5.1}%   arc {:>5.1}%   token {:>5.1}%",
            capacity_kb,
            100.0 * rows.last().unwrap().state_miss,
            100.0 * rows.last().unwrap().arc_miss,
            100.0 * rows.last().unwrap().token_miss,
        );
    }
    // The paper's qualitative claims.
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    println!("\nchecks:");
    println!(
        "  miss ratios fall with capacity: state {} arc {} token {}",
        first.state_miss >= last.state_miss,
        first.arc_miss >= last.arc_miss,
        first.token_miss >= last.token_miss
    );
    println!(
        "  token cache lowest at small sizes: {}",
        first.token_miss <= first.state_miss && first.token_miss <= first.arc_miss
    );
    write_json("fig04_cache_miss", &rows);
}
