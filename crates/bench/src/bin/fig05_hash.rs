//! Figure 5: average cycles per hash-table request and overall speedup vs
//! number of entries (8K-64K).
//!
//! Paper: collisions make small tables cost extra cycles per request; at
//! 32K entries requests are close to one cycle and going to 64K buys
//! almost nothing, so Table I picks 32K (768 KB per table).

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    entries: usize,
    avg_cycles_per_request: f64,
    cycles: u64,
    speedup_vs_8k: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig05",
        "hash table: cycles/request and speedup vs entries",
        "requests near 1 cycle at 32K entries; 64K adds little",
    );
    let (wfst, scores) = scale.build();
    let mut rows: Vec<Row> = Vec::new();
    for entries in [8 * 1024usize, 16 * 1024, 32 * 1024, 64 * 1024] {
        let mut cfg = AcceleratorConfig::for_design(DesignPoint::Base).with_beam(scale.beam);
        cfg.hash_entries = entries;
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        rows.push(Row {
            entries,
            avg_cycles_per_request: r.stats.hash.avg_cycles_per_request(),
            cycles: r.stats.cycles,
            speedup_vs_8k: 0.0,
        });
    }
    let base_cycles = rows[0].cycles as f64;
    for r in &mut rows {
        r.speedup_vs_8k = base_cycles / r.cycles as f64;
    }
    println!(
        "{:>8} {:>22} {:>14}",
        "entries", "avg cycles/request", "speedup vs 8K"
    );
    for r in &rows {
        println!(
            "{:>7}K {:>22.3} {:>14.3}",
            r.entries / 1024,
            r.avg_cycles_per_request,
            r.speedup_vs_8k
        );
    }
    println!("\nchecks:");
    println!(
        "  cycles/request decreases with entries: {}",
        rows.windows(2)
            .all(|w| w[0].avg_cycles_per_request >= w[1].avg_cycles_per_request)
    );
    let gain_32_to_64 = rows[3].speedup_vs_8k / rows[2].speedup_vs_8k;
    println!(
        "  32K -> 64K speedup gain: {:.4} (paper: very small)",
        gain_32_to_64
    );
    write_json("fig05_hash", &rows);
}
