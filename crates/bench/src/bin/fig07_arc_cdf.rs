//! Figure 7: cumulative percentage of dynamically accessed states vs
//! out-degree.
//!
//! Paper: although the maximum out-degree is 770, 97% of the states
//! fetched from memory during decoding have 15 or fewer arcs — the
//! observation behind the Section IV-B bandwidth-saving layout.

use asr_bench::{banner, write_json, Scale};
use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
use asr_wfst::stats::DegreeCdf;
use asr_wfst::StateId;
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    static_curve: Vec<(usize, f64)>,
    dynamic_curve: Vec<(usize, f64)>,
    static_p_le_15: f64,
    dynamic_p_le_15: f64,
    static_p_le_16: f64,
    dynamic_p_le_16: f64,
    max_degree: usize,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig07",
        "cumulative % of state accesses vs out-degree",
        "97% of dynamically fetched states have <= 15 arcs (max 770)",
    );
    let (wfst, scores) = scale.build();
    let static_cdf = DegreeCdf::from_static(&wfst);

    let decoder = ViterbiDecoder::new(DecodeOptions {
        beam: scale.beam,
        record_state_accesses: true,
        ..DecodeOptions::default()
    });
    let result = decoder.decode(&wfst, &scores);
    let dynamic_cdf = DegreeCdf::from_accesses(
        &wfst,
        result
            .stats
            .state_accesses
            .iter()
            .map(|(&s, &n)| (StateId(s), n)),
    );

    println!("{:>8} {:>12} {:>12}", "degree", "static", "dynamic");
    for d in [1usize, 2, 3, 5, 8, 10, 15, 16, 32, 64, 128, 770] {
        if d <= static_cdf.max_degree().max(770) {
            println!(
                "{:>8} {:>11.1}% {:>11.1}%",
                d,
                100.0 * static_cdf.cumulative(d),
                100.0 * dynamic_cdf.cumulative(d)
            );
        }
    }
    let out = Output {
        static_p_le_15: static_cdf.cumulative(15),
        dynamic_p_le_15: dynamic_cdf.cumulative(15),
        static_p_le_16: static_cdf.cumulative(16),
        dynamic_p_le_16: dynamic_cdf.cumulative(16),
        max_degree: static_cdf.max_degree(),
        static_curve: static_cdf.curve(),
        dynamic_curve: dynamic_cdf.curve(),
    };
    println!("\nchecks (paper: dynamic <=15 is 97%; static <=16 over 95%; max 770):");
    println!("  dynamic <=15: {:.1}%", 100.0 * out.dynamic_p_le_15);
    println!("  static  <=16: {:.1}%", 100.0 * out.static_p_le_16);
    println!("  max degree:   {}", out.max_degree);
    write_json("fig07_arc_cdf", &out);
}
