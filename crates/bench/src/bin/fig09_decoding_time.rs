//! Figure 9: decoding time per second of speech for the six
//! configurations (CPU, GPU, ASIC, ASIC+State, ASIC+Arc, ASIC+State&Arc).
//!
//! Paper: every configuration is faster than real time; the accelerator
//! with both memory optimizations decodes 56x faster than real time.

use asr_bench::{banner, standard_points, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    decode_s_per_speech_s: f64,
    real_time_factor: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig09",
        "decoding time per second of speech",
        "all real-time; CPU ~0.30 s, GPU ~0.030 s, final ASIC ~0.018 s",
    );
    let points = standard_points(&scale);
    let rows: Vec<Row> = points
        .iter()
        .map(|(name, p, _)| Row {
            config: name.clone(),
            decode_s_per_speech_s: p.decode_s_per_speech_s,
            real_time_factor: p.real_time_factor(),
        })
        .collect();
    println!(
        "{:<16} {:>16} {:>16}",
        "config", "decode s/speech-s", "x real time"
    );
    for r in &rows {
        println!(
            "{:<16} {:>16.5} {:>15.1}x",
            r.config, r.decode_s_per_speech_s, r.real_time_factor
        );
    }
    let all_real_time = rows.iter().all(|r| r.decode_s_per_speech_s < 1.0);
    println!("\nchecks:");
    println!("  all configurations are real-time: {all_real_time}");
    write_json("fig09_decoding_time", &rows);
}
