//! Figure 10: speedup of each accelerator version over the GPU baseline.
//!
//! Paper: base ASIC reaches 0.88x of the GPU; +State 0.90x; +Arc 1.64x;
//! +State&Arc 1.7x (about 2x over the base ASIC).

use asr_bench::{banner, standard_points, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    speedup_vs_gpu: f64,
    speedup_vs_base_asic: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig10",
        "speedup over the GPU",
        "ASIC 0.88x, +State 0.90x, +Arc 1.64x, +State&Arc 1.7x",
    );
    let points = standard_points(&scale);
    let gpu = points
        .iter()
        .find(|(n, _, _)| n == "GPU")
        .expect("GPU point")
        .1;
    let base = points
        .iter()
        .find(|(n, _, _)| n == "ASIC")
        .expect("base ASIC point")
        .1;
    let rows: Vec<Row> = points
        .iter()
        .filter(|(n, _, _)| n != "CPU" && n != "GPU")
        .map(|(name, p, _)| Row {
            config: name.clone(),
            speedup_vs_gpu: p.speedup_over(&gpu),
            speedup_vs_base_asic: p.speedup_over(&base),
        })
        .collect();
    println!("{:<16} {:>14} {:>18}", "config", "vs GPU", "vs base ASIC");
    for r in &rows {
        println!(
            "{:<16} {:>13.2}x {:>17.2}x",
            r.config, r.speedup_vs_gpu, r.speedup_vs_base_asic
        );
    }
    println!("\nchecks (shape):");
    let by = |n: &str| rows.iter().find(|r| r.config.contains(n)).unwrap();
    let base_r = by("ASIC").speedup_vs_gpu;
    let state = rows
        .iter()
        .find(|r| r.config == "ASIC+State")
        .unwrap()
        .speedup_vs_gpu;
    let arc = by("+Arc").speedup_vs_gpu;
    let both = by("State&Arc").speedup_vs_gpu;
    println!(
        "  +State barely changes performance: {}",
        (state / base_r) < 1.10
    );
    println!("  +Arc beats the GPU: {}", arc > 1.0);
    println!(
        "  +State&Arc is the fastest: {}",
        both >= arc && both > state
    );
    write_json("fig10_speedup", &rows);
}
