//! Figure 11: energy reduction of each accelerator version vs the GPU.
//!
//! Paper: the base ASIC uses 171x less energy than the GPU; with both
//! memory optimizations the reduction reaches 287x (and 1185x vs CPU).

use asr_bench::{banner, standard_points, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    energy_j_per_speech_s: f64,
    reduction_vs_gpu: f64,
    reduction_vs_cpu: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig11",
        "energy reduction vs the GPU",
        "base ASIC 171x, final ASIC 287x less energy than the GPU",
    );
    let points = standard_points(&scale);
    let gpu = points.iter().find(|(n, _, _)| n == "GPU").unwrap().1;
    let cpu = points.iter().find(|(n, _, _)| n == "CPU").unwrap().1;
    let rows: Vec<Row> = points
        .iter()
        .filter(|(n, _, _)| n != "CPU" && n != "GPU")
        .map(|(name, p, _)| Row {
            config: name.clone(),
            energy_j_per_speech_s: p.energy_j_per_speech_s,
            reduction_vs_gpu: p.energy_reduction_vs(&gpu),
            reduction_vs_cpu: p.energy_reduction_vs(&cpu),
        })
        .collect();
    println!(
        "{:<16} {:>14} {:>14} {:>14}",
        "config", "J/speech-s", "vs GPU", "vs CPU"
    );
    for r in &rows {
        println!(
            "{:<16} {:>14.5} {:>13.0}x {:>13.0}x",
            r.config, r.energy_j_per_speech_s, r.reduction_vs_gpu, r.reduction_vs_cpu
        );
    }
    println!("\nchecks (shape):");
    let final_r = rows
        .iter()
        .find(|r| r.config.contains("State&Arc"))
        .unwrap();
    let base_r = rows.iter().find(|r| r.config == "ASIC").unwrap();
    println!(
        "  two orders of magnitude vs GPU: {}",
        base_r.reduction_vs_gpu > 50.0
    );
    println!(
        "  optimizations increase the reduction: {}",
        final_r.reduction_vs_gpu > base_r.reduction_vs_gpu
    );
    write_json("fig11_energy", &rows);
}
