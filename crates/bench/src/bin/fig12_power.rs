//! Figure 12: average power dissipation of every configuration.
//!
//! Paper: CPU 32.2 W, GPU 76.4 W, accelerator versions 389-462 mW (the
//! prefetcher raises power because it shortens execution time).

use asr_bench::{banner, standard_points, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    power_w: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig12",
        "power dissipation",
        "CPU 32.2 W, GPU 76.4 W, ASIC versions 389-462 mW",
    );
    let points = standard_points(&scale);
    let rows: Vec<Row> = points
        .iter()
        .map(|(name, p, _)| Row {
            config: name.clone(),
            power_w: p.power_w(),
        })
        .collect();
    println!("{:<16} {:>12}", "config", "power");
    for r in &rows {
        if r.power_w >= 1.0 {
            println!("{:<16} {:>10.1} W", r.config, r.power_w);
        } else {
            println!("{:<16} {:>10.1} mW", r.config, r.power_w * 1e3);
        }
    }
    println!("\nchecks (shape):");
    let asics: Vec<&Row> = rows
        .iter()
        .filter(|r| r.config.starts_with("ASIC"))
        .collect();
    let base = asics.iter().find(|r| r.config == "ASIC").unwrap();
    let arc = asics.iter().find(|r| r.config.contains("+Arc")).unwrap();
    println!(
        "  ASIC power is orders of magnitude below CPU/GPU: {}",
        asics.iter().all(|r| r.power_w < 2.0)
    );
    println!(
        "  prefetcher raises power (shorter runtime): {}",
        arc.power_w > base.power_w
    );
    write_json("fig12_power", &rows);
}
