//! Figure 13: off-chip memory traffic breakdown (states, arcs, tokens,
//! overflow) for the base ASIC and the version with the state-fetch
//! optimization.
//!
//! Paper: state fetches are 23% of off-chip traffic; the Section IV-B
//! layout removes most of them, cutting total traffic by 20%. The
//! prefetcher is excluded here because computed-address prefetches do not
//! change traffic.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    states_mb: f64,
    arcs_mb: f64,
    tokens_mb: f64,
    overflow_mb: f64,
    total_mb: f64,
    normalized_to_base: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig13",
        "off-chip traffic breakdown: base vs +State",
        "states are 23% of traffic; optimization removes ~20% of total",
    );
    let (wfst, scores) = scale.build();
    let mut rows = Vec::new();
    for design in [DesignPoint::Base, DesignPoint::StateOpt] {
        let cfg = AcceleratorConfig::for_design(design).with_beam(scale.beam);
        let r = Simulator::new(cfg)
            .decode_wfst(&wfst, &scores)
            .expect("sim");
        let t = r.stats.traffic;
        let mb = |b: u64| b as f64 / 1e6;
        rows.push(Row {
            config: design.label().to_owned(),
            states_mb: mb(t.states),
            arcs_mb: mb(t.arcs),
            tokens_mb: mb(t.tokens),
            overflow_mb: mb(t.overflow),
            total_mb: mb(t.search_bytes()),
            normalized_to_base: 0.0,
        });
    }
    let base_total = rows[0].total_mb;
    for r in &mut rows {
        r.normalized_to_base = r.total_mb / base_total;
    }
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "config", "states", "arcs", "tokens", "overflow", "total", "normalized"
    );
    for r in &rows {
        println!(
            "{:<16} {:>7.1}MB {:>7.1}MB {:>7.1}MB {:>7.1}MB {:>7.1}MB {:>10.3}",
            r.config,
            r.states_mb,
            r.arcs_mb,
            r.tokens_mb,
            r.overflow_mb,
            r.total_mb,
            r.normalized_to_base
        );
    }
    let state_share = rows[0].states_mb / rows[0].total_mb;
    let reduction = 1.0 - rows[1].normalized_to_base;
    println!("\nchecks:");
    println!(
        "  state share of base traffic: {:.1}% (paper: 23%)",
        100.0 * state_share
    );
    println!(
        "  total traffic removed by +State: {:.1}% (paper: ~20%)",
        100.0 * reduction
    );
    write_json("fig13_traffic", &rows);
}
