//! Figure 14: energy vs decoding time per second of speech, all six
//! configurations on one plane.
//!
//! Paper: the CPU sits at the worst corner; the GPU is ~9.8x faster and
//! 4.2x more efficient; the accelerator versions match or beat GPU speed
//! at two orders of magnitude less energy (final: 16.7x/1185x vs CPU,
//! 1.7x/287x vs GPU).

use asr_bench::{banner, standard_points, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    config: String,
    decode_s_per_speech_s: f64,
    energy_j_per_speech_s: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "fig14",
        "energy vs decoding time (per second of speech)",
        "GPU: 9.8x faster / 4.2x less energy than CPU; final ASIC: 1.7x / 287x vs GPU",
    );
    let points = standard_points(&scale);
    let rows: Vec<Point> = points
        .iter()
        .map(|(name, p, _)| Point {
            config: name.clone(),
            decode_s_per_speech_s: p.decode_s_per_speech_s,
            energy_j_per_speech_s: p.energy_j_per_speech_s,
        })
        .collect();
    println!("{:<16} {:>16} {:>16}", "config", "time (s)", "energy (J)");
    for r in &rows {
        println!(
            "{:<16} {:>16.5} {:>16.5}",
            r.config, r.decode_s_per_speech_s, r.energy_j_per_speech_s
        );
    }
    let cpu = points.iter().find(|(n, _, _)| n == "CPU").unwrap().1;
    let gpu = points.iter().find(|(n, _, _)| n == "GPU").unwrap().1;
    let final_asic = points
        .iter()
        .find(|(n, _, _)| n.contains("State&Arc"))
        .unwrap()
        .1;
    println!("\nderived ratios:");
    println!(
        "  GPU vs CPU: {:.1}x faster, {:.1}x less energy (paper: 9.8x, 4.2x)",
        gpu.speedup_over(&cpu),
        gpu.energy_reduction_vs(&cpu)
    );
    println!(
        "  final ASIC vs GPU: {:.2}x faster, {:.0}x less energy (paper: 1.7x, 287x)",
        final_asic.speedup_over(&gpu),
        final_asic.energy_reduction_vs(&gpu)
    );
    println!(
        "  final ASIC vs CPU: {:.1}x faster, {:.0}x less energy (paper: 16.7x, 1185x)",
        final_asic.speedup_over(&cpu),
        final_asic.energy_reduction_vs(&cpu)
    );
    write_json("fig14_scatter", &rows);
}
