//! Per-frame activity profile (extension beyond the paper's figures).
//!
//! The paper reports per-frame *averages* (25k arcs/frame); this
//! experiment shows the distribution over time: how the active set grows
//! from the single start token, where it saturates under the beam, and
//! how per-frame cycles track per-frame arcs — the data behind sizing the
//! double-buffered Acoustic Likelihood Buffer and batch boundaries.

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::sim::Simulator;
use asr_bench::{banner, write_json, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    frames: Vec<(usize, u64, u64, u64)>, // frame, cycles, tokens, arcs
    warmup_frames: usize,
    steady_arcs_per_frame: f64,
    peak_arcs: u64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "frame_profile",
        "per-frame cycles / tokens / arcs over the utterance",
        "extension: the paper reports only per-frame averages",
    );
    let (wfst, scores) = scale.build();
    let cfg = AcceleratorConfig::for_design(DesignPoint::StateAndArc).with_beam(scale.beam);
    let r = Simulator::new(cfg)
        .decode_wfst(&wfst, &scores)
        .expect("sim");
    let pf = &r.stats.per_frame;

    // Warm-up = frames before the active set first reaches 80% of the
    // maximum arc count.
    let peak_arcs = pf.iter().map(|f| f.arcs).max().unwrap_or(0);
    let warmup = pf
        .iter()
        .position(|f| f.arcs as f64 >= 0.8 * peak_arcs as f64)
        .unwrap_or(0);
    let steady: Vec<&asr_accel::stats::FrameStats> = pf.iter().skip(warmup).collect();
    let steady_arcs = if steady.is_empty() {
        0.0
    } else {
        steady.iter().map(|f| f.arcs as f64).sum::<f64>() / steady.len() as f64
    };

    println!(
        "{:>6} {:>10} {:>8} {:>8}",
        "frame", "cycles", "tokens", "arcs"
    );
    let stride = (pf.len() / 20).max(1);
    for (i, f) in pf.iter().enumerate() {
        if i % stride == 0 || i + 1 == pf.len() {
            println!("{:>6} {:>10} {:>8} {:>8}", i, f.cycles, f.tokens, f.arcs);
        }
    }
    println!("\nwarm-up: {warmup} frames to reach 80% of peak activity");
    println!("steady state: {steady_arcs:.0} arcs/frame (peak {peak_arcs})");

    let out = Output {
        frames: pf
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.cycles, f.tokens, f.arcs))
            .collect(),
        warmup_frames: warmup,
        steady_arcs_per_frame: steady_arcs,
        peak_arcs,
    };
    write_json("frame_profile", &out);
}
