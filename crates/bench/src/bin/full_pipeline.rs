//! Section VI text: full ASR pipeline comparison.
//!
//! Paper: the system combining the GPU (DNN) with the accelerator (Viterbi
//! search), pipelined over batches, is 1.87x faster end-to-end than a
//! GPU-only system that must run both stages sequentially.

use asr_accel::config::DesignPoint;
use asr_bench::{banner, run_design, write_json, Scale};
use asr_platform::calibration::REFERENCE_DNN_FLOPS_PER_FRAME;
use asr_platform::pipeline::PipelineModel;
use serde::Serialize;

#[derive(Serialize)]
struct Output {
    cpu_only_s: f64,
    gpu_only_s: f64,
    gpu_plus_accel_s: f64,
    speedup_over_gpu_only: f64,
    accel_viterbi_s: f64,
    gpu_dnn_s: f64,
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "full_pipeline",
        "end-to-end ASR: GPU-only vs GPU + accelerator (pipelined)",
        "1.87x end-to-end speedup over GPU-only",
    );
    let (wfst, scores) = scale.build();
    let accel = run_design(DesignPoint::StateAndArc, &wfst, &scores, scale.beam);
    let arcs_per_frame = accel.result.stats.arcs_per_frame();
    let model = PipelineModel::default();
    let cmp = model.compare(
        arcs_per_frame,
        REFERENCE_DNN_FLOPS_PER_FRAME,
        accel.point.decode_s_per_speech_s,
    );
    let out = Output {
        cpu_only_s: cmp.cpu_only_s,
        gpu_only_s: cmp.gpu_only_s,
        gpu_plus_accel_s: cmp.gpu_plus_accel_s,
        speedup_over_gpu_only: cmp.speedup_over_gpu_only(),
        accel_viterbi_s: accel.point.decode_s_per_speech_s,
        gpu_dnn_s: cmp.gpu_plus_accel_s.min(cmp.gpu_only_s),
    };
    println!("per second of speech:");
    println!("  CPU-only (DNN + search):        {:.4} s", out.cpu_only_s);
    println!("  GPU-only (DNN + search):        {:.4} s", out.gpu_only_s);
    println!(
        "  GPU + accelerator (pipelined):  {:.4} s",
        out.gpu_plus_accel_s
    );
    println!(
        "\nend-to-end speedup over GPU-only: {:.2}x (paper: 1.87x)",
        out.speedup_over_gpu_only
    );
    write_json("full_pipeline", &out);
}
