//! Table I: hardware parameters of the accelerator.

use asr_accel::config::AcceleratorConfig;
use asr_bench::{banner, write_json};

fn main() {
    banner("table1", "accelerator hardware parameters", "Table I");
    let c = AcceleratorConfig::default();
    let rows: Vec<(&str, String)> = vec![
        ("Technology", "28 nm (energy/area model)".into()),
        ("Frequency", format!("{} MHz", c.frequency_hz / 1_000_000)),
        (
            "State Cache",
            format!(
                "{} KB, {}-way, {} bytes/line",
                c.state_cache.capacity / 1024,
                c.state_cache.ways,
                c.state_cache.line
            ),
        ),
        (
            "Arc Cache",
            format!(
                "{} MB, {}-way, {} bytes/line",
                c.arc_cache.capacity / (1024 * 1024),
                c.arc_cache.ways,
                c.arc_cache.line
            ),
        ),
        (
            "Token Cache",
            format!(
                "{} KB, {}-way, {} bytes/line",
                c.token_cache.capacity / 1024,
                c.token_cache.ways,
                c.token_cache.line
            ),
        ),
        (
            "Acoustic Likelihood Buffer",
            format!("{} KB", c.acoustic_buffer / 1024),
        ),
        (
            "Hash Table",
            format!(
                "{} KB, {}K entries",
                c.hash_bytes() / 1024,
                c.hash_entries / 1024
            ),
        ),
        (
            "Memory Controller",
            format!("{} in-flight requests", c.mem_inflight),
        ),
        ("Memory Latency", format!("{} cycles", c.mem_latency)),
        (
            "State Issuer",
            format!("{} in-flight states", c.state_inflight),
        ),
        ("Arc Issuer", format!("{} in-flight arcs", c.arc_inflight)),
        (
            "Token Issuer",
            format!("{} in-flight tokens", c.token_inflight),
        ),
        ("Acoustic Likelihood Issuer", "1 in-flight arc".into()),
        (
            "Likelihood Evaluation Unit",
            "4 fp adders, 2 fp comparators".into(),
        ),
        (
            "Prefetch FIFOs / Reorder Buffer",
            format!("{} entries each", c.prefetch_fifo),
        ),
        (
            "State Issuer comparators (N)",
            format!("{}", c.state_opt_threshold),
        ),
    ];
    for (k, v) in &rows {
        println!("{k:<34} {v}");
    }
    let json: Vec<(String, String)> = rows
        .iter()
        .map(|(k, v)| ((*k).to_owned(), v.clone()))
        .collect();
    write_json("table1_config", &json);
}
