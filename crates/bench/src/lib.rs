//! Shared experiment infrastructure for the per-figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index): it builds the standard workload,
//! runs the simulator and/or platform models, prints the paper's series,
//! and writes `target/experiments/<id>.json` with the raw numbers.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --states N    WFST size                  (default 1,000,000)
//! --frames N    frames of speech           (default 100 = 1 s)
//! --beam B      beam width                 (default 12)
//! --seed S      RNG seed                   (default 42)
//! --scale P     preset: small | default | large | kaldi
//! ```

use asr_accel::config::{AcceleratorConfig, DesignPoint};
use asr_accel::energy::{EnergyBreakdown, EnergyModel};
use asr_accel::sim::{SimResult, Simulator};
use asr_acoustic::scores::AcousticTable;
use asr_platform::metrics::OperatingPoint;
use asr_platform::{CpuModel, GpuModel};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;
use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Number of WFST states.
    pub states: usize,
    /// Frames of speech (100 per second).
    pub frames: usize,
    /// Beam width.
    pub beam: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            states: 1_000_000,
            frames: 100,
            beam: 12.0,
            seed: 42,
        }
    }
}

impl Scale {
    /// Parses the standard flags from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut scale = Scale::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: usize| -> &str {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("flag {flag} needs a value"))
            };
            match flag {
                "--states" => {
                    scale.states = value(i).parse().expect("--states: integer");
                    i += 2;
                }
                "--frames" => {
                    scale.frames = value(i).parse().expect("--frames: integer");
                    i += 2;
                }
                "--beam" => {
                    scale.beam = value(i).parse().expect("--beam: float");
                    i += 2;
                }
                "--seed" => {
                    scale.seed = value(i).parse().expect("--seed: integer");
                    i += 2;
                }
                "--scale" => {
                    match value(i) {
                        "small" => {
                            scale.states = 100_000;
                            scale.frames = 50;
                        }
                        "default" => {}
                        "large" => {
                            scale.states = 4_000_000;
                            scale.frames = 200;
                        }
                        "kaldi" => {
                            scale.states = 13_200_000;
                            scale.frames = 300;
                        }
                        other => panic!("unknown scale preset {other}"),
                    }
                    i += 2;
                }
                other => panic!("unknown flag {other}"),
            }
        }
        scale
    }

    /// Generates the standard synthetic workload for this scale.
    pub fn build(&self) -> (Wfst, AcousticTable) {
        let cfg = SynthConfig::with_states(self.states).with_seed(self.seed);
        let wfst = SynthWfst::generate(&cfg).expect("synthetic WFST generation");
        let scores = AcousticTable::random(
            self.frames,
            wfst.num_phones() as usize,
            (0.5, 4.0),
            self.seed ^ 0x5C0_4E5,
        );
        (wfst, scores)
    }

    /// Seconds of speech represented by this scale.
    pub fn speech_seconds(&self) -> f64 {
        self.frames as f64 * 0.01
    }
}

/// One simulated accelerator design point with its energy accounting.
#[derive(Debug, Clone)]
pub struct AccelRun {
    /// Which design point.
    pub design: DesignPoint,
    /// Raw simulation output.
    pub result: SimResult,
    /// Energy accounting.
    pub energy: EnergyBreakdown,
    /// Decode-time/energy operating point (per speech second).
    pub point: OperatingPoint,
}

/// Runs one accelerator design point on the workload.
pub fn run_design(design: DesignPoint, wfst: &Wfst, scores: &AcousticTable, beam: f32) -> AccelRun {
    let cfg = AcceleratorConfig::for_design(design).with_beam(beam);
    let sim = Simulator::new(cfg.clone());
    let result = sim.decode_wfst(wfst, scores).expect("simulation");
    let energy = EnergyModel::default().energy(&cfg, &result.stats);
    let speech_s = result.stats.frames as f64 * 0.01;
    let point = OperatingPoint {
        decode_s_per_speech_s: result.stats.seconds(cfg.frequency_hz) / speech_s.max(1e-9),
        energy_j_per_speech_s: energy.total_j() / speech_s.max(1e-9),
    };
    AccelRun {
        design,
        result,
        energy,
        point,
    }
}

/// The six configurations of Figures 9-14, in paper order: CPU, GPU, then
/// the four accelerator design points. Baseline platform times are scaled
/// to the workload the simulator actually ran (same arcs per frame), so
/// ratios are comparable; see DESIGN.md's calibration note.
pub fn standard_points(scale: &Scale) -> Vec<(String, OperatingPoint, Option<AccelRun>)> {
    let (wfst, scores) = scale.build();
    let mut out = Vec::new();
    // Run the base design first to learn the workload's arcs/frame.
    let base = run_design(DesignPoint::Base, &wfst, &scores, scale.beam);
    let arcs_per_frame = base.result.stats.arcs_per_frame();
    let cpu = CpuModel::default().viterbi_point(arcs_per_frame);
    let gpu = GpuModel::default().viterbi_point(arcs_per_frame);
    out.push(("CPU".to_owned(), cpu, None));
    out.push(("GPU".to_owned(), gpu, None));
    out.push((base.design.label().to_owned(), base.point, Some(base)));
    for design in [
        DesignPoint::StateOpt,
        DesignPoint::ArcPrefetch,
        DesignPoint::StateAndArc,
    ] {
        let run = run_design(design, &wfst, &scores, scale.beam);
        out.push((design.label().to_owned(), run.point, Some(run)));
    }
    out
}

/// Directory where experiment JSON lands (`target/experiments`).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes `value` as pretty JSON to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize experiment");
    std::fs::write(&path, json).expect("write experiment json");
    println!("\n[wrote {}]", path.display());
}

/// Splits the top-level members of a pretty-printed JSON object file into
/// `"  \"key\": value"` chunks (no trailing commas).
///
/// The offline `serde_json` shim serializes but does not parse, so the
/// benchmark binaries that co-locate their numbers in one file splice
/// *textually*, relying on the pretty-printer's invariant that top-level
/// members are indented exactly two spaces while everything nested sits
/// deeper. Returns `None` when the file does not exist.
///
/// # Panics
///
/// Panics if the existing file is not a top-level JSON object, or holds
/// content that is not two-space pretty-printed members (say after a hand
/// edit or an external reformat) — failing loudly beats silently dropping
/// someone's benchmark numbers on the next splice.
fn read_members(file: &std::path::Path) -> Option<Vec<String>> {
    let existing = std::fs::read_to_string(file).ok()?;
    let trimmed = existing.trim_end();
    let inner = trimmed
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .unwrap_or_else(|| panic!("{} is not a JSON object", file.display()));
    // Member boundaries: a newline followed by a two-space-indented quote.
    let mut starts: Vec<usize> = inner
        .match_indices("\n  \"")
        .map(|(at, _)| at + 1)
        .collect();
    let first = starts.first().copied().unwrap_or(inner.len());
    assert!(
        inner[..first].trim().is_empty(),
        "{}: unrecognized JSON layout (expected two-space pretty-printed \
         members; refusing to splice and drop existing content)",
        file.display()
    );
    starts.push(inner.len());
    let members = starts
        .windows(2)
        .map(|w| {
            let chunk = inner[w[0]..w[1]].trim_end();
            chunk.strip_suffix(',').unwrap_or(chunk).to_owned()
        })
        .collect();
    Some(members)
}

/// Splices `"key": value` into the top-level JSON object in `file`:
/// replaces the member in place if one of the benchmark writers added it
/// before (other members are untouched, wherever they sit), appends it
/// otherwise, and creates the file as a fresh object when missing.
/// `value_json` is re-indented one level so the result stays readable.
///
/// This is how the benchmark binaries co-locate their numbers in
/// `BENCH_decode.json` (`bench_serving` → `"serving"`, `bench_frontend` →
/// `"frontend"`) without a JSON parser — the offline `serde_json` shim
/// only serializes.
///
/// # Panics
///
/// Panics if the existing file is not a top-level JSON object.
pub fn splice_json_section(file: &std::path::Path, key: &str, value_json: &str) {
    let mut members = read_members(file).unwrap_or_default();
    let prefix = format!("  \"{key}\":");
    let rendered = format!("  \"{key}\": {}", value_json.replace('\n', "\n  "));
    match members.iter_mut().find(|m| m.starts_with(&prefix)) {
        Some(member) => *member = rendered,
        None => members.push(rendered),
    }
    let merged = format!("{{\n{}\n}}\n", members.join(",\n"));
    std::fs::write(file, merged).expect("write spliced json");
}

/// Extracts the value of a top-level `key` previously added with
/// [`splice_json_section`], de-indented so it can be re-spliced verbatim.
/// `None` when the file or the section is absent.
///
/// Used by writers that regenerate a whole file (`bench_decode`) to
/// carry foreign sections (the `"serving"` and `"frontend"` numbers)
/// across the rewrite.
pub fn extract_json_section(file: &std::path::Path, key: &str) -> Option<String> {
    let members = read_members(file)?;
    let prefix = format!("  \"{key}\": ");
    let member = members.iter().find(|m| m.starts_with(&prefix))?;
    Some(member[prefix.len()..].replace("\n  ", "\n"))
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper: {paper}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_matches_documented_values() {
        let s = Scale::default();
        assert_eq!(s.states, 1_000_000);
        assert_eq!(s.frames, 100);
        assert_eq!(s.speech_seconds(), 1.0);
    }

    #[test]
    fn build_produces_consistent_workload() {
        let s = Scale {
            states: 5_000,
            frames: 10,
            beam: 8.0,
            seed: 1,
        };
        let (wfst, scores) = s.build();
        assert_eq!(wfst.num_states(), 5_000);
        assert_eq!(scores.num_frames(), 10);
        assert!(scores.num_phones() >= wfst.num_phones() as usize);
    }

    #[test]
    fn splice_json_section_appends_and_replaces() {
        let path = std::env::temp_dir().join(format!(
            "asr-bench-splice-{}-{}.json",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = std::fs::remove_file(&path);
        // Missing file: creates a fresh object.
        splice_json_section(&path, "serving", "{\n  \"a\": 1\n}");
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.contains("\"serving\""));
        assert!(first.trim_end().ends_with('}'));
        // Existing object: appended after prior members.
        std::fs::write(&path, "{\n  \"benchmark\": \"x\"\n}\n").unwrap();
        splice_json_section(&path, "serving", "{\n  \"a\": 1\n}");
        let second = std::fs::read_to_string(&path).unwrap();
        assert!(second.contains("\"benchmark\": \"x\","));
        assert!(second.contains("\"serving\""));
        // Re-splicing replaces rather than duplicates.
        splice_json_section(&path, "serving", "{\n  \"a\": 2\n}");
        let third = std::fs::read_to_string(&path).unwrap();
        assert_eq!(third.matches("\"serving\"").count(), 1);
        assert!(third.contains("\"a\": 2"));
        assert!(!third.contains("\"a\": 1"));
        // Re-splicing a file the helper itself created (key is the first
        // member, no leading comma) must also replace, not duplicate.
        let _ = std::fs::remove_file(&path);
        splice_json_section(&path, "serving", "{\n  \"a\": 3\n}");
        splice_json_section(&path, "serving", "{\n  \"a\": 4\n}");
        let fourth = std::fs::read_to_string(&path).unwrap();
        assert_eq!(fourth.matches("\"serving\"").count(), 1);
        assert!(fourth.contains("\"a\": 4"));
        assert!(!fourth.contains("\"a\": 3"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn splicing_one_section_preserves_the_others() {
        let path =
            std::env::temp_dir().join(format!("asr-bench-multisplice-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\n  \"benchmark\": \"x\"\n}\n").unwrap();
        splice_json_section(&path, "serving", "{\n  \"a\": 1\n}");
        splice_json_section(&path, "frontend", "{\n  \"b\": 2\n}");
        // Re-splicing the *earlier* section must not clobber the later one.
        splice_json_section(&path, "serving", "{\n  \"a\": 3\n}");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.matches("\"serving\"").count(), 1);
        assert_eq!(content.matches("\"frontend\"").count(), 1);
        assert!(content.contains("\"a\": 3"));
        assert!(content.contains("\"b\": 2"));
        assert!(content.contains("\"benchmark\": \"x\""));
        // Both sections extract cleanly regardless of position.
        assert_eq!(
            extract_json_section(&path, "serving").as_deref(),
            Some("{\n  \"a\": 3\n}")
        );
        assert_eq!(
            extract_json_section(&path, "frontend").as_deref(),
            Some("{\n  \"b\": 2\n}")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "unrecognized JSON layout")]
    fn splice_refuses_compacted_files_rather_than_dropping_content() {
        let path =
            std::env::temp_dir().join(format!("asr-bench-compact-{}.json", std::process::id()));
        std::fs::write(&path, "{\"benchmark\":\"x\"}\n").unwrap();
        let result = std::panic::catch_unwind(|| {
            splice_json_section(&path, "serving", "{\n  \"a\": 1\n}");
        });
        let _ = std::fs::remove_file(&path);
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    }

    #[test]
    fn extract_json_section_round_trips_through_splice() {
        let path =
            std::env::temp_dir().join(format!("asr-bench-extract-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, "{\n  \"benchmark\": \"x\"\n}\n").unwrap();
        let value = "{\n  \"a\": 1,\n  \"nested\": {\n    \"b\": 2\n  }\n}";
        splice_json_section(&path, "serving", value);
        assert_eq!(
            extract_json_section(&path, "serving").as_deref(),
            Some(value),
            "extraction must undo the splice's re-indentation exactly"
        );
        assert!(extract_json_section(&path, "absent").is_none());
        let _ = std::fs::remove_file(&path);
        assert!(extract_json_section(&path, "serving").is_none());
    }

    #[test]
    fn run_design_produces_finite_point() {
        let s = Scale {
            states: 3_000,
            frames: 10,
            beam: 6.0,
            seed: 2,
        };
        let (wfst, scores) = s.build();
        let run = run_design(DesignPoint::StateAndArc, &wfst, &scores, s.beam);
        assert!(run.point.decode_s_per_speech_s > 0.0);
        assert!(run.point.energy_j_per_speech_s > 0.0);
        assert!(run.energy.total_j() > 0.0);
    }
}
