//! Forced alignment: find the best frame-to-phone segmentation for a
//! *known* phone sequence.
//!
//! Training acoustic models (and validating synthetic test audio) needs
//! the time boundaries of each phone. Given the phone sequence and the
//! per-frame acoustic costs, this is a small Viterbi problem over a
//! left-to-right chain: each frame either stays in the current phone or
//! advances to the next one.

use asr_acoustic::scores::AcousticTable;
use asr_wfst::PhoneId;
use serde::{Deserialize, Serialize};

/// One aligned phone segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The phone.
    pub phone: PhoneId,
    /// First frame of the segment (inclusive).
    pub start: usize,
    /// One past the last frame.
    pub end: usize,
}

impl Segment {
    /// Segment length in frames.
    pub fn frames(&self) -> usize {
        self.end - self.start
    }
}

/// Result of a forced alignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alignment {
    /// One segment per phone, in order, covering all frames.
    pub segments: Vec<Segment>,
    /// Total acoustic cost of the best segmentation.
    pub cost: f32,
}

/// Aligns `phones` against the score table.
///
/// Returns `None` when the alignment is infeasible (fewer frames than
/// phones, or no phones with a non-empty table).
///
/// # Panics
///
/// Panics if any phone is epsilon or out of the table's range.
pub fn force_align(phones: &[PhoneId], scores: &AcousticTable) -> Option<Alignment> {
    let t = scores.num_frames();
    let n = phones.len();
    if n == 0 || t < n {
        return None;
    }
    assert!(
        phones.iter().all(|p| !p.is_epsilon()),
        "cannot align epsilon phones"
    );
    // dp[i][f] = best cost of consuming frames 0..=f with phones 0..=i,
    // frame f assigned to phone i. Stored flat, with a backpointer for
    // "advanced here" decisions.
    const INF: f32 = f32::INFINITY;
    let mut dp = vec![INF; n * t];
    let mut advanced = vec![false; n * t];
    let idx = |i: usize, f: usize| i * t + f;
    dp[idx(0, 0)] = scores.cost(0, phones[0]);
    for f in 1..t {
        for i in 0..n.min(f + 1) {
            let emit = scores.cost(f, phones[i]);
            let stay = dp[idx(i, f - 1)];
            let advance = if i > 0 { dp[idx(i - 1, f - 1)] } else { INF };
            if stay <= advance {
                if stay < INF {
                    dp[idx(i, f)] = stay + emit;
                }
            } else {
                dp[idx(i, f)] = advance + emit;
                advanced[idx(i, f)] = true;
            }
        }
    }
    let cost = dp[idx(n - 1, t - 1)];
    if !cost.is_finite() {
        return None;
    }
    // Trace back the advance decisions to recover boundaries.
    let mut bounds = vec![0usize; n]; // start frame per phone
    let mut i = n - 1;
    let mut f = t - 1;
    loop {
        if advanced[idx(i, f)] {
            bounds[i] = f;
            if i == 0 {
                break;
            }
            i -= 1;
        }
        if f == 0 {
            break;
        }
        f -= 1;
    }
    bounds[0] = 0;
    let mut segments = Vec::with_capacity(n);
    for (k, &phone) in phones.iter().enumerate() {
        let start = bounds[k];
        let end = if k + 1 < n { bounds[k + 1] } else { t };
        segments.push(Segment { phone, start, end });
    }
    Some(Alignment { segments, cost })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A table where phone `p` is cheap exactly in its own third of the
    /// frames.
    fn blocky(frames_per_phone: usize, phones: &[u32]) -> AcousticTable {
        let t = frames_per_phone * phones.len();
        let owned: Vec<u32> = phones.to_vec();
        AcousticTable::from_fn(t, 8, move |f, p| {
            let true_phone = owned[f / frames_per_phone];
            if p as u32 == true_phone {
                0.1
            } else {
                2.0
            }
        })
    }

    #[test]
    fn recovers_exact_boundaries() {
        let phones = [PhoneId(1), PhoneId(2), PhoneId(3)];
        let scores = blocky(4, &[1, 2, 3]);
        let a = force_align(&phones, &scores).unwrap();
        assert_eq!(a.segments.len(), 3);
        assert_eq!(
            a.segments[0],
            Segment {
                phone: PhoneId(1),
                start: 0,
                end: 4
            }
        );
        assert_eq!(
            a.segments[1],
            Segment {
                phone: PhoneId(2),
                start: 4,
                end: 8
            }
        );
        assert_eq!(
            a.segments[2],
            Segment {
                phone: PhoneId(3),
                start: 8,
                end: 12
            }
        );
        assert!((a.cost - 12.0 * 0.1).abs() < 1e-5);
    }

    #[test]
    fn segments_partition_all_frames() {
        let phones = [PhoneId(2), PhoneId(5)];
        let scores = blocky(3, &[2, 5]);
        let a = force_align(&phones, &scores).unwrap();
        assert_eq!(a.segments[0].start, 0);
        assert_eq!(a.segments.last().unwrap().end, 6);
        for pair in a.segments.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert!(a.segments.iter().all(|s| s.frames() >= 1));
    }

    #[test]
    fn uneven_durations_are_found() {
        // Phone 1 spans 6 frames, phone 2 spans 2.
        let scores = AcousticTable::from_fn(8, 4, |f, p| {
            let truth = if f < 6 { 1 } else { 2 };
            if p == truth {
                0.1
            } else {
                3.0
            }
        });
        let a = force_align(&[PhoneId(1), PhoneId(2)], &scores).unwrap();
        assert_eq!(a.segments[0].end, 6);
        assert_eq!(a.segments[1].frames(), 2);
    }

    #[test]
    fn infeasible_alignments_return_none() {
        let scores = blocky(1, &[1, 2]);
        // Three phones over two frames: impossible.
        assert!(force_align(&[PhoneId(1), PhoneId(2), PhoneId(3)], &scores).is_none());
        // Empty phone sequence.
        assert!(force_align(&[], &scores).is_none());
    }

    #[test]
    fn single_phone_takes_all_frames() {
        let scores = blocky(5, &[4]);
        let a = force_align(&[PhoneId(4)], &scores).unwrap();
        assert_eq!(
            a.segments,
            vec![Segment {
                phone: PhoneId(4),
                start: 0,
                end: 5
            }]
        );
    }

    #[test]
    fn aligns_synthetic_speech_near_truth() {
        use asr_acoustic::signal::{SignalConfig, Utterance};
        use asr_acoustic::template::TemplateScorer;
        let phones = [PhoneId(1), PhoneId(2), PhoneId(3)];
        let cfg = SignalConfig::default();
        let utt = Utterance::render(&phones, 6, &cfg);
        let scorer = TemplateScorer::with_default_signal(4);
        let table = scorer.score_waveform(&utt.samples);
        let a = force_align(&phones, &table).unwrap();
        // True boundaries are at frames 6 and 12; allow ±2 frames of slack
        // (window edges blur the features).
        assert!(
            (a.segments[0].end as i64 - 6).unsigned_abs() <= 2,
            "{:?}",
            a.segments
        );
        assert!(
            (a.segments[1].end as i64 - 12).unsigned_abs() <= 2,
            "{:?}",
            a.segments
        );
    }
}
