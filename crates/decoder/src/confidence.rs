//! Utterance-level confidence estimation from N-best margins.
//!
//! Voice interfaces need to know when to ask "did you mean ...?". A cheap,
//! classical estimator is the cost margin between the best and runner-up
//! hypotheses, squashed to `(0, 1]`: a wide margin means the search was
//! sure, a tie means it guessed. This composes directly with
//! [`crate::nbest::NBestDecoder`].

use crate::nbest::Hypothesis;
use serde::{Deserialize, Serialize};

/// Margin-based confidence estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginConfidence {
    /// Margin (in nats of path cost) at which confidence reaches ~0.73;
    /// larger values make the estimator more conservative.
    pub temperature: f32,
}

impl Default for MarginConfidence {
    fn default() -> Self {
        Self { temperature: 2.0 }
    }
}

impl MarginConfidence {
    /// Confidence of the best hypothesis in `(0, 1]`.
    ///
    /// With a single hypothesis (the runner-up was pruned away) confidence
    /// is 1.0; with none it is 0.0. Uses `1 - exp(-margin / temperature)`
    /// mapped onto `[0.5, 1)` so a dead tie scores 0.5 ("coin flip").
    pub fn score(&self, hypotheses: &[Hypothesis]) -> f64 {
        match hypotheses {
            [] => 0.0,
            [_] => 1.0,
            [best, second, ..] => {
                let margin = (second.cost - best.cost).max(0.0) as f64;
                let t = self.temperature.max(1e-6) as f64;
                0.5 + 0.5 * (1.0 - (-margin / t).exp())
            }
        }
    }

    /// `true` when the best hypothesis clears `threshold` confidence.
    pub fn accept(&self, hypotheses: &[Hypothesis], threshold: f64) -> bool {
        self.score(hypotheses) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_wfst::WordId;

    fn hyp(cost: f32) -> Hypothesis {
        Hypothesis {
            words: vec![WordId(1)],
            cost,
        }
    }

    #[test]
    fn wide_margin_is_confident() {
        let c = MarginConfidence::default();
        let confident = c.score(&[hyp(10.0), hyp(30.0)]);
        let shaky = c.score(&[hyp(10.0), hyp(10.5)]);
        assert!(confident > 0.99);
        assert!(shaky < 0.65);
        assert!(confident > shaky);
    }

    #[test]
    fn tie_scores_a_coin_flip() {
        let c = MarginConfidence::default();
        assert!((c.score(&[hyp(5.0), hyp(5.0)]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lists() {
        let c = MarginConfidence::default();
        assert_eq!(c.score(&[]), 0.0);
        assert_eq!(c.score(&[hyp(1.0)]), 1.0);
    }

    #[test]
    fn accept_thresholds() {
        let c = MarginConfidence::default();
        let hyps = [hyp(10.0), hyp(14.0)];
        assert!(c.accept(&hyps, 0.8));
        assert!(!c.accept(&hyps, 0.99));
    }

    #[test]
    fn temperature_controls_strictness() {
        let lax = MarginConfidence { temperature: 0.5 };
        let strict = MarginConfidence { temperature: 10.0 };
        let hyps = [hyp(10.0), hyp(12.0)];
        assert!(lax.score(&hyps) > strict.score(&hyps));
    }

    #[test]
    fn end_to_end_with_nbest() {
        use crate::nbest::NBestDecoder;
        use crate::search::DecodeOptions;
        use asr_acoustic::scores::AcousticTable;
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(1_000)).unwrap();
        let scores = AcousticTable::random(10, w.num_phones() as usize, (0.5, 4.0), 8);
        let hyps = NBestDecoder::new(DecodeOptions::with_beam(8.0), 3).decode(&w, &scores, 3);
        let score = MarginConfidence::default().score(&hyps);
        assert!((0.0..=1.0).contains(&score));
    }
}
