//! The token trace ("lattice") written to main memory during the search.
//!
//! The paper splits token data in two (Section III): the likelihood and
//! state index live in the frame-local hash tables and die with the frame,
//! while the *backpointer to the best predecessor* and the *word index* are
//! written to main memory — they are what backtracking walks when the
//! utterance ends. This module is that main-memory array.

use asr_wfst::WordId;
use serde::{Deserialize, Serialize};

/// Index of a trace entry; `TraceId::ROOT` marks the path origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u32);

impl TraceId {
    /// Sentinel for "no predecessor" (the start-of-utterance token).
    pub const ROOT: TraceId = TraceId(u32::MAX);

    /// Returns `true` for the root sentinel.
    #[inline]
    pub fn is_root(self) -> bool {
        self == Self::ROOT
    }
}

/// One token's permanent record: best predecessor and emitted word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Backpointer to the predecessor token's entry.
    pub prev: TraceId,
    /// Word emitted by the arc that created this token (often
    /// [`WordId::NONE`]).
    pub word: WordId,
}

/// Append-only trace of every token created during a decode.
///
/// Superseded paths leave dead entries behind, exactly as the accelerator
/// leaves stale tokens in DRAM; backtracking only touches the live chain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lattice {
    entries: Vec<TraceEntry>,
}

impl Lattice {
    /// Creates an empty lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the lattice would exceed `u32::MAX - 1` entries.
    pub fn push(&mut self, prev: TraceId, word: WordId) -> TraceId {
        let id = self.entries.len();
        assert!(id < u32::MAX as usize, "lattice overflow");
        self.entries.push(TraceEntry { prev, word });
        TraceId(id as u32)
    }

    /// Number of entries (including superseded ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no tokens have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the root sentinel or out of range.
    pub fn entry(&self, id: TraceId) -> TraceEntry {
        assert!(!id.is_root(), "root sentinel has no entry");
        self.entries[id.0 as usize]
    }

    /// Walks backpointers from `last` to the root, returning the emitted
    /// words in utterance order (the paper's backtracking step, run on the
    /// CPU).
    ///
    /// # Panics
    ///
    /// Panics if `last` is out of range.
    pub fn backtrack(&self, last: TraceId) -> Vec<WordId> {
        let mut words = Vec::new();
        let mut cur = last;
        while !cur.is_root() {
            let e = self.entry(cur);
            if !e.word.is_none() {
                words.push(e.word);
            }
            cur = e.prev;
        }
        words.reverse();
        words
    }

    /// Bytes this trace would occupy in the accelerator's token region
    /// (backpointer + word index, two 32-bit fields per token).
    pub fn memory_bytes(&self) -> u64 {
        self.entries.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrack_recovers_word_order() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId(5));
        let b = l.push(a, WordId::NONE);
        let c = l.push(b, WordId(7));
        assert_eq!(l.backtrack(c), vec![WordId(5), WordId(7)]);
    }

    #[test]
    fn backtrack_from_root_child_with_no_word_is_empty() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId::NONE);
        assert!(l.backtrack(a).is_empty());
    }

    #[test]
    fn dead_entries_do_not_affect_live_chain() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId(1));
        let _dead = l.push(TraceId::ROOT, WordId(9));
        let b = l.push(a, WordId(2));
        assert_eq!(l.backtrack(b), vec![WordId(1), WordId(2)]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn memory_bytes_counts_eight_per_token() {
        let mut l = Lattice::new();
        l.push(TraceId::ROOT, WordId::NONE);
        l.push(TraceId::ROOT, WordId::NONE);
        assert_eq!(l.memory_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "root sentinel")]
    fn entry_of_root_panics() {
        Lattice::new().entry(TraceId::ROOT);
    }

    #[test]
    fn is_empty_reflects_state() {
        let mut l = Lattice::new();
        assert!(l.is_empty());
        l.push(TraceId::ROOT, WordId::NONE);
        assert!(!l.is_empty());
    }
}
