//! The token trace ("lattice") written to main memory during the search.
//!
//! The paper splits token data in two (Section III): the likelihood and
//! state index live in the frame-local hash tables and die with the frame,
//! while the *backpointer to the best predecessor* and the *word index* are
//! written to main memory — they are what backtracking walks when the
//! utterance ends. This module is that main-memory array.

use asr_wfst::WordId;
use serde::{Deserialize, Serialize};

/// Index of a trace entry; `TraceId::ROOT` marks the path origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceId(pub u32);

impl TraceId {
    /// Sentinel for "no predecessor" (the start-of-utterance token).
    pub const ROOT: TraceId = TraceId(u32::MAX);

    /// Returns `true` for the root sentinel.
    #[inline]
    pub fn is_root(self) -> bool {
        self == Self::ROOT
    }
}

/// One token's permanent record: best predecessor and emitted word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Backpointer to the predecessor token's entry.
    pub prev: TraceId,
    /// Word emitted by the arc that created this token (often
    /// [`WordId::NONE`]).
    pub word: WordId,
}

/// Append-only trace of every token created during a decode.
///
/// Superseded paths leave dead entries behind, exactly as the accelerator
/// leaves stale tokens in DRAM; backtracking only touches the live chain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lattice {
    entries: Vec<TraceEntry>,
}

impl Lattice {
    /// Creates an empty lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the lattice would exceed `u32::MAX - 1` entries.
    pub fn push(&mut self, prev: TraceId, word: WordId) -> TraceId {
        let id = self.entries.len();
        assert!(id < u32::MAX as usize, "lattice overflow");
        self.entries.push(TraceEntry { prev, word });
        TraceId(id as u32)
    }

    /// Number of entries (including superseded ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no tokens have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the root sentinel or out of range.
    pub fn entry(&self, id: TraceId) -> TraceEntry {
        assert!(!id.is_root(), "root sentinel has no entry");
        self.entries[id.0 as usize]
    }

    /// Walks backpointers from `last` to the root, returning the emitted
    /// words in utterance order (the paper's backtracking step, run on the
    /// CPU).
    ///
    /// # Panics
    ///
    /// Panics if `last` is out of range.
    pub fn backtrack(&self, last: TraceId) -> Vec<WordId> {
        let mut words = Vec::new();
        let mut cur = last;
        while !cur.is_root() {
            let e = self.entry(cur);
            if !e.word.is_none() {
                words.push(e.word);
            }
            cur = e.prev;
        }
        words.reverse();
        words
    }

    /// Bytes this trace would occupy in the accelerator's token region
    /// (backpointer + word index, two 32-bit fields per token).
    pub fn memory_bytes(&self) -> u64 {
        self.entries.len() as u64 * 8
    }

    /// Mark-compact garbage collection over the backpointer chains
    /// (Kaldi's periodic token GC, `PruneActiveTokens`): every entry
    /// reachable from `roots` survives with its chain intact, everything
    /// else — tokens superseded by a better in-going path, or whose whole
    /// path fell out of the beam — is dropped, and `roots` are rewritten
    /// to the surviving ids.
    ///
    /// Entry order is preserved, so backpointers keep pointing backwards
    /// and a single forward pass compacts in place. With reused `scratch`
    /// the collection performs no heap allocation once its buffers have
    /// grown to the lattice watermark.
    ///
    /// Returns the number of retained entries.
    ///
    /// # Panics
    ///
    /// Panics if any root is out of range.
    pub fn compact(&mut self, roots: &mut [TraceId], scratch: &mut CompactScratch) -> usize {
        let len = self.entries.len();
        scratch.live.clear();
        scratch.live.resize(len, false);
        scratch.remap.clear();
        scratch.remap.resize(len, 0);
        // Mark: walk each chain until the root sentinel or an entry the
        // walk has already claimed.
        for &root in roots.iter() {
            let mut cur = root;
            while !cur.is_root() {
                let idx = cur.0 as usize;
                if scratch.live[idx] {
                    break;
                }
                scratch.live[idx] = true;
                cur = self.entries[idx].prev;
            }
        }
        // Compact: predecessors always precede their successors, so their
        // new ids are known by the time a successor is rewritten.
        let mut kept = 0usize;
        for idx in 0..len {
            if !scratch.live[idx] {
                continue;
            }
            let mut entry = self.entries[idx];
            if !entry.prev.is_root() {
                entry.prev = TraceId(scratch.remap[entry.prev.0 as usize]);
            }
            scratch.remap[idx] = kept as u32;
            self.entries[kept] = entry;
            kept += 1;
        }
        self.entries.truncate(kept);
        for root in roots.iter_mut() {
            if !root.is_root() {
                *root = TraceId(scratch.remap[root.0 as usize]);
            }
        }
        kept
    }
}

/// Reusable buffers for [`Lattice::compact`].
#[derive(Debug, Clone, Default)]
pub struct CompactScratch {
    live: Vec<bool>,
    remap: Vec<u32>,
}

impl CompactScratch {
    /// Creates empty scratch; buffers grow to the lattice watermark on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrack_recovers_word_order() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId(5));
        let b = l.push(a, WordId::NONE);
        let c = l.push(b, WordId(7));
        assert_eq!(l.backtrack(c), vec![WordId(5), WordId(7)]);
    }

    #[test]
    fn backtrack_from_root_child_with_no_word_is_empty() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId::NONE);
        assert!(l.backtrack(a).is_empty());
    }

    #[test]
    fn dead_entries_do_not_affect_live_chain() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId(1));
        let _dead = l.push(TraceId::ROOT, WordId(9));
        let b = l.push(a, WordId(2));
        assert_eq!(l.backtrack(b), vec![WordId(1), WordId(2)]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn memory_bytes_counts_eight_per_token() {
        let mut l = Lattice::new();
        l.push(TraceId::ROOT, WordId::NONE);
        l.push(TraceId::ROOT, WordId::NONE);
        assert_eq!(l.memory_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "root sentinel")]
    fn entry_of_root_panics() {
        Lattice::new().entry(TraceId::ROOT);
    }

    #[test]
    fn is_empty_reflects_state() {
        let mut l = Lattice::new();
        assert!(l.is_empty());
        l.push(TraceId::ROOT, WordId::NONE);
        assert!(!l.is_empty());
    }

    #[test]
    fn compact_drops_dead_entries_and_preserves_chains() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId(1));
        let dead1 = l.push(TraceId::ROOT, WordId(9));
        let b = l.push(a, WordId(2));
        let _dead2 = l.push(dead1, WordId(8));
        let c = l.push(b, WordId(3));
        let mut roots = [c];
        let kept = l.compact(&mut roots, &mut CompactScratch::new());
        assert_eq!(kept, 3);
        assert_eq!(l.len(), 3);
        assert_eq!(l.backtrack(roots[0]), vec![WordId(1), WordId(2), WordId(3)]);
    }

    #[test]
    fn compact_with_shared_prefix_keeps_it_once() {
        let mut l = Lattice::new();
        let a = l.push(TraceId::ROOT, WordId(1));
        let b1 = l.push(a, WordId(2));
        let b2 = l.push(a, WordId(3));
        let mut roots = [b1, b2];
        let kept = l.compact(&mut roots, &mut CompactScratch::new());
        assert_eq!(kept, 3);
        assert_eq!(l.backtrack(roots[0]), vec![WordId(1), WordId(2)]);
        assert_eq!(l.backtrack(roots[1]), vec![WordId(1), WordId(3)]);
    }

    #[test]
    fn compact_of_empty_roots_clears_everything() {
        let mut l = Lattice::new();
        l.push(TraceId::ROOT, WordId(1));
        l.push(TraceId::ROOT, WordId(2));
        let kept = l.compact(&mut [], &mut CompactScratch::new());
        assert_eq!(kept, 0);
        assert!(l.is_empty());
    }

    #[test]
    fn compact_is_idempotent_on_live_data() {
        let mut l = Lattice::new();
        let mut cur = TraceId::ROOT;
        for w in 1..=20u32 {
            cur = l.push(cur, WordId(w));
            if w % 3 == 0 {
                l.push(cur, WordId(100 + w)); // dead branch
            }
        }
        let mut scratch = CompactScratch::new();
        let mut roots = [cur];
        let first = l.compact(&mut roots, &mut scratch);
        let words = l.backtrack(roots[0]);
        let second = l.compact(&mut roots, &mut scratch);
        assert_eq!(first, second, "second pass finds nothing new to drop");
        assert_eq!(l.backtrack(roots[0]), words);
        assert_eq!(words.len(), 20);
    }

    #[test]
    fn root_sentinel_roots_survive_compaction() {
        let mut l = Lattice::new();
        l.push(TraceId::ROOT, WordId(1));
        let mut roots = [TraceId::ROOT];
        let kept = l.compact(&mut roots, &mut CompactScratch::new());
        assert_eq!(kept, 0);
        assert!(roots[0].is_root());
    }
}
