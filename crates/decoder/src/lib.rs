//! Reference software Viterbi beam search for the MICRO 2016 ASR
//! accelerator reproduction.
//!
//! This crate is the software twin of the accelerator: a frame-synchronous
//! Viterbi beam search over a WFST (Section II of the paper), playing two
//! roles in the workspace:
//!
//! 1. **Functional reference.** The cycle-accurate simulator in `asr-accel`
//!    must produce the same best path as this decoder on the same inputs;
//!    integration tests assert that.
//! 2. **CPU baseline.** The paper's CPU numbers come from Kaldi's decoder;
//!    `asr-platform` wraps this implementation (measured, then calibrated)
//!    as the software baseline.
//!
//! Modules:
//!
//! * [`lattice`]: the token trace kept in main memory — backpointer plus
//!   word label per token, exactly the data the accelerator's Token Issuer
//!   writes out, and the input to backtracking;
//! * [`search`]: the beam search itself ([`search::ViterbiDecoder`]);
//! * [`parallel`]: a multi-threaded expansion variant standing in for the
//!   GPU decoder's arc-parallel traversal;
//! * [`wer`]: word-error-rate scoring used by functional tests.
//!
//! # Example
//!
//! ```
//! use asr_acoustic::scores::AcousticTable;
//! use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
//! use asr_wfst::synth::{SynthConfig, SynthWfst};
//!
//! let wfst = SynthWfst::generate(&SynthConfig::with_states(500))?;
//! let scores = AcousticTable::random(20, wfst.num_phones() as usize, (0.5, 4.0), 1);
//! let decoder = ViterbiDecoder::new(DecodeOptions::default());
//! let result = decoder.decode(&wfst, &scores);
//! assert!(result.cost.is_finite());
//! # Ok::<(), asr_wfst::WfstError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod align;
pub mod confidence;
pub mod lattice;
pub mod nbest;
pub mod parallel;
pub mod search;
pub mod wer;
