//! Reference software Viterbi beam search for the MICRO 2016 ASR
//! accelerator reproduction.
//!
//! This crate is the software twin of the accelerator: a frame-synchronous
//! Viterbi beam search over a WFST (Section II of the paper), playing two
//! roles in the workspace:
//!
//! 1. **Functional reference.** The cycle-accurate simulator in `asr-accel`
//!    must produce the same best path as this decoder on the same inputs;
//!    integration tests assert that.
//! 2. **CPU baseline.** The paper's CPU numbers come from Kaldi's decoder;
//!    `asr-platform` wraps this implementation (measured, then calibrated)
//!    as the software baseline.
//!
//! # Architecture: the token-table hot path
//!
//! The decode loop is built as a software twin of the accelerator's hash
//! datapath (Section III). The mapping, stage by stage:
//!
//! | accelerator (paper) | this crate |
//! |---|---|
//! | two on-chip token hash tables (current/next frame) | double-buffered [`token_table::TokenTable`]s, swapped at the frame barrier |
//! | hash lookup-or-insert with likelihood compare | [`token_table::TokenTable::relax`]: dense slot per state, epoch tag for liveness |
//! | table flush between frames | one epoch-counter bump (`begin_frame`) — no clearing, no rehash |
//! | insertion-ordered linked list walked by the State Issuer | the table's append-only active list, deduped by the epoch check |
//! | on-insert beam test against the running frame-best | prune-on-insert in [`search::ViterbiDecoder`]: arcs landing beyond `running_best + beam` skip relax *and* lattice push |
//! | backpointer/word writes to DRAM | [`lattice::Lattice`] appends, periodically mark-compacted ([`lattice::Lattice::compact`], Kaldi-style token GC) |
//!
//! After warm-up the steady-state frame loop performs zero heap
//! allocations (asserted by an allocation-counting test). The seed
//! `HashMap` implementation is retained as
//! [`reference::ReferenceDecoder`]; an equivalence suite asserts the
//! token-table decoder reproduces its `words`, `cost`, and `best_state`
//! byte-identically, and `asr-bench`'s `bench_decode` binary records the
//! speedup (`BENCH_decode.json`).
//!
//! Modules:
//!
//! * [`lattice`]: the token trace kept in main memory — backpointer plus
//!   word label per token, exactly the data the accelerator's Token Issuer
//!   writes out, the input to backtracking, and the target of the periodic
//!   compaction GC;
//! * [`token_table`]: the epoch-tagged flat token store;
//! * [`search`]: the beam search itself ([`search::ViterbiDecoder`]);
//! * [`reference`](mod@reference): the retained seed `HashMap` decoder
//!   ([`reference::ReferenceDecoder`]), the equivalence and benchmark
//!   baseline;
//! * [`parallel`]: a multi-threaded variant standing in for the GPU
//!   decoder's arc-parallel traversal, sharding the token table by state
//!   range for lock-free per-shard relaxation on lanes leased from a
//!   (possibly shared) work-stealing executor;
//! * [`pool`]: the serving substrate — the shared work-stealing
//!   [`pool::WorkerPool`] (global injector, per-lane deques,
//!   steal-on-idle) that concurrent decoders and sessions lease lanes
//!   from, and the checkout/restore [`pool::ScratchPool`] that makes
//!   repeated facade decodes allocation-free;
//! * [`stream`]: the batch frame loop cut open for streaming
//!   ([`stream::StreamingDecode`], generic over borrowed or owned graph
//!   handles): rows in, partial hypotheses out, byte-identical
//!   finalization;
//! * [`wer`]: word-error-rate scoring used by functional tests.
//!
//! # Example
//!
//! ```
//! use asr_acoustic::scores::AcousticTable;
//! use asr_decoder::search::{DecodeOptions, ViterbiDecoder};
//! use asr_wfst::synth::{SynthConfig, SynthWfst};
//!
//! let wfst = SynthWfst::generate(&SynthConfig::with_states(500))?;
//! let scores = AcousticTable::random(20, wfst.num_phones() as usize, (0.5, 4.0), 1);
//! let decoder = ViterbiDecoder::new(DecodeOptions::default());
//! let result = decoder.decode(&wfst, &scores);
//! assert!(result.cost.is_finite());
//! # Ok::<(), asr_wfst::WfstError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod align;
pub mod confidence;
pub mod lattice;
#[cfg(all(test, feature = "model-check"))]
mod model_check;
pub mod nbest;
pub mod parallel;
pub mod pool;
pub mod reference;
pub mod search;
pub mod stream;
pub(crate) mod sync;
pub mod token_table;
pub mod wer;
