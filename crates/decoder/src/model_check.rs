//! Model-check harnesses for the lock-free executor (run with
//! `cargo test -p asr-decoder --features model-check --lib model_check`).
//!
//! Each harness drives the *real* production code — the [`ChaseLev`]
//! deque, the [`Injector`] ring, and the [`EventCount`] parking protocol
//! from `pool.rs`, compiled against the shadow `crate::sync` facade —
//! through `asr-verify`'s exhaustive scheduler. The checker explores
//! every interleaving (and every admissible weak-memory read) up to the
//! preemption bound, so a passing harness is a proof over that space,
//! not a probabilistic stress.
//!
//! Two kinds of harness live here:
//!
//! * **regressions** — the races previous PRs fixed by hand (the SeqCst
//!   pop-vs-steal arbitration on the last deque element, the injector's
//!   full-ring helping accounting, the eventcount's lost-wakeup
//!   freedom, the batch slot generation protocol) pinned forever;
//! * **seeded bugs** — deliberately broken variants (a deque publishing
//!   with `Relaxed` where Release is required; slot routing that
//!   ignores the generation stamp) that the checker must *catch*, so
//!   the tool itself cannot silently rot.

use crate::pool::{ChaseLev, EventCount, Injector, JobHeader, Steal, Task};
use crate::sync::{fence, AtomicU64, AtomicUsize, Ordering};
use asr_verify::model::{self, Config};
use std::sync::Arc;

/// Budget shared by the harnesses: two preemptions is enough to expose
/// every two-thread race in these protocols while keeping exhaustive
/// exploration fast; the caps are backstops, not tuning knobs.
fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        max_executions: 400_000,
        max_steps: 4_000,
        max_threads: 3,
    }
}

/// A dummy job header address used purely as a tag: harness tasks are
/// never executed, only routed.
fn tag(chunk: u32) -> Task {
    Task {
        header: 0x100usize as *const JobHeader,
        chunk,
    }
}

/// The PR 8 regression: owner pop vs. thief steal racing for the *last*
/// element of the deque. The `SeqCst` fences plus the CAS on `top`
/// must hand the element to exactly one side in every interleaving —
/// this is the race the original Chase–Lev paper gets wrong without
/// fences and the reason `pop` re-checks `top` after its speculative
/// decrement.
#[test]
fn chase_lev_last_element_goes_to_exactly_one_side() {
    model::check(cfg(), || {
        let deque = Arc::new(ChaseLev::with_capacity(2));
        let hits = Arc::new(AtomicUsize::new(0));
        let (d2, h2) = (Arc::clone(&deque), Arc::clone(&hits));
        assert!(deque.push(tag(7)));
        let thief = model::spawn(move || loop {
            match d2.steal() {
                Steal::Success(task) => {
                    assert_eq!(task.chunk, 7, "thief saw a stale slot");
                    h2.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                Steal::Retry => model::yield_now(),
                Steal::Empty => return,
            }
        });
        if let Some(task) = deque.pop() {
            assert_eq!(task.chunk, 7, "owner saw a stale slot");
            hits.fetch_add(1, Ordering::SeqCst);
        }
        thief.join();
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "last element delivered zero or two times"
        );
    });
}

/// Push-then-pop overlapping a thief: two elements, the owner drains
/// from the bottom while the thief takes from the top — between them
/// every element must surface exactly once. (Capacity 4: a deque holds
/// `cap - 1` elements, so 2 would refuse the second push.)
#[test]
fn chase_lev_owner_and_thief_split_two_elements() {
    model::check(cfg(), || {
        let deque = Arc::new(ChaseLev::with_capacity(4));
        let mask = Arc::new(AtomicUsize::new(0));
        let (d2, m2) = (Arc::clone(&deque), Arc::clone(&mask));
        let thief = model::spawn(move || loop {
            match d2.steal() {
                Steal::Success(task) => {
                    let bit = 1usize << task.chunk;
                    let prev = m2.fetch_add(bit, Ordering::SeqCst);
                    assert_eq!(prev & bit, 0, "chunk {} delivered twice", task.chunk);
                    return;
                }
                Steal::Retry => model::yield_now(),
                Steal::Empty => return,
            }
        });
        assert!(deque.push(tag(0)));
        assert!(deque.push(tag(1)));
        while let Some(task) = deque.pop() {
            let bit = 1usize << task.chunk;
            let prev = mask.fetch_add(bit, Ordering::SeqCst);
            assert_eq!(prev & bit, 0, "chunk {} delivered twice", task.chunk);
        }
        thief.join();
        // The thief may have lost every race (mask may miss its bit only
        // if the owner got both) — but nothing may be delivered twice
        // and nothing may be lost.
        let seen = mask.load(Ordering::SeqCst);
        assert_eq!(seen, 0b11, "an element was lost: mask {seen:#b}");
    });
}

/// The seeded known-buggy deque: a Chase–Lev push that omits the
/// Release fence before publishing `bottom`. The thief can then observe
/// the new `bottom` but the *stale* slot payload — the checker must
/// exhibit that execution. This is the proof the tool would have caught
/// the bug class the fences exist for.
struct BuggyDeque {
    top: AtomicU64,
    bottom: AtomicU64,
    slot: AtomicU64,
}

impl BuggyDeque {
    fn new() -> Self {
        Self {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            slot: AtomicU64::new(0),
        }
    }

    fn push(&self, value: u64) {
        let b = self.bottom.load(Ordering::Relaxed);
        self.slot.store(value, Ordering::Relaxed);
        // BUG (seeded): no `fence(Release)` here — the slot write is not
        // ordered before the bottom publication.
        self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
    }

    fn steal(&self) -> Option<u64> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if b.wrapping_sub(t) as i64 <= 0 {
            return None;
        }
        let value = self.slot.load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(value)
    }
}

#[test]
fn buggy_relaxed_publish_deque_is_caught() {
    let report = model::check_expect_failure(cfg(), || {
        let deque = Arc::new(BuggyDeque::new());
        let d2 = Arc::clone(&deque);
        let thief = model::spawn(move || {
            if let Some(value) = d2.steal() {
                assert_eq!(value, 42, "thief stole a stale slot payload");
            }
        });
        deque.push(42);
        thief.join();
    });
    assert!(
        report.contains("stale slot payload"),
        "unexpected report: {report}"
    );
}

/// The injector's full-ring helping invariant on a 2-slot ring: when a
/// submitter's push is refused it executes the chunk inline (helping),
/// and `taken + helped == queued` with every chunk surfacing exactly
/// once — the accounting identity `fork_join` relies on to know the
/// job header is dead.
#[test]
fn injector_full_ring_helping_accounts_every_task() {
    model::check(cfg(), || {
        let injector = Arc::new(Injector::with_capacity(2));
        let done = Arc::new(AtomicUsize::new(0));
        let delivered = Arc::new(AtomicUsize::new(0));
        let (i2, dn2, dl2) = (
            Arc::clone(&injector),
            Arc::clone(&done),
            Arc::clone(&delivered),
        );
        let consumer = model::spawn(move || loop {
            if let Some(task) = i2.pop() {
                let bit = 1usize << task.chunk;
                let prev = dl2.fetch_add(bit, Ordering::SeqCst);
                assert_eq!(prev & bit, 0, "chunk {} delivered twice", task.chunk);
            } else if dn2.load(Ordering::SeqCst) == 1 {
                return;
            } else {
                model::yield_now();
            }
        });
        let mut helped = 0usize;
        for chunk in 0..3u32 {
            if !injector.push(tag(chunk)) {
                // Ring full: help inline, exactly like `fork_join`.
                let bit = 1usize << chunk;
                let prev = delivered.fetch_add(bit, Ordering::SeqCst);
                assert_eq!(prev & bit, 0, "helped chunk {chunk} delivered twice");
                helped += 1;
            }
        }
        // Steal-back: drain whatever no lane consumed.
        while let Some(task) = injector.pop() {
            let bit = 1usize << task.chunk;
            let prev = delivered.fetch_add(bit, Ordering::SeqCst);
            assert_eq!(prev & bit, 0, "chunk {} delivered twice", task.chunk);
        }
        done.store(1, Ordering::SeqCst);
        consumer.join();
        assert!(
            helped <= 1,
            "a 2-slot ring refuses at most one of three pushes here"
        );
        assert_eq!(
            delivered.load(Ordering::SeqCst),
            0b111,
            "queued != taken + stolen_back + helped"
        );
    });
}

/// The eventcount never loses a wakeup: a lane that parks on "no work"
/// is always unparked by a producer that published work, in every
/// interleaving of register/fence/re-check against publish/fence/notify.
/// A lost wakeup would strand the sleeper and the model reports it as a
/// deadlock.
#[test]
fn eventcount_parking_never_loses_the_wakeup() {
    model::check(cfg(), || {
        let ec = Arc::new(EventCount::new());
        let work = Arc::new(AtomicUsize::new(0));
        let (e2, w2) = (Arc::clone(&ec), Arc::clone(&work));
        let lane = model::spawn(move || {
            e2.park_if(|| w2.load(Ordering::Acquire) == 0);
            // Parked at most once; by the eventcount contract the wakeup
            // (or the pre-sleep re-check) has seen the publication.
        });
        work.store(1, Ordering::Release);
        ec.notify(true);
        lane.join();
    });
}

/// The batch scoring service's generation-stamped slot reuse protocol,
/// distilled: session A has a row in flight (already past the
/// unregister compaction point, as in a scatter racing a `Session::Drop`
/// on another thread) while the slot is recycled to session B. Delivery
/// compares the row's owner stamp against the slot's current generation,
/// so B can never receive A's stale row.
#[derive(Default)]
struct SlotModel {
    gen: u64,
    live: bool,
    /// Rows delivered to the slot's current owner.
    ready: usize,
}

#[derive(Default)]
struct BatchModel {
    slot: SlotModel,
    /// At most one in-flight row: `Some(gen)` is a row stamped with its
    /// submitting handle's generation.
    pending: Option<u64>,
}

impl BatchModel {
    /// The scatter routing step: deliver the pending row iff its owner
    /// stamp still matches the slot. `check_gen` is the protocol knob
    /// the seeded-bug variant turns off.
    fn flush(&mut self, check_gen: bool) {
        if let Some(owner_gen) = self.pending.take() {
            if self.slot.live && (!check_gen || self.slot.gen == owner_gen) {
                self.slot.ready += 1;
            }
        }
    }
}

fn lock(state: &crate::sync::Mutex<BatchModel>) -> crate::sync::MutexGuard<'_, BatchModel> {
    state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn batch_slot_reuse_harness(check_gen: bool) {
    let state = Arc::new(crate::sync::Mutex::new(BatchModel::default()));
    // Session A: registered at generation 0 before the race window.
    lock(&state).slot.live = true;
    let s2 = Arc::clone(&state);
    let a = model::spawn(move || {
        // A's row lands in the window, stamped with A's generation —
        // concurrent with everything the main thread does below.
        lock(&s2).pending = Some(0);
    });
    // Unregister A: the generation bump is the slot's poison pill for
    // any row still in flight (the real unregister also compacts the
    // window, but a row mid-scatter is already past compaction).
    {
        let mut st = lock(&state);
        if st.slot.live && st.slot.gen == 0 {
            st.slot.live = false;
            st.slot.gen = 1;
        }
    }
    // Session B registers into the recycled slot (generation 1).
    {
        let mut st = lock(&state);
        if !st.slot.live {
            st.slot.live = true;
            st.slot.ready = 0;
        }
    }
    // A flush routes whatever is pending.
    lock(&state).flush(check_gen);
    a.join();
    let st = lock(&state);
    if st.slot.live && st.slot.gen == 1 {
        // B owns the recycled slot: A's stale row must never be here.
        assert_eq!(st.slot.ready, 0, "stale row routed to a recycled slot");
    }
}

#[test]
fn batch_slot_generation_stamp_blocks_stale_rows() {
    model::check(cfg(), || batch_slot_reuse_harness(true));
}

/// The same protocol with the generation compare removed is the seeded
/// bug: some interleaving routes A's in-flight row into B's freshly
/// recycled slot, and the checker must find it.
#[test]
fn batch_slot_without_generation_check_is_caught() {
    let report = model::check_expect_failure(cfg(), || batch_slot_reuse_harness(false));
    assert!(report.contains("stale row"), "unexpected report: {report}");
}
