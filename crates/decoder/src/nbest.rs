//! Approximate N-best decoding.
//!
//! The accelerator (and the reference decoder) keep only the single best
//! predecessor per token — all a 1-best transcript needs. Applications
//! like confidence estimation or rescoring want alternatives; this module
//! extends the frame-synchronous search to carry up to `K` hypotheses per
//! token and extract the `N` cheapest distinct word sequences.
//!
//! This is the classical *word-conditioned* approximation: hypotheses that
//! merge on a state are truncated to the local top-`K`, so the result is
//! exact for `N = 1` and high-quality (not provably exact) for larger `N`.

use crate::lattice::{Lattice, TraceId};
use crate::search::DecodeOptions;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};
use std::collections::HashMap;

/// One scored alternative transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Words of this alternative.
    pub words: Vec<WordId>,
    /// Path cost (including final cost).
    pub cost: f32,
}

#[derive(Debug, Clone, Copy)]
struct Alt {
    cost: f32,
    trace: TraceId,
}

#[derive(Debug, Clone, Default)]
struct Cell {
    // Sorted by cost ascending, capped at K.
    alts: Vec<Alt>,
}

impl Cell {
    fn best(&self) -> f32 {
        self.alts.first().map_or(f32::INFINITY, |a| a.cost)
    }

    /// Inserts an alternative, keeping the list sorted and capped.
    /// Returns `true` when the cell's best cost improved.
    fn insert(&mut self, alt: Alt, cap: usize) -> bool {
        let improved_best = alt.cost < self.best();
        let pos = self.alts.partition_point(|a| a.cost <= alt.cost);
        if pos >= cap {
            return false;
        }
        self.alts.insert(pos, alt);
        self.alts.truncate(cap);
        improved_best
    }
}

/// N-best frame-synchronous beam decoder.
#[derive(Debug, Clone)]
pub struct NBestDecoder {
    opts: DecodeOptions,
    per_state: usize,
}

impl NBestDecoder {
    /// Creates a decoder keeping up to `per_state` alternatives per token.
    ///
    /// # Panics
    ///
    /// Panics if `per_state == 0`.
    pub fn new(opts: DecodeOptions, per_state: usize) -> Self {
        assert!(per_state > 0, "need at least one hypothesis per state");
        Self { opts, per_state }
    }

    /// Decodes and returns up to `n` distinct word sequences, cheapest
    /// first. The first hypothesis equals the 1-best decoder's result.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable, n: usize) -> Vec<Hypothesis> {
        let mut lattice = Lattice::new();
        let mut cur: HashMap<u32, Cell> = HashMap::new();
        let root = lattice.push(TraceId::ROOT, WordId::NONE);
        cur.entry(wfst.start().0).or_default().insert(
            Alt {
                cost: 0.0,
                trace: root,
            },
            self.per_state,
        );
        self.epsilon_closure(wfst, &mut cur, &mut lattice);

        for frame in 0..scores.num_frames() {
            let best = cur.values().map(Cell::best).fold(f32::INFINITY, f32::min);
            let threshold = best + self.opts.beam;
            let mut expanded: Vec<(u32, Cell)> = cur
                .iter()
                .filter(|(_, c)| c.best() <= threshold)
                .map(|(&s, c)| (s, c.clone()))
                .collect();
            expanded.sort_unstable_by_key(|&(s, _)| s);
            let mut next: HashMap<u32, Cell> = HashMap::new();
            for (state, cell) in expanded {
                for arc in wfst.emitting_arcs(StateId(state)) {
                    let acoustic = scores.cost(frame, arc.ilabel);
                    for alt in &cell.alts {
                        if alt.cost > threshold {
                            break; // sorted: the rest are worse
                        }
                        let trace = lattice.push(alt.trace, arc.olabel);
                        next.entry(arc.dest.0).or_default().insert(
                            Alt {
                                cost: alt.cost + arc.weight + acoustic,
                                trace,
                            },
                            self.per_state,
                        );
                    }
                }
            }
            self.epsilon_closure(wfst, &mut next, &mut lattice);
            cur = next;
            if cur.is_empty() {
                break;
            }
        }

        // Gather final alternatives.
        let mut finals: Vec<Alt> = Vec::new();
        let mut any: Vec<Alt> = Vec::new();
        let mut states: Vec<(&u32, &Cell)> = cur.iter().collect();
        states.sort_unstable_by_key(|(s, _)| **s);
        for (&state, cell) in states {
            let f = wfst.final_cost(StateId(state));
            for alt in &cell.alts {
                any.push(*alt);
                if f.is_finite() {
                    finals.push(Alt {
                        cost: alt.cost + f,
                        trace: alt.trace,
                    });
                }
            }
        }
        let mut pool = if finals.is_empty() { any } else { finals };
        pool.sort_by(|a, b| a.cost.total_cmp(&b.cost));

        // Distinct word sequences, cheapest first.
        let mut out: Vec<Hypothesis> = Vec::new();
        for alt in pool {
            if out.len() >= n {
                break;
            }
            let words = lattice.backtrack(alt.trace);
            if !out.iter().any(|h| h.words == words) {
                out.push(Hypothesis {
                    words,
                    cost: alt.cost,
                });
            }
        }
        out
    }

    fn epsilon_closure(&self, wfst: &Wfst, tokens: &mut HashMap<u32, Cell>, lattice: &mut Lattice) {
        let mut worklist: Vec<u32> = tokens.keys().copied().collect();
        worklist.sort_unstable();
        let mut idx = 0;
        while idx < worklist.len() {
            let state = worklist[idx];
            idx += 1;
            let Some(cell) = tokens.get(&state).cloned() else {
                continue;
            };
            for arc in wfst.epsilon_arcs(StateId(state)) {
                for alt in &cell.alts {
                    let trace = lattice.push(alt.trace, arc.olabel);
                    let improved = tokens.entry(arc.dest.0).or_default().insert(
                        Alt {
                            cost: alt.cost + arc.weight,
                            trace,
                        },
                        self.per_state,
                    );
                    if improved {
                        worklist.push(arc.dest.0);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ViterbiDecoder;
    use asr_wfst::builder::WfstBuilder;
    use asr_wfst::PhoneId;

    /// Two parallel two-arc paths with different costs and words.
    fn forked() -> (Wfst, AcousticTable) {
        let mut b = WfstBuilder::new();
        let s: Vec<StateId> = (0..4).map(|_| b.add_state()).collect();
        b.set_start(s[0]);
        b.set_final(s[3], 0.0);
        b.add_arc(s[0], s[1], PhoneId(1), WordId(1), 0.5); // cheap branch
        b.add_arc(s[0], s[2], PhoneId(1), WordId(2), 1.0); // dear branch
        b.add_arc(s[1], s[3], PhoneId(2), WordId::NONE, 0.5);
        b.add_arc(s[2], s[3], PhoneId(2), WordId::NONE, 0.5);
        let scores = AcousticTable::from_fn(2, 3, |_, _| 0.25);
        (b.build().unwrap(), scores)
    }

    #[test]
    fn returns_distinct_alternatives_in_cost_order() {
        let (w, scores) = forked();
        let hyps = NBestDecoder::new(DecodeOptions::with_beam(10.0), 4).decode(&w, &scores, 5);
        assert_eq!(hyps.len(), 2);
        assert_eq!(hyps[0].words, vec![WordId(1)]);
        assert_eq!(hyps[1].words, vec![WordId(2)]);
        assert!(hyps[0].cost < hyps[1].cost);
        assert!((hyps[1].cost - hyps[0].cost - 0.5).abs() < 1e-5);
    }

    #[test]
    fn first_hypothesis_matches_one_best_decoder() {
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(1_000)).unwrap();
        let scores = AcousticTable::random(12, w.num_phones() as usize, (0.5, 4.0), 5);
        let opts = DecodeOptions::with_beam(6.0);
        let one_best = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let hyps = NBestDecoder::new(opts, 3).decode(&w, &scores, 3);
        assert!(!hyps.is_empty());
        assert_eq!(hyps[0].cost, one_best.cost);
        assert_eq!(hyps[0].words, one_best.words);
        // Costs are non-decreasing.
        for pair in hyps.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
        }
    }

    #[test]
    fn n_caps_the_result_count() {
        let (w, scores) = forked();
        let hyps = NBestDecoder::new(DecodeOptions::with_beam(10.0), 4).decode(&w, &scores, 1);
        assert_eq!(hyps.len(), 1);
    }

    #[test]
    fn per_state_one_degenerates_to_viterbi() {
        let (w, scores) = forked();
        let hyps = NBestDecoder::new(DecodeOptions::with_beam(10.0), 1).decode(&w, &scores, 5);
        // With one alternative per state, merge states collapse paths; the
        // best survives.
        assert_eq!(hyps[0].words, vec![WordId(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one hypothesis")]
    fn zero_per_state_rejected() {
        NBestDecoder::new(DecodeOptions::default(), 0);
    }
}
