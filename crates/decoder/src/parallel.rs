//! Multi-threaded arc expansion over a sharded token table: the GPU
//! decoder's stand-in.
//!
//! The paper's GPU baseline (Chong et al.) parallelizes the per-frame arc
//! expansion across thousands of threads, then reconciles destination
//! tokens with atomic min operations. This module reproduces that
//! execution shape on CPU threads with the token-table engine:
//!
//! 1. **Expansion fan-out**: the sorted frontier is split into per-worker
//!    chunks; each worker expands its tokens' emitting arcs and routes the
//!    candidates into per-`(worker, shard)` buffers, where a shard is a
//!    contiguous range of state ids.
//! 2. **Lock-free sharded relax**: each worker then owns exactly one
//!    shard of the next frame's epoch-tagged
//!    [`crate::token_table::TokenTable`] and relaxes every candidate
//!    destined for it — no locks, no atomics, and candidates are consumed
//!    in `(worker, arc)` order, which for any one destination state is the
//!    same relative order the sequential decoder uses, so tie-breaking is
//!    identical. Prune-on-insert applies per shard against the shard's
//!    running best.
//! 3. **Frame-barrier merge**: shard results are folded (in shard order)
//!    into the sequential engine's resolved table, assigning lattice
//!    entries deterministically; the epsilon closure then runs under the
//!    same frozen `emitting_best + beam` threshold as the sequential
//!    decoder, making the closure byte-identical.
//!
//! Results are bit-identical to the sequential
//! [`crate::search::ViterbiDecoder`] in cost and word sequence — used both
//! as a correctness cross-check and by `asr-platform` to reason about
//! parallel efficiency of the search (the paper: a modest 3.7-10x on GPU
//! versus 26x for the DNN). All frame-loop buffers (candidate matrices,
//! shard tables, frontier) are reused across frames.

use crate::lattice::{CompactScratch, Lattice, TraceId};
use crate::search::{
    build_frontier, epsilon_closure, finish, maybe_gc, DecodeOptions, DecodeResult, DecodeStats,
    FrameStats,
};
use crate::token_table::TokenTable;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};

/// A deferred backpointer: the lattice entry is allocated at the frame
/// barrier, after the owning shard's relax settles the winner.
#[derive(Debug, Clone, Copy)]
struct Pending {
    prev: TraceId,
    word: WordId,
}

const PENDING_NONE: Pending = Pending {
    prev: TraceId::ROOT,
    word: WordId::NONE,
};

/// A candidate token produced by one expansion worker.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    dest: u32,
    cost: f32,
    prev: TraceId,
    word: WordId,
}

/// Parallel beam-search decoder.
#[derive(Debug, Clone)]
pub struct ParallelDecoder {
    opts: DecodeOptions,
    num_threads: usize,
}

impl ParallelDecoder {
    /// Creates a decoder with `num_threads` expansion workers (and as many
    /// token-table shards).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(opts: DecodeOptions, num_threads: usize) -> Self {
        assert!(num_threads > 0, "need at least one worker");
        Self { opts, num_threads }
    }

    /// Worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs the search; `words`, `cost`, `best_state`, and
    /// `reached_final` match the sequential decoder exactly.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let num_states = wfst.num_states();
        let threads = self.num_threads;
        let shard_len = num_states.div_ceil(threads).max(1);
        let beam = self.opts.beam;

        // Resolved double buffer (TraceId payloads) plus one pending
        // shard per worker; all reused across frames.
        let mut cur: TokenTable<TraceId> = TokenTable::new(num_states, TraceId::ROOT);
        let mut next: TokenTable<TraceId> = TokenTable::new(num_states, TraceId::ROOT);
        let mut shards: Vec<TokenTable<Pending>> = (0..threads)
            .map(|s| {
                let base = (s * shard_len).min(num_states);
                let len = num_states.saturating_sub(base).min(shard_len);
                TokenTable::new_shard(base as u32, len, PENDING_NONE)
            })
            .collect();
        // Candidate buffers: [worker][shard].
        let mut candidates: Vec<Vec<Vec<Candidate>>> =
            (0..threads).map(|_| vec![Vec::new(); threads]).collect();
        let mut frontier: Vec<u32> = Vec::new();
        let mut worklist: Vec<u32> = Vec::new();
        let mut gc_roots: Vec<TraceId> = Vec::new();
        let mut gc = CompactScratch::new();

        let mut lattice = Lattice::new();
        let mut stats = DecodeStats::default();

        cur.begin_frame();
        let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
        cur.relax(wfst.start().0, 0.0, || start_trace);
        let mut scratch_fs = FrameStats::default();
        epsilon_closure(
            wfst,
            &mut cur,
            &mut lattice,
            &mut scratch_fs,
            f32::INFINITY,
            &mut worklist,
        );

        let num_frames = scores.num_frames();
        for frame in 0..num_frames {
            let mut fs = FrameStats {
                active_tokens: cur.len(),
                ..FrameStats::default()
            };
            build_frontier(&cur, &mut frontier, beam, self.opts.max_active);
            fs.expanded_tokens = frontier.len();
            if self.opts.record_state_accesses {
                for &state in &frontier {
                    *stats.state_accesses.entry(state).or_insert(0) += 1;
                }
            }
            let last_frame = frame + 1 == num_frames;

            // Phase 1: fan the frontier out; each worker fills its own
            // candidate row, routed by destination shard.
            let chunk = frontier.len().div_ceil(threads).max(1);
            let cur_ref = &cur;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for (tokens, row) in frontier.chunks(chunk).zip(candidates.iter_mut()) {
                    handles.push(scope.spawn(move || {
                        for bucket in row.iter_mut() {
                            bucket.clear();
                        }
                        for &state in tokens {
                            let cost0 = cur_ref.cost(state);
                            let trace = cur_ref.payload(state);
                            for arc in wfst.emitting_arcs(StateId(state)) {
                                let shard = (arc.dest.0 as usize / shard_len).min(row.len() - 1);
                                row[shard].push(Candidate {
                                    dest: arc.dest.0,
                                    cost: cost0 + arc.weight + scores.cost(frame, arc.ilabel),
                                    prev: trace,
                                    word: arc.olabel,
                                });
                            }
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("expansion worker panicked");
                }
            });
            // Workers beyond the frontier's chunk count never ran this
            // frame: clear their buffers so stale candidates from a wider
            // previous frame cannot leak in.
            let ran = frontier.chunks(chunk).len();
            for row in candidates.iter_mut().skip(ran) {
                for bucket in row.iter_mut() {
                    bucket.clear();
                }
            }
            fs.arcs_traversed += candidates
                .iter()
                .map(|row| row.iter().map(Vec::len).sum::<usize>())
                .sum::<usize>();

            // Phase 2: lock-free relax — worker `s` exclusively owns
            // shard `s` and drains every worker's bucket for it, in
            // worker order (the sequential relax order restricted to the
            // shard's states).
            let candidates_ref = &candidates;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for (s, shard) in shards.iter_mut().enumerate() {
                    handles.push(scope.spawn(move || {
                        shard.begin_frame();
                        for row in candidates_ref {
                            for c in &row[s] {
                                if !last_frame && c.cost > shard.best() + beam {
                                    continue;
                                }
                                shard.relax(c.dest, c.cost, || Pending {
                                    prev: c.prev,
                                    word: c.word,
                                });
                            }
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("relax worker panicked");
                }
            });

            // Frame barrier: fold shards (in shard order) into the
            // resolved table, allocating one lattice entry per surviving
            // token — deterministic for any thread count.
            next.begin_frame();
            for shard in &shards {
                for &state in shard.active() {
                    let (cost, pending) = shard.get(state).expect("active token is live");
                    let inserted =
                        next.relax(state, cost, || lattice.push(pending.prev, pending.word));
                    debug_assert!(inserted, "shards cover disjoint state ranges");
                    fs.tokens_created += 1;
                }
            }

            let closure_threshold = if last_frame {
                f32::INFINITY
            } else {
                next.best() + beam
            };
            epsilon_closure(
                wfst,
                &mut next,
                &mut lattice,
                &mut fs,
                closure_threshold,
                &mut worklist,
            );
            std::mem::swap(&mut cur, &mut next);
            stats.frames.push(fs);
            if cur.is_empty() {
                break;
            }
            if !last_frame {
                maybe_gc(
                    self.opts.lattice_gc_interval,
                    frame,
                    &mut cur,
                    &mut lattice,
                    &mut gc_roots,
                    &mut frontier,
                    &mut gc,
                );
            }
        }

        finish(wfst, &mut cur, &mut frontier, lattice, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ViterbiDecoder;
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn workload() -> (Wfst, AcousticTable) {
        let w = SynthWfst::generate(&SynthConfig::with_states(3_000)).unwrap();
        let scores = AcousticTable::random(25, w.num_phones() as usize, (0.5, 4.0), 17);
        (w, scores)
    }

    #[test]
    fn matches_sequential_decoder() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        for threads in [1, 2, 4] {
            let par = ParallelDecoder::new(opts.clone(), threads).decode(&w, &scores);
            assert_eq!(par.cost, seq.cost, "{threads} threads");
            assert_eq!(par.words, seq.words, "{threads} threads");
            assert_eq!(par.best_state, seq.best_state);
            assert_eq!(par.reached_final, seq.reached_final);
        }
    }

    #[test]
    fn parallel_runs_are_reproducible() {
        let (w, scores) = workload();
        let d = ParallelDecoder::new(DecodeOptions::with_beam(6.0), 4);
        let a = d.decode(&w, &scores);
        let b = d.decode(&w, &scores);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.words, b.words);
        assert_eq!(a.lattice.len(), b.lattice.len());
    }

    #[test]
    fn stats_match_sequential() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let par = ParallelDecoder::new(opts, 3).decode(&w, &scores);
        assert_eq!(seq.stats.frames.len(), par.stats.frames.len());
        for (s, p) in seq.stats.frames.iter().zip(&par.stats.frames) {
            assert_eq!(s.expanded_tokens, p.expanded_tokens);
            assert_eq!(s.arcs_traversed, p.arcs_traversed);
        }
    }

    #[test]
    fn more_threads_than_states_still_works() {
        let (w, scores) = {
            let w = SynthWfst::generate(&SynthConfig::with_states(50)).unwrap();
            let scores = AcousticTable::random(6, w.num_phones() as usize, (0.5, 4.0), 5);
            (w, scores)
        };
        let opts = DecodeOptions::with_beam(8.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let par = ParallelDecoder::new(opts, 64).decode(&w, &scores);
        assert_eq!(par.cost, seq.cost);
        assert_eq!(par.words, seq.words);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        ParallelDecoder::new(DecodeOptions::default(), 0);
    }
}
