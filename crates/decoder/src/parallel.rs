//! Multi-threaded arc expansion: the GPU decoder's stand-in.
//!
//! The paper's GPU baseline (Chong et al.) parallelizes the per-frame arc
//! expansion across thousands of threads, then reconciles destination
//! tokens with atomic min operations. This module reproduces that execution
//! shape on CPU threads: surviving tokens are split into chunks, each chunk
//! expands its emitting arcs independently, and the candidate tokens are
//! merged deterministically. Results are bit-identical to the sequential
//! [`crate::search::ViterbiDecoder`] in cost and word sequence — used both
//! as a correctness cross-check and by `asr-platform` to reason about
//! parallel efficiency of the search (the paper: a modest 3.7-10x on GPU
//! versus 26x for the DNN).

use crate::lattice::{Lattice, TraceId};
use crate::search::{DecodeOptions, DecodeResult, DecodeStats, FrameStats};
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};
use std::collections::HashMap;

/// A candidate token produced by one expansion thread.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    dest: u32,
    cost: f32,
    prev: TraceId,
    word: WordId,
}

/// Parallel beam-search decoder.
#[derive(Debug, Clone)]
pub struct ParallelDecoder {
    opts: DecodeOptions,
    num_threads: usize,
}

impl ParallelDecoder {
    /// Creates a decoder with `num_threads` expansion workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(opts: DecodeOptions, num_threads: usize) -> Self {
        assert!(num_threads > 0, "need at least one worker");
        Self { opts, num_threads }
    }

    /// Worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs the search; semantics match the sequential decoder exactly.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let mut lattice = Lattice::new();
        let mut stats = DecodeStats::default();
        let mut cur: HashMap<u32, (f32, TraceId)> = HashMap::new();
        let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
        cur.insert(wfst.start().0, (0.0, start_trace));
        let mut scratch = FrameStats::default();
        epsilon_closure(wfst, &mut cur, &mut lattice, &mut scratch);

        for frame in 0..scores.num_frames() {
            let mut fs = FrameStats {
                active_tokens: cur.len(),
                ..FrameStats::default()
            };
            let best = cur.values().map(|c| c.0).fold(f32::INFINITY, f32::min);
            let threshold = best + self.opts.beam;
            let mut expanded: Vec<(u32, f32, TraceId)> = cur
                .iter()
                .filter(|(_, c)| c.0 <= threshold)
                .map(|(&s, &(c, t))| (s, c, t))
                .collect();
            expanded.sort_unstable_by_key(|&(s, _, _)| s);
            if let Some(cap) = self.opts.max_active {
                if expanded.len() > cap {
                    expanded.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                    expanded.truncate(cap);
                    expanded.sort_unstable_by_key(|&(s, _, _)| s);
                }
            }
            fs.expanded_tokens = expanded.len();
            if self.opts.record_state_accesses {
                for &(s, _, _) in &expanded {
                    *stats.state_accesses.entry(s).or_insert(0) += 1;
                }
            }

            // Fan out: each worker expands a contiguous chunk of tokens.
            let chunk = expanded.len().div_ceil(self.num_threads).max(1);
            let candidate_lists: Vec<Vec<Candidate>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = expanded
                    .chunks(chunk)
                    .map(|tokens| {
                        scope.spawn(move |_| {
                            let mut out = Vec::with_capacity(tokens.len() * 3);
                            for &(state, cost, trace) in tokens {
                                for arc in wfst.emitting_arcs(StateId(state)) {
                                    out.push(Candidate {
                                        dest: arc.dest.0,
                                        cost: cost
                                            + arc.weight
                                            + scores.cost(frame, arc.ilabel),
                                        prev: trace,
                                        word: arc.olabel,
                                    });
                                }
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("expansion worker panicked");

            // Deterministic merge: chunks arrive in token order, candidates
            // within a chunk in arc order — the same relaxation order the
            // sequential decoder uses.
            let mut next: HashMap<u32, (f32, TraceId)> = HashMap::new();
            for list in candidate_lists {
                fs.arcs_traversed += list.len();
                for c in list {
                    relax(&mut next, &mut lattice, c, &mut fs);
                }
            }
            epsilon_closure(wfst, &mut next, &mut lattice, &mut fs);
            cur = next;
            stats.frames.push(fs);
            if cur.is_empty() {
                break;
            }
        }

        finish(wfst, cur, lattice, stats)
    }
}

fn relax(
    map: &mut HashMap<u32, (f32, TraceId)>,
    lattice: &mut Lattice,
    c: Candidate,
    fs: &mut FrameStats,
) -> bool {
    match map.get_mut(&c.dest) {
        Some(cell) if cell.0 <= c.cost => false,
        slot => {
            let trace = lattice.push(c.prev, c.word);
            match slot {
                Some(existing) => *existing = (c.cost, trace),
                None => {
                    map.insert(c.dest, (c.cost, trace));
                }
            }
            fs.tokens_created += 1;
            true
        }
    }
}

fn epsilon_closure(
    wfst: &Wfst,
    tokens: &mut HashMap<u32, (f32, TraceId)>,
    lattice: &mut Lattice,
    fs: &mut FrameStats,
) {
    let mut worklist: Vec<u32> = tokens.keys().copied().collect();
    worklist.sort_unstable();
    let mut idx = 0;
    while idx < worklist.len() {
        let state = worklist[idx];
        idx += 1;
        let Some(&(cost, trace)) = tokens.get(&state) else {
            continue;
        };
        for arc in wfst.epsilon_arcs(StateId(state)) {
            fs.arcs_traversed += 1;
            let cand = Candidate {
                dest: arc.dest.0,
                cost: cost + arc.weight,
                prev: trace,
                word: arc.olabel,
            };
            if relax(tokens, lattice, cand, fs) {
                worklist.push(arc.dest.0);
            }
        }
    }
}

fn finish(
    wfst: &Wfst,
    cur: HashMap<u32, (f32, TraceId)>,
    lattice: Lattice,
    stats: DecodeStats,
) -> DecodeResult {
    let mut best_final: Option<(u32, f32, TraceId)> = None;
    let mut best_any: Option<(u32, f32, TraceId)> = None;
    let mut states: Vec<(&u32, &(f32, TraceId))> = cur.iter().collect();
    states.sort_unstable_by_key(|(s, _)| **s);
    for (&state, &(cost, trace)) in states {
        if best_any.map_or(true, |(_, c, _)| cost < c) {
            best_any = Some((state, cost, trace));
        }
        let f = wfst.final_cost(StateId(state));
        if f.is_finite() {
            let total = cost + f;
            if best_final.map_or(true, |(_, c, _)| total < c) {
                best_final = Some((state, total, trace));
            }
        }
    }
    let (reached_final, chosen) = match (best_final, best_any) {
        (Some(f), _) => (true, Some(f)),
        (None, any) => (false, any),
    };
    match chosen {
        Some((state, cost, trace)) => {
            let words = lattice.backtrack(trace);
            DecodeResult {
                words,
                cost,
                reached_final,
                best_state: StateId(state),
                stats,
                lattice,
            }
        }
        None => DecodeResult {
            words: Vec::new(),
            cost: f32::INFINITY,
            reached_final: false,
            best_state: wfst.start(),
            stats,
            lattice,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ViterbiDecoder;
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn workload() -> (Wfst, AcousticTable) {
        let w = SynthWfst::generate(&SynthConfig::with_states(3_000)).unwrap();
        let scores = AcousticTable::random(25, w.num_phones() as usize, (0.5, 4.0), 17);
        (w, scores)
    }

    #[test]
    fn matches_sequential_decoder() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        for threads in [1, 2, 4] {
            let par = ParallelDecoder::new(opts.clone(), threads).decode(&w, &scores);
            assert_eq!(par.cost, seq.cost, "{threads} threads");
            assert_eq!(par.words, seq.words, "{threads} threads");
            assert_eq!(par.best_state, seq.best_state);
            assert_eq!(par.reached_final, seq.reached_final);
        }
    }

    #[test]
    fn parallel_runs_are_reproducible() {
        let (w, scores) = workload();
        let d = ParallelDecoder::new(DecodeOptions::with_beam(6.0), 4);
        let a = d.decode(&w, &scores);
        let b = d.decode(&w, &scores);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.words, b.words);
        assert_eq!(a.lattice.len(), b.lattice.len());
    }

    #[test]
    fn stats_match_sequential() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let par = ParallelDecoder::new(opts, 3).decode(&w, &scores);
        assert_eq!(seq.stats.frames.len(), par.stats.frames.len());
        for (s, p) in seq.stats.frames.iter().zip(&par.stats.frames) {
            assert_eq!(s.expanded_tokens, p.expanded_tokens);
            assert_eq!(s.arcs_traversed, p.arcs_traversed);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        ParallelDecoder::new(DecodeOptions::default(), 0);
    }
}
