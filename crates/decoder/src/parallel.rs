//! Multi-threaded arc expansion over a sharded token table, driven by a
//! persistent worker pool: the GPU decoder's stand-in, built to serve.
//!
//! The paper's GPU baseline (Chong et al.) parallelizes the per-frame arc
//! expansion across thousands of threads, then reconciles destination
//! tokens with atomic min operations. This module reproduces that
//! execution shape on CPU threads with the token-table engine:
//!
//! 1. **Expansion fan-out**: the sorted frontier is split into per-lane
//!    chunks; each lane expands its tokens' emitting arcs and routes the
//!    candidates into per-`(lane, shard)` buffers, where a shard is a
//!    contiguous range of state ids.
//! 2. **Lock-free sharded relax**: each lane then owns exactly one shard
//!    of the next frame's epoch-tagged
//!    [`crate::token_table::TokenTable`] and relaxes every candidate
//!    destined for it — no locks, no atomics, and candidates are consumed
//!    in `(lane, arc)` order, which for any one destination state is the
//!    same relative order the sequential decoder uses, so tie-breaking is
//!    identical. Prune-on-insert applies per shard against the shard's
//!    running best.
//! 3. **Frame-barrier merge**: shard results are folded (in shard order)
//!    into the sequential engine's resolved table, assigning lattice
//!    entries deterministically; the epsilon closure then runs under the
//!    same frozen `emitting_best + beam` threshold as the sequential
//!    decoder, making the closure byte-identical.
//!
//! # Shared execution: lane leases from the work-stealing executor
//!
//! Earlier revisions spawned two rounds of scoped threads *per frame*,
//! then owned a private fork-join pool per decoder — which made
//! concurrent requests serialize behind per-decoder lanes. The decoder
//! now holds a **lease on a shared [`WorkerPool`]**: construction with
//! [`ParallelDecoder::on_pool`] attaches it to an existing executor
//! (typically the serving runtime's one global pool), a frame phase is
//! one fork-join job whose per-shard chunks land in the executor's
//! injector, and idle lanes — wherever they are — steal them. N
//! concurrent decodes therefore share all lanes instead of each hoarding
//! its own, and their chunks interleave in the same queues. A frame
//! phase still costs two condvar rounds, chunk 0 still runs on the
//! calling thread, and a one-lane lease executes entirely inline with no
//! synchronization at all.
//!
//! Working sets are pooled, not locked: each `decode` call checks a
//! parallel working set out of the decoder's free list (and
//! restores it afterwards, panic or not), so concurrent decodes on *one*
//! decoder proceed concurrently — the pool grows to the peak concurrency
//! and stays there, and a serving loop pays the allocation cost once.
//! [`ParallelDecoder::new`] still builds a private single-tenant pool
//! for standalone use; the retired spawn-per-frame strategy is kept as
//! [`ParallelDecoder::decode_spawning`], the benchmark baseline that
//! `bench_serving` quantifies the executor against.
//!
//! Results are bit-identical to the sequential
//! [`crate::search::ViterbiDecoder`] in cost and word sequence — for any
//! lane count, strategy, and machine — used both as a correctness
//! cross-check and by `asr-platform` to reason about parallel efficiency
//! of the search (the paper: a modest 3.7-10x on GPU versus 26x for the
//! DNN).

use crate::lattice::{CompactScratch, Lattice, TraceId};
use crate::pool::WorkerPool;
use crate::search::{
    build_frontier, epsilon_closure, finish, maybe_gc, relax_frame, DecodeOptions, DecodeResult,
    DecodeStats, FrameStats,
};
use crate::token_table::TokenTable;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};
use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex, PoisonError};

/// A deferred backpointer: the lattice entry is allocated at the frame
/// barrier, after the owning shard's relax settles the winner.
#[derive(Debug, Clone, Copy)]
struct Pending {
    prev: TraceId,
    word: WordId,
}

const PENDING_NONE: Pending = Pending {
    prev: TraceId::ROOT,
    word: WordId::NONE,
};

/// A candidate token produced by one expansion lane.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    dest: u32,
    cost: f32,
    prev: TraceId,
    word: WordId,
}

/// Interior-mutable slot accessed by exactly one pool lane per phase.
///
/// The parallel phases index these by lane id, so accesses are disjoint by
/// construction; the coordinator touches them only between fork-joins,
/// when it holds `&mut`.
struct LaneCell<T>(UnsafeCell<T>);

// SAFETY: every `&mut` projection is taken by at most one lane at a time
// (callers index by lane id), and shared reads never overlap writes (the
// fork-join barrier separates the phases).
unsafe impl<T: Send> Sync for LaneCell<T> {}

impl<T> LaneCell<T> {
    fn new(value: T) -> Self {
        Self(UnsafeCell::new(value))
    }

    /// Exclusive access from the lane that owns this cell for the current
    /// phase.
    ///
    /// # Safety
    ///
    /// No other reference to the contents may exist for the duration.
    #[allow(clippy::mut_from_ref)]
    unsafe fn lane_mut(&self) -> &mut T {
        // SAFETY: uniqueness is this fn's own contract (see `# Safety`).
        unsafe { &mut *self.0.get() }
    }

    /// Shared access during a phase in which no lane mutates this cell.
    ///
    /// # Safety
    ///
    /// No mutable reference to the contents may exist for the duration.
    unsafe fn lane_ref(&self) -> &T {
        // SAFETY: absence of writers is this fn's own contract.
        unsafe { &*self.0.get() }
    }

    fn get_mut(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for LaneCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // SAFETY: `&self` with no phase in flight (Debug runs on the
        // coordinator between decodes).
        unsafe { self.lane_ref() }.fmt(f)
    }
}

/// Per-decoder working set, persistent across `decode` calls.
#[derive(Debug)]
struct ParallelScratch {
    /// State count the buffers are currently sized for (`usize::MAX`
    /// before first use).
    sized_for: usize,
    shard_len: usize,
    /// Resolved double buffer (the sequential engine's table pair).
    cur: TokenTable<TraceId>,
    next: TokenTable<TraceId>,
    /// One pending-token shard per lane.
    shards: Vec<LaneCell<TokenTable<Pending>>>,
    /// Candidate buffers: `candidates[lane][shard]`.
    candidates: Vec<LaneCell<Vec<Vec<Candidate>>>>,
    frontier: Vec<u32>,
    worklist: Vec<u32>,
    gc_roots: Vec<TraceId>,
    gc: CompactScratch,
}

impl ParallelScratch {
    fn new() -> Self {
        Self {
            sized_for: usize::MAX,
            shard_len: 1,
            cur: TokenTable::new(0, TraceId::ROOT),
            next: TokenTable::new(0, TraceId::ROOT),
            shards: Vec::new(),
            candidates: Vec::new(),
            frontier: Vec::new(),
            worklist: Vec::new(),
            gc_roots: Vec::new(),
            gc: CompactScratch::new(),
        }
    }

    /// (Re)builds the tables when the graph size changes; a serving loop
    /// over one graph hits this once.
    fn ensure(&mut self, lanes: usize, num_states: usize) {
        if self.sized_for == num_states && self.shards.len() == lanes {
            return;
        }
        let shard_len = num_states.div_ceil(lanes).max(1);
        self.cur = TokenTable::new(num_states, TraceId::ROOT);
        self.next = TokenTable::new(num_states, TraceId::ROOT);
        self.shards = (0..lanes)
            .map(|s| {
                let base = (s * shard_len).min(num_states);
                let len = num_states.saturating_sub(base).min(shard_len);
                LaneCell::new(TokenTable::new_shard(base as u32, len, PENDING_NONE))
            })
            .collect();
        self.candidates = (0..lanes)
            .map(|_| LaneCell::new(vec![Vec::new(); lanes]))
            .collect();
        self.sized_for = num_states;
        self.shard_len = shard_len;
    }
}

/// How a frame phase is executed across lanes.
trait Fork {
    fn lanes(&self) -> usize;
    /// Runs `f(lane)` for every lane and waits for all of them.
    fn fork(&mut self, f: &(impl Fn(usize) + Sync));
}

/// The serving strategy: a lane lease on the (possibly shared)
/// work-stealing executor. `lanes` is the lease width — the shard count
/// of this decode — independent of how many lanes the pool has or how
/// many other jobs are in its queues.
struct PoolFork<'a> {
    pool: &'a WorkerPool,
    lanes: usize,
}

impl Fork for PoolFork<'_> {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn fork(&mut self, f: &(impl Fn(usize) + Sync)) {
        self.pool.fork_join(self.lanes, f);
    }
}

/// The retired baseline strategy: scoped thread spawns per phase.
struct SpawnFork {
    lanes: usize,
}

impl Fork for SpawnFork {
    fn lanes(&self) -> usize {
        self.lanes
    }

    fn fork(&mut self, f: &(impl Fn(usize) + Sync)) {
        if self.lanes == 1 {
            f(0);
            return;
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.lanes - 1);
            for lane in 1..self.lanes {
                handles.push(scope.spawn(move || f(lane)));
            }
            f(0);
            for handle in handles {
                handle.join().expect("expansion lane panicked");
            }
        });
    }
}

/// Parallel beam-search decoder leasing lanes from a work-stealing
/// [`WorkerPool`].
///
/// The pool may be private ([`ParallelDecoder::new`]) or — the serving
/// shape — shared across any number of decoders and sessions
/// ([`ParallelDecoder::on_pool`]): every [`ParallelDecoder::decode`]
/// call submits its per-shard frame phases to the executor, where idle
/// lanes steal them alongside everyone else's. Working sets are checked
/// out of an internal free list per call, so the decoder is `Sync` and
/// **concurrent decodes proceed concurrently** (they no longer serialize
/// behind a per-decoder lock); results are byte-identical to the
/// sequential decoder for any lane count, pool sharing, and machine.
#[derive(Debug)]
pub struct ParallelDecoder {
    opts: DecodeOptions,
    lanes: usize,
    pool: Arc<WorkerPool>,
    /// Idle working sets; checkout pops, restore pushes (grows to the
    /// peak decode concurrency, like the facade's scratch pool).
    idle: Mutex<Vec<ParallelScratch>>,
}

/// Restores a checked-out [`ParallelScratch`] on drop, panic or not: a
/// panicked decode must not brick the long-lived decoder, and every
/// buffer is epoch-reset/rebuilt by the next `ensure`/`begin_frame`.
struct ScratchLease<'d> {
    decoder: &'d ParallelDecoder,
    scratch: Option<ParallelScratch>,
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.decoder
                .idle
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(scratch);
        }
    }
}

impl ParallelDecoder {
    /// Creates a decoder with a private `num_threads`-lane pool (and as
    /// many token-table shards). Chunk 0 of every phase runs on the
    /// calling thread, so `num_threads - 1` worker threads are spawned; a
    /// one-lane decoder runs fully inline.
    ///
    /// For serving, prefer [`ParallelDecoder::on_pool`] with one shared
    /// executor — private pools put concurrent requests on disjoint
    /// thread sets that oversubscribe the machine.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads == 0`.
    pub fn new(opts: DecodeOptions, num_threads: usize) -> Self {
        assert!(num_threads > 0, "need at least one worker");
        Self::on_pool(opts, num_threads, Arc::new(WorkerPool::new(num_threads)))
    }

    /// Creates a decoder leasing `lanes` shards' worth of work per frame
    /// phase from a shared executor — the serving constructor: all
    /// decoders (and pipelined sessions) on one `pool` share its lanes
    /// through work stealing instead of hoarding private threads.
    ///
    /// `lanes` is the shard count of this decoder's decodes; it is
    /// typically `pool.lanes()` but may differ (results are
    /// byte-identical either way).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn on_pool(opts: DecodeOptions, lanes: usize, pool: Arc<WorkerPool>) -> Self {
        assert!(lanes > 0, "need at least one worker");
        Self {
            opts,
            lanes,
            pool,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Creates a decoder sized to the machine's available parallelism.
    pub fn with_default_lanes(opts: DecodeOptions) -> Self {
        Self::new(opts, WorkerPool::default_lanes())
    }

    /// Lane count (the shard count of every decode).
    pub fn num_threads(&self) -> usize {
        self.lanes
    }

    /// The executor this decoder leases lanes from.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Runs the search on the leased executor lanes; `words`, `cost`,
    /// `best_state`, and `reached_final` match the sequential decoder
    /// exactly.
    ///
    /// Buffers and threads persist across calls: in a serving loop over
    /// one graph the steady state allocates only the per-decode lattice.
    /// Concurrent calls each check out their own working set and share
    /// the executor's lanes.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let scratch = self
            .idle
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(ParallelScratch::new);
        let mut lease = ScratchLease {
            decoder: self,
            scratch: Some(scratch),
        };
        let scratch = lease.scratch.as_mut().expect("scratch present");
        scratch.ensure(self.lanes, wfst.num_states());
        run_search(
            &self.opts,
            PoolFork {
                pool: &self.pool,
                lanes: self.lanes,
            },
            scratch,
            wfst,
            scores,
        )
    }

    /// Runs the search with the retired spawn-per-frame strategy: fresh
    /// buffers and two rounds of scoped thread spawns every frame.
    ///
    /// Kept as the benchmark baseline (`bench_serving` records pool vs
    /// spawn); results are byte-identical to [`ParallelDecoder::decode`].
    pub fn decode_spawning(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let mut scratch = ParallelScratch::new();
        scratch.ensure(self.lanes, wfst.num_states());
        run_search(
            &self.opts,
            SpawnFork { lanes: self.lanes },
            &mut scratch,
            wfst,
            scores,
        )
    }
}

/// The sharded frame loop, generic over the fork strategy.
fn run_search(
    opts: &DecodeOptions,
    mut fork: impl Fork,
    scratch: &mut ParallelScratch,
    wfst: &Wfst,
    scores: &AcousticTable,
) -> DecodeResult {
    let lanes = fork.lanes();
    let shard_len = scratch.shard_len;
    let beam = opts.beam;
    let ParallelScratch {
        cur,
        next,
        shards,
        candidates,
        frontier,
        worklist,
        gc_roots,
        gc,
        ..
    } = scratch;

    let mut lattice = Lattice::new();
    let mut stats = DecodeStats::default();

    cur.begin_frame();
    let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
    cur.relax(wfst.start().0, 0.0, || start_trace);
    let mut scratch_fs = FrameStats::default();
    epsilon_closure(
        wfst,
        cur,
        &mut lattice,
        &mut scratch_fs,
        f32::INFINITY,
        worklist,
    );

    let num_frames = scores.num_frames();
    for frame in 0..num_frames {
        let mut fs = FrameStats {
            active_tokens: cur.len(),
            ..FrameStats::default()
        };
        build_frontier(cur, frontier, beam, opts.max_active);
        fs.expanded_tokens = frontier.len();
        if opts.record_state_accesses {
            for &state in frontier.iter() {
                *stats.state_accesses.entry(state).or_insert(0) += 1;
            }
        }
        let last_frame = frame + 1 == num_frames;

        if lanes == 1 {
            // Single-lane special case (the common shape on small
            // machines): expansion relaxes straight into the resolved
            // table with inline lattice pushes — the sequential frame
            // body on the decoder's persistent buffers. No candidate
            // staging, no shard, no forks: a one-lane pooled decoder is
            // the sequential decoder plus buffer persistence, which is
            // exactly what lets it win serving wall-clock on one core.
            relax_frame(
                wfst,
                cur,
                next,
                frontier,
                &mut lattice,
                &mut fs,
                beam,
                last_frame,
                scores.frame_row(frame),
            );
        } else {
            run_sharded_phases(
                &mut fork, shard_len, beam, last_frame, frame, wfst, scores, cur, shards,
                candidates, frontier, &mut fs,
            );

            // Frame barrier: fold shards (in shard order) into the
            // resolved table, allocating one lattice entry per surviving
            // token — deterministic for any lane count.
            next.begin_frame();
            for cell in shards.iter_mut() {
                let shard = cell.get_mut();
                for &state in shard.active() {
                    let (cost, pending) = shard.get(state).expect("active token is live");
                    let inserted =
                        next.relax(state, cost, || lattice.push(pending.prev, pending.word));
                    debug_assert!(inserted, "shards cover disjoint state ranges");
                    fs.tokens_created += 1;
                }
            }
        }

        let closure_threshold = if last_frame {
            f32::INFINITY
        } else {
            next.best() + beam
        };
        epsilon_closure(
            wfst,
            next,
            &mut lattice,
            &mut fs,
            closure_threshold,
            worklist,
        );
        std::mem::swap(cur, next);
        stats.frames.push(fs);
        if cur.is_empty() {
            break;
        }
        if !last_frame {
            maybe_gc(
                opts.lattice_gc_interval,
                frame,
                cur,
                &mut lattice,
                gc_roots,
                frontier,
                gc,
            );
        }
    }

    finish(wfst, cur, frontier, lattice, stats)
}

/// The two forked phases of one frame: expansion fan-out into per-lane
/// candidate rows, then the lock-free sharded relax.
#[allow(clippy::too_many_arguments)]
fn run_sharded_phases(
    fork: &mut impl Fork,
    shard_len: usize,
    beam: f32,
    last_frame: bool,
    frame: usize,
    wfst: &Wfst,
    scores: &AcousticTable,
    cur: &TokenTable<TraceId>,
    shards: &mut [LaneCell<TokenTable<Pending>>],
    candidates: &mut [LaneCell<Vec<Vec<Candidate>>>],
    frontier: &[u32],
    fs: &mut FrameStats,
) {
    let lanes = fork.lanes();
    // Phase 1: fan the frontier out; each lane fills its own candidate
    // row, routed by destination shard. Every lane first clears its row,
    // so stale candidates from a wider previous frame cannot leak in.
    let chunk = frontier.len().div_ceil(lanes).max(1);
    {
        let cells: &[LaneCell<Vec<Vec<Candidate>>>] = candidates;
        fork.fork(&|lane| {
            // SAFETY: each lane writes only its own candidate row.
            let row = unsafe { cells[lane].lane_mut() };
            for bucket in row.iter_mut() {
                bucket.clear();
            }
            let lo = (lane * chunk).min(frontier.len());
            let hi = ((lane + 1) * chunk).min(frontier.len());
            for &state in &frontier[lo..hi] {
                let cost0 = cur.cost(state);
                let trace = cur.payload(state);
                for arc in wfst.emitting_arcs(StateId(state)) {
                    let shard = (arc.dest.0 as usize / shard_len).min(lanes - 1);
                    row[shard].push(Candidate {
                        dest: arc.dest.0,
                        cost: cost0 + arc.weight + scores.cost(frame, arc.ilabel),
                        prev: trace,
                        word: arc.olabel,
                    });
                }
            }
        });
    }
    fs.arcs_traversed += candidates
        .iter_mut()
        .map(|cell| cell.get_mut().iter().map(Vec::len).sum::<usize>())
        .sum::<usize>();

    // Phase 2: lock-free relax — lane `s` exclusively owns shard `s` and
    // drains every lane's bucket for it, in lane order (the sequential
    // relax order restricted to the shard's states).
    {
        let cells: &[LaneCell<Vec<Vec<Candidate>>>] = candidates;
        let shard_cells: &[LaneCell<TokenTable<Pending>>] = shards;
        fork.fork(&|lane| {
            // SAFETY: each lane mutates only its own shard; candidate
            // rows are read-only in this phase (writes ended at the
            // phase-1 barrier).
            let shard = unsafe { shard_cells[lane].lane_mut() };
            shard.begin_frame();
            for cell in cells {
                // SAFETY: candidate cells are read-only in this phase.
                let row = unsafe { cell.lane_ref() };
                for c in &row[lane] {
                    if !last_frame && c.cost > shard.best() + beam {
                        continue;
                    }
                    shard.relax(c.dest, c.cost, || Pending {
                        prev: c.prev,
                        word: c.word,
                    });
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ViterbiDecoder;
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn workload() -> (Wfst, AcousticTable) {
        let w = SynthWfst::generate(&SynthConfig::with_states(3_000)).unwrap();
        let scores = AcousticTable::random(25, w.num_phones() as usize, (0.5, 4.0), 17);
        (w, scores)
    }

    #[test]
    fn matches_sequential_decoder() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        for threads in [1, 2, 4] {
            let par = ParallelDecoder::new(opts.clone(), threads).decode(&w, &scores);
            assert_eq!(par.cost, seq.cost, "{threads} threads");
            assert_eq!(par.words, seq.words, "{threads} threads");
            assert_eq!(par.best_state, seq.best_state);
            assert_eq!(par.reached_final, seq.reached_final);
        }
    }

    #[test]
    fn spawning_strategy_matches_pool() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        for threads in [1, 3] {
            let d = ParallelDecoder::new(opts.clone(), threads);
            let pooled = d.decode(&w, &scores);
            let spawned = d.decode_spawning(&w, &scores);
            assert_eq!(pooled.cost, spawned.cost);
            assert_eq!(pooled.words, spawned.words);
            assert_eq!(pooled.lattice.len(), spawned.lattice.len());
        }
    }

    #[test]
    fn parallel_runs_are_reproducible() {
        let (w, scores) = workload();
        let d = ParallelDecoder::new(DecodeOptions::with_beam(6.0), 4);
        let a = d.decode(&w, &scores);
        let b = d.decode(&w, &scores);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.words, b.words);
        assert_eq!(a.lattice.len(), b.lattice.len());
    }

    #[test]
    fn persistent_buffers_survive_graph_changes() {
        let opts = DecodeOptions::with_beam(6.0);
        let d = ParallelDecoder::new(opts.clone(), 2);
        for states in [500usize, 3_000, 500] {
            let w = SynthWfst::generate(&SynthConfig::with_states(states)).unwrap();
            let scores = AcousticTable::random(15, w.num_phones() as usize, (0.5, 4.0), 23);
            let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
            let par = d.decode(&w, &scores);
            assert_eq!(par.cost, seq.cost, "{states} states");
            assert_eq!(par.words, seq.words, "{states} states");
        }
    }

    #[test]
    fn concurrent_decodes_on_one_decoder_run_concurrently_and_match() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let d = ParallelDecoder::new(opts, 2);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..3 {
                handles.push(scope.spawn(|| d.decode(&w, &scores)));
            }
            for handle in handles {
                let par = handle.join().expect("decode thread");
                assert_eq!(par.cost, seq.cost);
                assert_eq!(par.words, seq.words);
            }
        });
        // Each concurrent decode checked out its own working set; the
        // free list is bounded by the peak concurrency.
        let idle = d.idle.lock().unwrap().len();
        assert!((1..=3).contains(&idle), "{idle} idle working sets");
    }

    #[test]
    fn decoders_sharing_one_executor_stay_byte_identical() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let pool = Arc::new(WorkerPool::new(3));
        let decoders: Vec<ParallelDecoder> = (0..3)
            .map(|_| ParallelDecoder::on_pool(opts.clone(), 3, Arc::clone(&pool)))
            .collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for d in &decoders {
                let (w, scores) = (&w, &scores);
                handles.push(scope.spawn(move || {
                    let mut last = None;
                    for _ in 0..2 {
                        last = Some(d.decode(w, scores));
                    }
                    last.expect("decoded")
                }));
            }
            for handle in handles {
                let par = handle.join().expect("decode thread");
                assert_eq!(par.cost, seq.cost);
                assert_eq!(par.words, seq.words);
                assert_eq!(par.best_state, seq.best_state);
            }
        });
    }

    #[test]
    fn lease_width_may_differ_from_pool_lanes() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let pool = Arc::new(WorkerPool::new(2));
        for lanes in [1usize, 3, 5] {
            let d = ParallelDecoder::on_pool(opts.clone(), lanes, Arc::clone(&pool));
            let par = d.decode(&w, &scores);
            assert_eq!(par.cost, seq.cost, "{lanes} lanes");
            assert_eq!(par.words, seq.words, "{lanes} lanes");
        }
    }

    #[test]
    fn decoder_survives_a_panicked_decode() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        for threads in [1, 2] {
            let d = ParallelDecoder::new(opts.clone(), threads);
            // Scores with too few phone columns panic mid-search (out of
            // range) while a working set is checked out...
            let bad = AcousticTable::random(5, 1, (0.5, 4.0), 3);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                d.decode(&w, &bad);
            }));
            assert!(outcome.is_err(), "truncated score table must panic");
            // ...but the long-lived decoder must recover and keep serving.
            let par = d.decode(&w, &scores);
            assert_eq!(par.cost, seq.cost, "{threads} threads");
            assert_eq!(par.words, seq.words, "{threads} threads");
        }
    }

    #[test]
    fn stats_match_sequential() {
        let (w, scores) = workload();
        let opts = DecodeOptions::with_beam(6.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let par = ParallelDecoder::new(opts, 3).decode(&w, &scores);
        assert_eq!(seq.stats.frames.len(), par.stats.frames.len());
        for (s, p) in seq.stats.frames.iter().zip(&par.stats.frames) {
            assert_eq!(s.expanded_tokens, p.expanded_tokens);
            assert_eq!(s.arcs_traversed, p.arcs_traversed);
        }
    }

    #[test]
    fn more_threads_than_states_still_works() {
        let (w, scores) = {
            let w = SynthWfst::generate(&SynthConfig::with_states(50)).unwrap();
            let scores = AcousticTable::random(6, w.num_phones() as usize, (0.5, 4.0), 5);
            (w, scores)
        };
        let opts = DecodeOptions::with_beam(8.0);
        let seq = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let par = ParallelDecoder::new(opts, 64).decode(&w, &scores);
        assert_eq!(par.cost, seq.cost);
        assert_eq!(par.words, seq.words);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        ParallelDecoder::new(DecodeOptions::default(), 0);
    }
}
