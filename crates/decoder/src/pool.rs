//! Persistent resources for the serving path: a shared work-stealing
//! executor and a checkout/restore pool of [`DecodeScratch`] working
//! sets.
//!
//! The paper's accelerator serves recognition as a *shared* resource: one
//! datapath multiplexed across the whole workload, with everything warm —
//! tables, DMA buffers, the GPU's score batches all persist across
//! utterances (Section VI). This module gives the software decoders the
//! same properties:
//!
//! * [`WorkerPool`] is a long-lived **work-stealing executor**: one
//!   global injector plus per-lane deques, shared by any number of
//!   concurrent submitters through `&self`. A frame phase is one
//!   fork-join job whose chunk tasks land in the injector; parked lanes
//!   pick them up (batch-grabbing siblings into their own deque so idle
//!   lanes can steal), and the submitting thread executes chunk 0 inline
//!   and *steals back* any of its still-queued chunks, so a busy pool
//!   degrades gracefully to inline execution instead of queueing up.
//!   Concurrent decodes therefore share all lanes instead of serializing
//!   behind per-decoder pools. [`WorkerPool::stats`] and
//!   [`WorkerPool::queue_depth`] expose the scheduler's counters and live
//!   backlog — the saturation signal the serving runtime's QoS monitor
//!   samples.
//! * [`ScratchPool`] recycles warmed [`DecodeScratch`] working sets, so a
//!   serving facade that decodes request after request performs zero
//!   steady-state allocations in the frame loop: checkout pops a warm
//!   scratch, restore pushes it back. [`ScratchPool::stats`] exposes the
//!   cold/warm checkout split, and every operation recovers from a
//!   poisoned lock (a panicked decode must not brick the pool).

use crate::search::DecodeScratch;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One fork-join job in flight: the erased closure plus its completion
/// state. Lives on the submitting thread's stack for the duration of
/// [`WorkerPool::fork_join`], which does not return until `pending`
/// reaches zero — the invariant that makes the raw pointers in [`Task`]
/// sound.
struct JobHeader {
    /// Trampoline recovering the concrete closure type.
    run: unsafe fn(*const (), usize),
    /// The borrowed closure, erased.
    ctx: *const (),
    /// Chunks not yet finished executing.
    pending: AtomicUsize,
    /// Some chunk's closure panicked; re-raised on the submitter.
    panicked: AtomicBool,
}

/// A schedulable unit: one chunk of one job.
#[derive(Clone, Copy)]
struct Task {
    header: *const JobHeader,
    chunk: u32,
}

// SAFETY: the header pointer crosses threads, but a task exists in the
// queues only while its job's `fork_join` call is blocked on the stack
// that owns the header.
unsafe impl Send for Task {}

/// Scheduling counters accumulated under the queue mutex — the
/// executor's observable saturation signal (see [`WorkerPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerPoolStats {
    /// Fork-join jobs whose chunk tasks entered the shared queues
    /// (single-chunk jobs and every job on a one-lane pool run inline
    /// without touching the scheduler, and are not counted).
    pub jobs_submitted: u64,
    /// Chunk tasks pushed to the global injector (chunk 0 of every job
    /// runs inline on its submitter and is never queued).
    pub tasks_queued: u64,
    /// Tasks executed by parked worker lanes (from their own deque, the
    /// injector, or a victim's deque) rather than the submitter.
    pub tasks_taken_by_lanes: u64,
    /// The subset of [`WorkerPoolStats::tasks_taken_by_lanes`] an idle
    /// lane stole from another lane's deque.
    pub tasks_stolen: u64,
    /// Still-queued tasks a submitter reclaimed (steal-back) because no
    /// lane had picked them up — a direct saturation signal: a busy pool
    /// degrades its submitters to inline execution.
    pub tasks_stolen_back: u64,
    /// Deepest the combined queues (injector + every lane deque) have
    /// been, in tasks, sampled at each job submission.
    pub peak_queue_depth: usize,
}

/// Queues shared by all lanes and submitters, guarded by one mutex (the
/// scheduler holds it only for queue pushes/pops, never while a task
/// runs).
struct ExecState {
    /// Global injector: submitters push chunk tasks here.
    injector: VecDeque<Task>,
    /// Per-lane deques: a lane that pops a job from the injector
    /// batch-grabs the job's queued siblings into its own deque, where
    /// idle lanes (and the submitter's steal-back) can take them.
    lane_deques: Vec<VecDeque<Task>>,
    /// Scheduling counters; updated under the mutex the queue operations
    /// already hold, so observing them costs nothing extra.
    counters: WorkerPoolStats,
    shutdown: bool,
}

impl ExecState {
    /// Tasks currently sitting in the injector plus every lane deque.
    fn queue_depth(&self) -> usize {
        self.injector.len() + self.lane_deques.iter().map(VecDeque::len).sum::<usize>()
    }

    /// Next task for a worker lane: own deque first, then the injector
    /// (batch-grabbing contiguous siblings), then steal from the deepest
    /// other lane.
    fn take_for_lane(&mut self, lane: usize) -> Option<Task> {
        if let Some(task) = self.lane_deques[lane].pop_front() {
            self.counters.tasks_taken_by_lanes += 1;
            return Some(task);
        }
        if let Some(task) = self.injector.pop_front() {
            while let Some(next) = self.injector.front() {
                if !std::ptr::eq(next.header, task.header) {
                    break;
                }
                let sibling = self.injector.pop_front().expect("front exists");
                self.lane_deques[lane].push_back(sibling);
            }
            self.counters.tasks_taken_by_lanes += 1;
            return Some(task);
        }
        let victim = (0..self.lane_deques.len())
            .filter(|&l| l != lane)
            .max_by_key(|&l| self.lane_deques[l].len())?;
        let stolen = self.lane_deques[victim].pop_front();
        if stolen.is_some() {
            self.counters.tasks_taken_by_lanes += 1;
            self.counters.tasks_stolen += 1;
        }
        stolen
    }

    /// Steal-back for a submitter: any still-queued task of *its own*
    /// job, wherever the scheduler put it.
    fn take_for_job(&mut self, header: *const JobHeader) -> Option<Task> {
        if let Some(pos) = self
            .injector
            .iter()
            .position(|t| std::ptr::eq(t.header, header))
        {
            self.counters.tasks_stolen_back += 1;
            return self.injector.remove(pos);
        }
        for deque in &mut self.lane_deques {
            if let Some(pos) = deque.iter().position(|t| std::ptr::eq(t.header, header)) {
                self.counters.tasks_stolen_back += 1;
                return deque.remove(pos);
            }
        }
        None
    }
}

struct ExecShared {
    state: Mutex<ExecState>,
    /// Signalled when tasks are published (lanes wait here).
    work: Condvar,
    /// Signalled when a job's last task finishes (submitters wait here).
    done: Condvar,
}

impl ExecShared {
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        // A panicked task is caught before the lock is re-taken, so the
        // queues can never be observed mid-mutation; recovering from a
        // poisoned lock is safe and keeps the shared executor serving.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Runs one task and retires it: panics are recorded on the job, the
/// pending count drops, and the job's submitter is woken on the last
/// task.
fn execute_task(shared: &ExecShared, task: Task) {
    // SAFETY: the job header (and the closure it points to) outlives the
    // task: `fork_join` keeps both alive until `pending` reaches zero,
    // which cannot happen before this function's `fetch_sub`.
    let header = unsafe { &*task.header };
    let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
        (header.run)(header.ctx, task.chunk as usize)
    }));
    if outcome.is_err() {
        header.panicked.store(true, Ordering::Relaxed);
    }
    if header.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last task: wake the submitter. The lock orders the wake against
        // the submitter's check-then-wait, so the wakeup cannot be lost;
        // after this point the job header is never touched again.
        let _guard = shared.lock();
        shared.done.notify_all();
    }
}

fn worker_loop(shared: &ExecShared, lane: usize) {
    loop {
        let task = {
            let mut state = shared.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(task) = state.take_for_lane(lane) {
                    break task;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        execute_task(shared, task);
    }
}

/// Long-lived work-stealing executor, shared across decoders and
/// sessions.
///
/// A pool of `lanes` executes fork-join jobs submitted through
/// [`WorkerPool::fork_join`] **by any number of threads concurrently**
/// (`&self`): each job's chunk tasks go to a global injector, are pulled
/// by parked worker lanes (which batch-grab sibling chunks into per-lane
/// deques that idle lanes steal from), and the submitting thread runs
/// chunk 0 inline then steals back whatever of its job is still queued.
/// Concurrent requests therefore *share* all lanes — the paper's
/// one-datapath-many-users serving shape — instead of each request
/// serializing behind a private pool.
///
/// A one-lane pool spawns no threads at all and executes every job
/// inline with zero synchronization.
///
/// # Example
///
/// ```
/// use asr_decoder::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.fork_join(4, &|chunk| {
///     hits.fetch_add(1 << chunk, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 0b1111);
/// ```
pub struct WorkerPool {
    shared: Arc<ExecShared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `lanes` execution lanes, spawning `lanes - 1`
    /// worker threads (submitters always participate as the extra lane).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        let workers = lanes - 1;
        let shared = Arc::new(ExecShared {
            state: Mutex::new(ExecState {
                injector: VecDeque::with_capacity(64),
                lane_deques: (0..workers).map(|_| VecDeque::with_capacity(16)).collect(),
                counters: WorkerPoolStats::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asr-exec-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn executor worker")
            })
            .collect();
        Self {
            shared,
            handles,
            lanes,
        }
    }

    /// The number of execution lanes (worker threads plus the
    /// submitter's inline lane).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The default lane count for this machine: the available hardware
    /// parallelism, `1` when it cannot be determined.
    pub fn default_lanes() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Tasks currently waiting in the shared queues (the global injector
    /// plus every lane deque) — the executor's live saturation gauge. A
    /// pool keeping up reads `0` almost always: chunks are grabbed as
    /// fast as submitters publish them. Sustained depth means offered
    /// load exceeds lane capacity, which is exactly the signal the
    /// serving runtime's QoS pressure monitor samples.
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queue_depth()
    }

    /// Scheduling counters since construction: jobs and tasks through
    /// the shared queues, the lane/steal split, submitter steal-backs,
    /// and the peak combined queue depth. Counters cover scheduled jobs
    /// only — single-chunk jobs and every job on a one-lane pool run
    /// inline without touching the queues.
    pub fn stats(&self) -> WorkerPoolStats {
        self.shared.lock().counters
    }

    /// Runs `f(chunk)` once for every `chunk in 0..chunks`, across the
    /// pool's lanes and the calling thread, and returns when all chunks
    /// have finished — the frame barrier of the parallel decoder.
    ///
    /// The call is safe to issue from any number of threads at once:
    /// chunks from concurrent jobs interleave in the shared queues and
    /// idle lanes steal whatever is available. The caller always executes
    /// chunk 0 inline and reclaims its remaining chunks if no lane has
    /// picked them up, so a saturated pool degrades to inline execution
    /// rather than blocking. After warm-up the steady state performs no
    /// heap allocation.
    ///
    /// Tasks must not themselves call `fork_join` on the same pool (the
    /// decoders never do): a worker blocked on a nested join could wait
    /// on work only it would execute.
    ///
    /// # Panics
    ///
    /// Re-raises a panic if `f` panicked on any chunk — after every other
    /// chunk has finished, so data borrowed by the closure stays pinned
    /// throughout.
    pub fn fork_join<F: Fn(usize) + Sync>(&self, chunks: usize, f: &F) {
        if chunks == 0 {
            return;
        }
        if self.handles.is_empty() || chunks == 1 {
            // No workers (one-lane pool) or nothing to overlap: run
            // inline with zero synchronization.
            for chunk in 0..chunks {
                f(chunk);
            }
            return;
        }
        /// Recovers the concrete closure type on an executing lane.
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), chunk: usize) {
            // SAFETY: `ctx` was erased from an `&F` that `fork_join`
            // keeps borrowed until its completion barrier.
            let f = unsafe { &*(ctx.cast::<F>()) };
            f(chunk);
        }
        let header = JobHeader {
            run: trampoline::<F>,
            ctx: (f as *const F).cast(),
            pending: AtomicUsize::new(chunks),
            panicked: AtomicBool::new(false),
        };
        {
            let mut state = self.shared.lock();
            for chunk in 1..chunks {
                state.injector.push_back(Task {
                    header: &header,
                    chunk: chunk as u32,
                });
            }
            state.counters.jobs_submitted += 1;
            state.counters.tasks_queued += (chunks - 1) as u64;
            let depth = state.queue_depth();
            if depth > state.counters.peak_queue_depth {
                state.counters.peak_queue_depth = depth;
            }
            if chunks == 2 {
                self.shared.work.notify_one();
            } else {
                self.shared.work.notify_all();
            }
        }
        // Chunk 0 runs inline; a panic here must still wait for the other
        // chunks before unwinding releases the borrows they're using.
        let local = catch_unwind(AssertUnwindSafe(|| f(0)));
        header.pending.fetch_sub(1, Ordering::AcqRel);
        // Steal back whatever of this job no lane has picked up yet.
        loop {
            let task = self.shared.lock().take_for_job(&header);
            match task {
                Some(task) => execute_task(&self.shared, task),
                None => break,
            }
        }
        if header.pending.load(Ordering::Acquire) != 0 {
            let mut state = self.shared.lock();
            while header.pending.load(Ordering::Acquire) != 0 {
                state = self
                    .shared
                    .done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if let Err(payload) = local {
            resume_unwind(payload);
        }
        assert!(
            !header.panicked.load(Ordering::Relaxed),
            "worker pool lane panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Checkout/restore accounting for a [`ScratchPool`] (see
/// [`ScratchPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchPoolStats {
    /// Checkouts served by allocating a fresh scratch (pool was empty:
    /// first use, or deeper concurrency than ever before).
    pub cold_checkouts: u64,
    /// Checkouts served by a warm scratch from the pool.
    pub warm_checkouts: u64,
    /// Scratches returned to the pool.
    pub restores: u64,
}

impl ScratchPoolStats {
    /// Total checkouts, cold and warm.
    pub fn checkouts(&self) -> u64 {
        self.cold_checkouts + self.warm_checkouts
    }
}

/// A checkout/restore pool of warmed [`DecodeScratch`] working sets.
///
/// The serving runtime holds one of these per decoding graph: every
/// `recognize` call and every session checks a scratch out, and returns
/// it when done. After the pool's high-water mark is reached, the steady
/// state allocates nothing — checkout is a `Vec::pop`, restore a
/// `Vec::push` within capacity, and the scratch itself keeps the token
/// tables warm (see `tests/alloc_free.rs` and the facade's
/// `facade_alloc` test). The cold/warm split is observable through
/// [`ScratchPool::stats`], so a serving loop can verify it stopped
/// paying cold checkouts.
///
/// Thread-safe: concurrent sessions each pop their own scratch; the
/// mutex is held only for the pop/push itself, and every operation
/// recovers from a poisoned lock (the free list is always valid — a
/// panic can at worst lose the scratch that was checked out).
#[derive(Debug)]
pub struct ScratchPool {
    num_states: usize,
    idle: Mutex<Vec<DecodeScratch>>,
    cold_checkouts: AtomicU64,
    warm_checkouts: AtomicU64,
    restores: AtomicU64,
}

impl ScratchPool {
    /// Creates an empty pool sizing scratches for `num_states`-state
    /// graphs.
    pub fn new(num_states: usize) -> Self {
        Self {
            num_states,
            idle: Mutex::new(Vec::new()),
            cold_checkouts: AtomicU64::new(0),
            warm_checkouts: AtomicU64::new(0),
            restores: AtomicU64::new(0),
        }
    }

    /// Recovers the free list even if a holder of the lock panicked: the
    /// `Vec` push/pop operations inside never leave it invalid.
    fn idle_list(&self) -> MutexGuard<'_, Vec<DecodeScratch>> {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The state count scratches are sized for.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of scratches currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.idle_list().len()
    }

    /// Checkout/restore counters since construction. In a warmed serving
    /// loop `cold_checkouts` stops growing: every request rides a
    /// restored scratch.
    pub fn stats(&self) -> ScratchPoolStats {
        ScratchPoolStats {
            cold_checkouts: self.cold_checkouts.load(Ordering::Relaxed),
            warm_checkouts: self.warm_checkouts.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
        }
    }

    /// Takes a scratch out of the pool, allocating a fresh one only when
    /// the pool is empty (first use, or more concurrent checkouts than
    /// ever before). The cold/warm split is recorded in
    /// [`ScratchPool::stats`].
    pub fn checkout(&self) -> DecodeScratch {
        let recycled = self.idle_list().pop();
        match recycled {
            Some(scratch) => {
                self.warm_checkouts.fetch_add(1, Ordering::Relaxed);
                scratch
            }
            None => {
                self.cold_checkouts.fetch_add(1, Ordering::Relaxed);
                DecodeScratch::new(self.num_states)
            }
        }
    }

    /// Returns a scratch to the pool for the next checkout to reuse.
    pub fn restore(&self, scratch: DecodeScratch) {
        self.restores.fetch_add(1, Ordering::Relaxed);
        self.idle_list().push(scratch);
    }

    /// Checks a scratch out as an RAII guard that restores it on drop.
    pub fn scratch(&self) -> PooledScratch<'_> {
        PooledScratch {
            pool: self,
            scratch: Some(self.checkout()),
        }
    }
}

/// RAII guard over a checked-out [`DecodeScratch`]; derefs to the scratch
/// and restores it to the pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<DecodeScratch>,
}

impl Deref for PooledScratch<'_> {
    type Target = DecodeScratch;

    fn deref(&self) -> &DecodeScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut DecodeScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.restore(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.fork_join(4, &|chunk| {
            let prev = mask.fetch_or(1 << chunk, Ordering::SeqCst);
            assert_eq!(prev & (1 << chunk), 0, "chunk {chunk} ran twice");
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn fork_join_is_a_barrier_between_jobs() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for round in 0..50 {
            pool.fork_join(3, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), (round + 1) * 3);
        }
    }

    #[test]
    fn more_chunks_than_lanes_all_run() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.fork_join(10, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_lane_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        let thread_id = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        pool.fork_join(3, &|_| {
            assert_eq!(std::thread::current().id(), thread_id);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn chunk_panic_propagates_to_submitter() {
        let outcome = catch_unwind(|| {
            let pool = WorkerPool::new(2);
            pool.fork_join(2, &|chunk| {
                if chunk == 1 {
                    panic!("chunk failure");
                }
            });
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = WorkerPool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.fork_join(2, &|chunk| {
                if chunk == 1 {
                    panic!("transient failure");
                }
            });
        }));
        // The pool still works after the failed job.
        let counter = AtomicUsize::new(0);
        pool.fork_join(2, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let local = AtomicUsize::new(0);
                    pool.fork_join(3, &|_| {
                        local.fetch_add(1, Ordering::SeqCst);
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                    // The join is per-job even with three other
                    // submitters interleaving tasks in the same queues.
                    assert_eq!(local.load(Ordering::SeqCst), 3);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("submitter thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 3);
    }

    #[test]
    fn counters_track_jobs_and_task_ownership() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.stats(), WorkerPoolStats::default());
        assert_eq!(pool.queue_depth(), 0);
        for _ in 0..20 {
            pool.fork_join(4, &|_| {});
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_submitted, 20);
        assert_eq!(stats.tasks_queued, 20 * 3, "chunk 0 is never queued");
        // Every queued task was retired by exactly one side.
        assert_eq!(
            stats.tasks_taken_by_lanes + stats.tasks_stolen_back,
            stats.tasks_queued
        );
        assert!(stats.tasks_stolen <= stats.tasks_taken_by_lanes);
        assert!(stats.peak_queue_depth >= 1);
        assert_eq!(pool.queue_depth(), 0, "queues drain when the pool is idle");
    }

    #[test]
    fn inline_paths_do_not_touch_the_scheduler() {
        // One-lane pool: every job runs inline, nothing is counted.
        let one = WorkerPool::new(1);
        one.fork_join(8, &|_| {});
        assert_eq!(one.stats(), WorkerPoolStats::default());
        // Single-chunk jobs skip the queues even on a multi-lane pool.
        let two = WorkerPool::new(2);
        two.fork_join(1, &|_| {});
        assert_eq!(two.stats(), WorkerPoolStats::default());
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool = ScratchPool::new(256);
        assert_eq!(pool.idle(), 0);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.restore(a);
        pool.restore(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.idle(), 1, "checkout reuses an idle scratch");
    }

    #[test]
    fn scratch_pool_stats_split_cold_from_warm() {
        let pool = ScratchPool::new(64);
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(
            pool.stats(),
            ScratchPoolStats {
                cold_checkouts: 2,
                warm_checkouts: 0,
                restores: 0
            }
        );
        pool.restore(a);
        pool.restore(b);
        let c = pool.checkout();
        pool.restore(c);
        let stats = pool.stats();
        assert_eq!(stats.cold_checkouts, 2, "warm pool stops allocating");
        assert_eq!(stats.warm_checkouts, 1);
        assert_eq!(stats.restores, 3);
        assert_eq!(stats.checkouts(), 3);
    }

    #[test]
    fn scratch_pool_recovers_from_a_poisoned_lock() {
        let pool = ScratchPool::new(16);
        pool.restore(DecodeScratch::new(16));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = pool.idle.lock().expect("not yet poisoned");
                panic!("poison the scratch pool lock");
            });
            assert!(handle.join().is_err());
        });
        assert!(pool.idle.lock().is_err(), "lock is poisoned");
        // Every operation keeps serving through the recovered guard.
        assert_eq!(pool.idle(), 1);
        let scratch = pool.checkout();
        pool.restore(scratch);
        {
            let _guard = pool.scratch();
        }
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().warm_checkouts, 2);
    }

    #[test]
    fn pooled_scratch_guard_restores_on_drop() {
        let pool = ScratchPool::new(64);
        {
            let mut guard = pool.scratch();
            guard.ensure(64);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
    }
}
