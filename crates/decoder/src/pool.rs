//! Persistent resources for the serving path: a long-lived fork-join
//! worker pool and a checkout/restore pool of [`DecodeScratch`] working
//! sets.
//!
//! The paper's end-to-end system (Section VI) wins by keeping everything
//! warm: the accelerator's tables, the DMA buffers, and the GPU's score
//! batches all persist across utterances, so serving a request costs only
//! the work of that request. This module gives the software decoders the
//! same property:
//!
//! * [`WorkerPool`] keeps decode threads alive across frames *and*
//!   utterances, replacing the thread-per-frame spawns the parallel
//!   decoder used to pay. A frame phase is one fork-join "job" announced
//!   under a mutex and picked up by parked lanes — two condvar signals per
//!   phase instead of two thread spawns per lane.
//! * [`ScratchPool`] recycles warmed [`DecodeScratch`] working sets, so a
//!   serving facade that decodes request after request performs zero
//!   steady-state allocations in the frame loop: checkout pops a warm
//!   scratch, restore pushes it back.

use crate::search::DecodeScratch;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A fork-join job: an erased closure pointer plus its trampoline.
///
/// The pointer is only dereferenced between publication and the final
/// barrier of [`WorkerPool::run`], while the borrowed closure is pinned on
/// the coordinator's stack.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const (), usize),
    ctx: *const (),
}

// SAFETY: the context pointer crosses threads, but `WorkerPool::run` does
// not return (or unwind) until every lane has finished with it.
unsafe impl Send for Job {}

/// Coordination state shared between the coordinator and the lanes.
struct PoolShared {
    slot: Mutex<JobSlot>,
    /// Signalled when a new job is published (lanes wait here).
    work: Condvar,
    /// Signalled when the last lane finishes (the coordinator waits here).
    done: Condvar,
}

struct JobSlot {
    /// Monotonic job counter; lanes run each sequence number once.
    seq: u64,
    job: Option<Job>,
    /// Worker lanes still running the current job.
    remaining: usize,
    /// A lane's closure panicked; re-raised on the coordinator.
    panicked: bool,
    shutdown: bool,
}

/// Long-lived fork-join worker pool.
///
/// A pool of `lanes` executes closures of the form `f(lane)` for
/// `lane in 0..lanes`: lane 0 runs inline on the calling thread (so a
/// one-lane pool has **zero** synchronization overhead and spawns no
/// threads at all), lanes `1..` run on persistent worker threads that park
/// between jobs. [`WorkerPool::run`] returns only after every lane has
/// finished — the frame barrier of the parallel decoder.
///
/// # Example
///
/// ```
/// use asr_decoder::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let mut pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(&|lane| {
///     hits.fetch_add(1 << lane, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 0b1111);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `lanes` execution lanes (spawning `lanes - 1`
    /// worker threads; lane 0 is the caller).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                seq: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asr-decode-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn decode worker")
            })
            .collect();
        Self {
            shared,
            handles,
            lanes,
        }
    }

    /// The number of execution lanes (including the caller's lane 0).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The default lane count for this machine: the available hardware
    /// parallelism, `1` when it cannot be determined.
    pub fn default_lanes() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Runs `f(lane)` once per lane and waits for all lanes to finish.
    ///
    /// `&mut self` guarantees exclusive use of the pool for the duration,
    /// which is what makes handing stack-borrowed closures to the
    /// persistent threads sound.
    ///
    /// # Panics
    ///
    /// Re-raises a panic if `f` panicked on any lane (after every other
    /// lane has finished, so borrowed data stays pinned throughout).
    pub fn run<F: Fn(usize) + Sync>(&mut self, f: &F) {
        if self.handles.is_empty() {
            f(0);
            return;
        }
        /// Recovers the concrete closure type on a worker lane.
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), lane: usize) {
            // SAFETY: `ctx` was erased from an `&F` that `run` keeps
            // borrowed until after the completion barrier below.
            let f = unsafe { &*(ctx.cast::<F>()) };
            f(lane);
        }
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.seq += 1;
            slot.job = Some(Job {
                run: trampoline::<F>,
                ctx: (f as *const F).cast(),
            });
            slot.remaining = self.handles.len();
            slot.panicked = false;
            self.shared.work.notify_all();
        }
        // Lane 0 runs inline; a panic here must still wait for the other
        // lanes before unwinding releases the borrows they're using.
        let local = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut slot = self.shared.slot.lock().expect("pool lock");
        while slot.remaining != 0 {
            slot = self.shared.done.wait(slot).expect("pool lock");
        }
        slot.job = None;
        let lane_panicked = slot.panicked;
        drop(slot);
        if let Err(payload) = local {
            resume_unwind(payload);
        }
        assert!(!lane_panicked, "worker pool lane panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = match self.shared.slot.lock() {
                Ok(slot) => slot,
                Err(poisoned) => poisoned.into_inner(),
            };
            slot.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, lane: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.seq != seen {
                    seen = slot.seq;
                    break slot.job.expect("published job");
                }
                slot = shared.work.wait(slot).expect("pool lock");
            }
        };
        // SAFETY: the coordinator keeps the closure alive until the
        // barrier below observes `remaining == 0`.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ctx, lane) }));
        let mut slot = shared.slot.lock().expect("pool lock");
        if outcome.is_err() {
            slot.panicked = true;
        }
        slot.remaining -= 1;
        if slot.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// A checkout/restore pool of warmed [`DecodeScratch`] working sets.
///
/// The serving facade holds one of these per decoding graph: every
/// `recognize` call and every streaming session checks a scratch out, and
/// returns it when done. After the pool's high-water mark is reached, the
/// steady state allocates nothing — checkout is a `Vec::pop`, restore a
/// `Vec::push` within capacity, and the scratch itself keeps the token
/// tables warm (see `tests/alloc_free.rs` and the facade's
/// `facade_alloc` test).
///
/// Thread-safe: concurrent sessions each pop their own scratch; the mutex
/// is held only for the pop/push itself.
#[derive(Debug)]
pub struct ScratchPool {
    num_states: usize,
    idle: Mutex<Vec<DecodeScratch>>,
}

impl ScratchPool {
    /// Creates an empty pool sizing scratches for `num_states`-state
    /// graphs.
    pub fn new(num_states: usize) -> Self {
        Self {
            num_states,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// The state count scratches are sized for.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of scratches currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.idle.lock().expect("scratch pool lock").len()
    }

    /// Takes a scratch out of the pool, allocating a fresh one only when
    /// the pool is empty (first use, or more concurrent checkouts than
    /// ever before).
    pub fn checkout(&self) -> DecodeScratch {
        let recycled = self.idle.lock().expect("scratch pool lock").pop();
        recycled.unwrap_or_else(|| DecodeScratch::new(self.num_states))
    }

    /// Returns a scratch to the pool for the next checkout to reuse.
    pub fn restore(&self, scratch: DecodeScratch) {
        self.idle.lock().expect("scratch pool lock").push(scratch);
    }

    /// Checks a scratch out as an RAII guard that restores it on drop.
    pub fn scratch(&self) -> PooledScratch<'_> {
        PooledScratch {
            pool: self,
            scratch: Some(self.checkout()),
        }
    }
}

/// RAII guard over a checked-out [`DecodeScratch`]; derefs to the scratch
/// and restores it to the pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<DecodeScratch>,
}

impl Deref for PooledScratch<'_> {
    type Target = DecodeScratch;

    fn deref(&self) -> &DecodeScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut DecodeScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.restore(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_lane_runs_exactly_once() {
        let mut pool = WorkerPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.run(&|lane| {
            let prev = mask.fetch_or(1 << lane, Ordering::SeqCst);
            assert_eq!(prev & (1 << lane), 0, "lane {lane} ran twice");
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn run_is_a_barrier_between_jobs() {
        let mut pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for round in 0..50 {
            pool.run(&|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), (round + 1) * 3);
        }
    }

    #[test]
    fn single_lane_pool_runs_inline_without_threads() {
        let mut pool = WorkerPool::new(1);
        let thread_id = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        pool.run(&|lane| {
            assert_eq!(lane, 0);
            assert_eq!(std::thread::current().id(), thread_id);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn lane_panic_propagates_to_coordinator() {
        let outcome = catch_unwind(|| {
            let mut pool = WorkerPool::new(2);
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("lane failure");
                }
            });
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let mut pool = WorkerPool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|lane| {
                if lane == 1 {
                    panic!("transient failure");
                }
            });
        }));
        // The pool still works after the failed job.
        let counter = AtomicUsize::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool = ScratchPool::new(256);
        assert_eq!(pool.idle(), 0);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.restore(a);
        pool.restore(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.idle(), 1, "checkout reuses an idle scratch");
    }

    #[test]
    fn pooled_scratch_guard_restores_on_drop() {
        let pool = ScratchPool::new(64);
        {
            let mut guard = pool.scratch();
            guard.ensure(64);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
    }
}
