//! Persistent resources for the serving path: a lock-free work-stealing
//! executor and a checkout/restore pool of [`DecodeScratch`] working
//! sets.
//!
//! The paper's accelerator serves recognition as a *shared* resource: one
//! datapath multiplexed across the whole workload, with everything warm —
//! tables, DMA buffers, the GPU's score batches all persist across
//! utterances (Section VI). This module gives the software decoders the
//! same properties:
//!
//! * [`WorkerPool`] is a long-lived **lock-free work-stealing executor**:
//!   a bounded MPMC injector ring plus one Chase–Lev deque per worker
//!   lane, shared by any number of concurrent submitters through `&self`.
//!   A frame phase is one fork-join job whose chunk tasks land in the
//!   injector; worker lanes pick them up (batch-grabbing siblings into
//!   their own deque, where idle lanes CAS-steal), and the submitting
//!   thread executes chunk 0 inline then *helps*: while its join is
//!   pending it executes whatever task it can take — its own still-queued
//!   chunks (steal-back) or another job's (counted separately) — so a
//!   busy pool degrades gracefully to inline execution instead of
//!   queueing up. No mutex guards any queue; the only locks left are the
//!   two parking lots (idle lanes, blocked submitters), taken strictly
//!   off the hot path. [`WorkerPool::stats`] and
//!   [`WorkerPool::queue_depth`] are lock-free reads of relaxed atomics,
//!   so the serving runtime's QoS monitor never contends with the
//!   scheduler it is measuring.
//! * [`ScratchPool`] recycles warmed [`DecodeScratch`] working sets, so a
//!   serving facade that decodes request after request performs zero
//!   steady-state allocations in the frame loop: checkout pops a warm
//!   scratch, restore pushes it back. [`ScratchPool::stats`] exposes the
//!   cold/warm checkout split, and every operation recovers from a
//!   poisoned lock (a panicked decode must not brick the pool).
//!
//! # Memory ordering
//!
//! The deque is the Chase–Lev design with the orderings of Lê, Pop,
//! Cohen & Zappa Nardelli ("Correct and efficient work-stealing for weak
//! memory models", PPoPP 2013): the owner pushes and pops at the bottom,
//! thieves CAS the top. A `SeqCst` fence in `pop` (after the speculative
//! bottom decrement) and in `steal` (between the top and bottom loads)
//! arbitrates the one contended case — one element left, owner and thief
//! racing — through the CAS on `top`. Slot payloads are plain relaxed
//! atomics: a thief's read is published by the owner's release-fenced
//! bottom store, cannot be overwritten while its CAS on `top` can still
//! succeed (pushes refuse at capacity, so the buffer never laps an
//! unconsumed slot), and is discarded whenever that CAS fails. The
//! injector is a Vyukov bounded MPMC ring: each slot carries a sequence
//! number that producers and consumers claim by CAS on the ring indices
//! and hand over with release/acquire pairs on the sequence itself.

use crate::search::DecodeScratch;
use crate::sync::{
    fence, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering,
};
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// One fork-join job in flight: the erased closure plus its completion
/// state. Lives on the submitting thread's stack for the duration of
/// [`WorkerPool::fork_join`], which does not return until `pending`
/// reaches zero — the invariant that makes the raw pointers in [`Task`]
/// sound. Every queued task is executed exactly once (the submitter
/// *helps* rather than removing entries), so no queue can still hold a
/// reference to the header once `pending` is zero.
pub(crate) struct JobHeader {
    /// Trampoline recovering the concrete closure type.
    run: unsafe fn(*const (), usize),
    /// The borrowed closure, erased.
    ctx: *const (),
    /// Chunks not yet finished executing.
    pending: AtomicUsize,
    /// Some chunk's closure panicked; re-raised on the submitter.
    panicked: AtomicBool,
}

/// A schedulable unit: one chunk of one job.
#[derive(Clone, Copy)]
pub(crate) struct Task {
    pub(crate) header: *const JobHeader,
    pub(crate) chunk: u32,
}

// SAFETY: the header pointer crosses threads, but a task exists in the
// queues only while its job's `fork_join` call is blocked on the stack
// that owns the header.
unsafe impl Send for Task {}

/// Scheduling counters accumulated with relaxed atomics on the lock-free
/// hot paths — the executor's observable saturation signal (see
/// [`WorkerPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerPoolStats {
    /// Fork-join jobs whose chunk tasks entered the shared queues
    /// (single-chunk jobs and every job on a one-lane pool run inline
    /// without touching the scheduler, and are not counted).
    pub jobs_submitted: u64,
    /// Chunk tasks pushed toward the global injector (chunk 0 of every
    /// job runs inline on its submitter and is never queued).
    pub tasks_queued: u64,
    /// Tasks executed by worker lanes (from their own deque, the
    /// injector, or a victim's deque) rather than a submitter.
    pub tasks_taken_by_lanes: u64,
    /// The subset of [`WorkerPoolStats::tasks_taken_by_lanes`] an idle
    /// lane stole from another lane's deque.
    pub tasks_stolen: u64,
    /// Tasks of a submitter's *own* job the submitter executed itself
    /// (steal-back) because no lane had picked them up — a direct
    /// saturation signal: a busy pool degrades its submitters to inline
    /// execution.
    pub tasks_stolen_back: u64,
    /// Tasks of *other* jobs a blocked submitter executed while waiting
    /// for its own join — submitters are work-conserving helpers, not
    /// idle waiters, once the queues go lock-free.
    pub tasks_helped: u64,
    /// Deepest the combined queues (injector + every lane deque) have
    /// been, in tasks, sampled at each job submission.
    pub peak_queue_depth: usize,
}

/// Relaxed atomic counters behind [`WorkerPoolStats`]; every update is a
/// single `fetch_add`/`fetch_max` on the path that already owns the
/// event, so observing them never takes a lock.
#[derive(Default)]
struct PoolCounters {
    jobs_submitted: AtomicU64,
    tasks_queued: AtomicU64,
    tasks_taken_by_lanes: AtomicU64,
    tasks_stolen: AtomicU64,
    tasks_stolen_back: AtomicU64,
    tasks_helped: AtomicU64,
    peak_queue_depth: AtomicUsize,
}

impl PoolCounters {
    fn snapshot(&self) -> WorkerPoolStats {
        WorkerPoolStats {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            tasks_queued: self.tasks_queued.load(Ordering::Relaxed),
            tasks_taken_by_lanes: self.tasks_taken_by_lanes.load(Ordering::Relaxed),
            tasks_stolen: self.tasks_stolen.load(Ordering::Relaxed),
            tasks_stolen_back: self.tasks_stolen_back.load(Ordering::Relaxed),
            tasks_helped: self.tasks_helped.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Capacity of each lane's Chase–Lev deque (power of two). Pushes refuse
/// at capacity rather than grow, which is what keeps a thief's relaxed
/// slot read from ever racing a same-slot overwrite (the buffer would
/// have to lap, and it cannot while unconsumed entries remain in range).
const DEQUE_CAP: usize = 256;

/// Capacity of the global injector ring (power of two). A full injector
/// degrades the submitter to inline execution of the overflow chunk —
/// the same graceful saturation behavior as steal-back.
const INJECTOR_CAP: usize = 1024;

/// How many sibling tasks a lane moves from the injector into its own
/// deque per grab, so idle lanes have somewhere to steal from.
const BATCH_GRAB: usize = 8;

/// One Chase–Lev slot. Two relaxed atomics rather than one word: the
/// header pointer does not fit a single `u64` alongside the chunk index.
/// Tearing between the two loads is benign — a thief discards both
/// unless its CAS on `top` succeeds, and success proves the slot was not
/// rewritten since the push that published it (see the module-level
/// memory-ordering notes).
struct DequeSlot {
    header: AtomicU64,
    chunk: AtomicU64,
}

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// Took this task.
    Success(Task),
    /// Nothing visible to take.
    Empty,
    /// Lost a race; the queue may still be non-empty.
    Retry,
}

/// A fixed-capacity Chase–Lev work-stealing deque. The owning lane
/// pushes and pops at the bottom with plain stores; any other thread
/// steals from the top with a CAS. Indices are monotonically increasing
/// `u64` counters; the live window is `[top, bottom)`.
pub(crate) struct ChaseLev {
    top: AtomicU64,
    bottom: AtomicU64,
    /// `capacity - 1`; capacity is a power of two.
    mask: u64,
    slots: Box<[DequeSlot]>,
}

impl ChaseLev {
    fn new() -> Self {
        Self::with_capacity(DEQUE_CAP)
    }

    /// A deque with a caller-chosen power-of-two capacity — the model-
    /// check harnesses shrink it to 2 so exhaustive exploration can walk
    /// the full index space.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        assert!(
            cap.is_power_of_two() && cap >= 2,
            "capacity must be a power of two >= 2"
        );
        Self {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            mask: (cap - 1) as u64,
            slots: (0..cap)
                .map(|_| DequeSlot {
                    header: AtomicU64::new(0),
                    chunk: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    fn slot(&self, index: u64) -> &DequeSlot {
        &self.slots[(index & self.mask) as usize]
    }

    #[inline]
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate number of queued tasks. Exact when the deque is
    /// quiescent (no concurrent push/pop/steal), which is the case the
    /// tests and the idle checks rely on.
    pub(crate) fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b.wrapping_sub(t) as i64).max(0) as usize
    }

    /// Owner-only: whether a push is guaranteed to succeed. `top` only
    /// advances, so the size estimate only shrinks between this check
    /// and the push.
    fn has_room(&self) -> bool {
        self.len() < self.capacity() - 1
    }

    /// Owner-only push. Returns `false` (task not enqueued) at capacity.
    pub(crate) fn push(&self, task: Task) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) as i64 >= (self.capacity() - 1) as i64 {
            return false;
        }
        let slot = self.slot(b);
        slot.header
            .store(task.header as usize as u64, Ordering::Relaxed);
        slot.chunk.store(u64::from(task.chunk), Ordering::Relaxed);
        // Publish the slot writes to thieves that acquire-load `bottom`.
        fence(Ordering::Release);
        self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
        true
    }

    /// Owner-only pop from the bottom (LIFO). The `SeqCst` fence orders
    /// the speculative bottom decrement against the thieves' top/bottom
    /// load pair; the last remaining element is arbitrated by the same
    /// CAS on `top` the thieves use.
    pub(crate) fn pop(&self) -> Option<Task> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        if b.wrapping_sub(t) as i64 <= 0 {
            return None;
        }
        let b = b.wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        let size = b.wrapping_sub(t) as i64;
        if size < 0 {
            // Thieves emptied the deque while we were decrementing.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let slot = self.slot(b);
        let task = Task {
            header: slot.header.load(Ordering::Relaxed) as usize as *const JobHeader,
            chunk: slot.chunk.load(Ordering::Relaxed) as u32,
        };
        if size > 0 {
            // More than one element: the bottom one is ours outright.
            return Some(task);
        }
        // Exactly one element: race thieves for it via the top CAS.
        let won = self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
        won.then_some(task)
    }

    /// Steal one task from the top (FIFO). Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if b.wrapping_sub(t) as i64 <= 0 {
            return Steal::Empty;
        }
        let slot = self.slot(t);
        let task = Task {
            header: slot.header.load(Ordering::Relaxed) as usize as *const JobHeader,
            chunk: slot.chunk.load(Ordering::Relaxed) as u32,
        };
        if self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(task)
        } else {
            Steal::Retry
        }
    }
}

/// One slot of the Vyukov MPMC injector ring: a sequence stamp plus the
/// task payload. `seq == index` means free for the producer claiming
/// `tail == index`; `seq == index + 1` means filled for the consumer
/// claiming `head == index`.
struct RingSlot {
    seq: AtomicUsize,
    header: AtomicU64,
    chunk: AtomicU64,
}

/// Bounded lock-free MPMC queue (Vyukov): producers CAS `tail`,
/// consumers CAS `head`, and each slot's sequence number hands the
/// payload across with a release store / acquire load pair.
pub(crate) struct Injector {
    head: AtomicUsize,
    tail: AtomicUsize,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    slots: Box<[RingSlot]>,
}

impl Injector {
    fn new() -> Self {
        Self::with_capacity(INJECTOR_CAP)
    }

    /// A ring with a caller-chosen power-of-two capacity — the model-
    /// check harnesses shrink it to 2 so the full-ring helping path is
    /// reachable within the exploration budget.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        assert!(
            cap.is_power_of_two() && cap >= 2,
            "capacity must be a power of two >= 2"
        );
        Self {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            mask: cap - 1,
            slots: (0..cap)
                .map(|seq| RingSlot {
                    seq: AtomicUsize::new(seq),
                    header: AtomicU64::new(0),
                    chunk: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Approximate number of queued tasks (exact when quiescent).
    pub(crate) fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h)
    }

    /// Enqueue; returns `false` when the ring is full.
    pub(crate) fn push(&self, task: Task) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.header
                            .store(task.header as usize as u64, Ordering::Relaxed);
                        slot.chunk.store(u64::from(task.chunk), Ordering::Relaxed);
                        // Hand the filled slot to the consumer side.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(found) => pos = found,
                }
            } else if diff < 0 {
                // The slot is still occupied by an unconsumed task from
                // the previous lap: the ring is full.
                return false;
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue; returns `None` when the ring is empty.
    pub(crate) fn pop(&self) -> Option<Task> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos.wrapping_add(1)) as isize;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let task = Task {
                            header: slot.header.load(Ordering::Relaxed) as usize
                                as *const JobHeader,
                            chunk: slot.chunk.load(Ordering::Relaxed) as u32,
                        };
                        // Free the slot for the producers' next lap.
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(task);
                    }
                    Err(found) => pos = found,
                }
            } else if diff < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

/// A hook an idle worker lane runs before parking; returns `true` if it
/// made progress (the lane re-scans the queues instead of sleeping).
/// Must not call [`WorkerPool::fork_join`] on the same pool.
pub type IdleHook = Box<dyn Fn() -> bool + Send + Sync>;

/// Where a found task came from (counter attribution).
enum Find {
    /// A task to execute; `stolen` marks a cross-lane deque steal.
    Got { task: Task, stolen: bool },
    /// Lost at least one race; re-scan without parking.
    Retry,
    /// All queues observed empty.
    Empty,
}

/// An eventcount: the lock-free sleep/wake protocol parking idle lanes.
///
/// Waiters register in `sleepers`, fence, re-check their own sleep
/// condition, and only then take the (data-free) parking mutex to wait.
/// Notifiers publish their work first, then call [`EventCount::notify`],
/// whose `SeqCst` fence pairs with the waiter's: either the notifier
/// observes the registration (and signals under the lock), or the
/// waiter's post-registration re-check observes the published work. The
/// lost-wakeup freedom of exactly this protocol is model-checked in
/// `model_check.rs`.
pub(crate) struct EventCount {
    /// Threads registered as parked or about to park.
    sleepers: AtomicUsize,
    /// Parking lot only; guards no data.
    lock: Mutex<()>,
    cv: Condvar,
}

impl EventCount {
    pub(crate) fn new() -> Self {
        Self {
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The parking mutex guards no data at all, so recovering from
    /// poison is trivially safe.
    fn lot(&self) -> MutexGuard<'_, ()> {
        self.lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake parked threads after publishing work. The `SeqCst` fence
    /// pairs with the fence in [`EventCount::park_if`]: either we observe
    /// the registration (and notify under the lock), or the waiter's
    /// post-registration re-check observes our publication.
    pub(crate) fn notify(&self, all: bool) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let _guard = self.lot();
        if all {
            self.cv.notify_all();
        } else {
            self.cv.notify_one();
        }
    }

    /// Park the calling thread while `should_sleep()` holds: register,
    /// fence, re-check, then sleep — double-checked again under the lock
    /// so a notify between check and wait cannot be lost.
    pub(crate) fn park_if(&self, should_sleep: impl Fn() -> bool) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if should_sleep() {
            let guard = self.lot();
            if should_sleep() {
                let _unused = self.cv.wait(guard).unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executor state shared by the worker lanes and every submitter. The
/// queues and counters are lock-free; the two mutexes are parking lots
/// only (idle lanes inside the `idle` eventcount, blocked submitters on
/// `done`) and are never held while a task runs or a queue is touched.
struct ExecShared {
    injector: Injector,
    deques: Vec<ChaseLev>,
    counters: PoolCounters,
    shutdown: AtomicBool,
    /// Eventcount parking idle lanes until work or shutdown arrives.
    idle: EventCount,
    /// Parking lot for submitters waiting out their join.
    done_lock: Mutex<()>,
    done: Condvar,
    /// Optional progress hook for idle lanes (e.g. the runtime's batch
    /// scoring service flushing a partially filled gather window).
    idle_hook: OnceLock<IdleHook>,
}

impl ExecShared {
    fn queue_depth(&self) -> usize {
        self.injector.len() + self.deques.iter().map(ChaseLev::len).sum::<usize>()
    }

    fn has_work(&self) -> bool {
        self.injector.len() > 0 || self.deques.iter().any(|d| d.len() > 0)
    }

    fn lock<'a>(&self, lot: &'a Mutex<()>) -> MutexGuard<'a, ()> {
        // The parking-lot mutexes guard no data at all, so recovering
        // from poison is trivially safe.
        lot.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Wake parked lanes after publishing work (see [`EventCount`]).
    fn notify_workers(&self, all: bool) {
        self.idle.notify(all);
    }

    /// Next task for a worker lane: own deque, then the injector (batch-
    /// grabbing a few more tasks into the own deque so idle lanes can
    /// steal them), then a steal from the deepest other lane.
    fn find_task(&self, lane: usize) -> Find {
        if let Some(task) = self.deques[lane].pop() {
            return Find::Got {
                task,
                stolen: false,
            };
        }
        if let Some(task) = self.injector.pop() {
            let mut grabs = BATCH_GRAB;
            while grabs > 0 && self.deques[lane].has_room() {
                match self.injector.pop() {
                    Some(extra) => {
                        // `has_room` is owner-exact on `bottom` and
                        // conservative on `top`, so this cannot fail.
                        let pushed = self.deques[lane].push(extra);
                        debug_assert!(pushed, "deque push after has_room");
                        grabs -= 1;
                    }
                    None => break,
                }
            }
            if grabs < BATCH_GRAB {
                self.notify_workers(true);
            }
            return Find::Got {
                task,
                stolen: false,
            };
        }
        let mut retry = false;
        // Deepest victim first; fall back to the rest so a single failed
        // CAS does not read as an empty pool. No allocation: the victim
        // order is computed index-by-index.
        let deepest = (0..self.deques.len())
            .filter(|&l| l != lane)
            .max_by_key(|&l| self.deques[l].len());
        if let Some(first) = deepest {
            match self.deques[first].steal() {
                Steal::Success(task) => return Find::Got { task, stolen: true },
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
            for victim in 0..self.deques.len() {
                if victim == lane || victim == first {
                    continue;
                }
                match self.deques[victim].steal() {
                    Steal::Success(task) => return Find::Got { task, stolen: true },
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
        }
        if retry {
            Find::Retry
        } else {
            Find::Empty
        }
    }

    /// Next task for a helping submitter: the injector first (its own
    /// chunks land there), then steals from any lane deque.
    fn take_for_submitter(&self) -> Find {
        if let Some(task) = self.injector.pop() {
            return Find::Got {
                task,
                stolen: false,
            };
        }
        let mut retry = false;
        for deque in &self.deques {
            match deque.steal() {
                Steal::Success(task) => return Find::Got { task, stolen: true },
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if retry {
            Find::Retry
        } else {
            Find::Empty
        }
    }
}

/// Runs one task and retires it: panics are recorded on the job, the
/// pending count drops, and the job's submitter is woken on the last
/// task.
fn execute_task(shared: &ExecShared, task: Task) {
    // SAFETY: the job header (and the closure it points to) outlives the
    // task: `fork_join` keeps both alive until `pending` reaches zero,
    // which cannot happen before this function's `fetch_sub`.
    let header = unsafe { &*task.header };
    // SAFETY: `ctx` is the erased `&F` this header's trampoline expects,
    // and it stays borrowed (alive) until the job's pending count — which
    // still includes this task — reaches zero.
    let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
        (header.run)(header.ctx, task.chunk as usize)
    }));
    if outcome.is_err() {
        header.panicked.store(true, Ordering::Relaxed);
    }
    if header.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last task: wake the submitter. Taking the parking lock orders
        // this wake against the submitter's check-then-wait, so the
        // wakeup cannot be lost; after this point the job header is
        // never touched again.
        let _guard = shared.lock(&shared.done_lock);
        shared.done.notify_all();
    }
}

fn worker_loop(shared: &ExecShared, lane: usize) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.find_task(lane) {
            Find::Got { task, stolen } => {
                let counters = &shared.counters;
                counters
                    .tasks_taken_by_lanes
                    .fetch_add(1, Ordering::Relaxed);
                if stolen {
                    counters.tasks_stolen.fetch_add(1, Ordering::Relaxed);
                }
                execute_task(shared, task);
            }
            Find::Retry => std::hint::spin_loop(),
            Find::Empty => {
                // Offer the idle hook a chance to make progress before
                // parking (kept panic-proof: a failing hook must not
                // take the lane down).
                if let Some(hook) = shared.idle_hook.get() {
                    let progressed = catch_unwind(AssertUnwindSafe(&**hook)).unwrap_or(false);
                    if progressed {
                        continue;
                    }
                }
                // Eventcount parking: register, fence, re-scan, then
                // sleep — the producer's fence in `notify_workers`
                // guarantees we either see its push here or it sees our
                // registration there.
                shared
                    .idle
                    .park_if(|| !shared.has_work() && !shared.shutdown.load(Ordering::Acquire));
            }
        }
    }
}

/// Long-lived lock-free work-stealing executor, shared across decoders
/// and sessions.
///
/// A pool of `lanes` executes fork-join jobs submitted through
/// [`WorkerPool::fork_join`] **by any number of threads concurrently**
/// (`&self`): each job's chunk tasks go to a bounded MPMC injector, are
/// pulled by worker lanes (which batch-grab sibling chunks into per-lane
/// Chase–Lev deques that idle lanes steal from), and the submitting
/// thread runs chunk 0 inline then *helps* until its join completes —
/// executing its own still-queued chunks (steal-back) or, under
/// contention, other jobs' chunks. Concurrent requests therefore *share*
/// all lanes — the paper's one-datapath-many-users serving shape —
/// instead of each request serializing behind a private pool, and no
/// queue operation ever takes a lock.
///
/// A one-lane pool spawns no threads at all and executes every job
/// inline with zero synchronization.
///
/// # Example
///
/// ```
/// use asr_decoder::pool::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.fork_join(4, &|chunk| {
///     hits.fetch_add(1 << chunk, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 0b1111);
/// ```
pub struct WorkerPool {
    shared: Arc<ExecShared>,
    handles: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `lanes` execution lanes, spawning `lanes - 1`
    /// worker threads (submitters always participate as the extra lane).
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        let workers = lanes - 1;
        let shared = Arc::new(ExecShared {
            injector: Injector::new(),
            deques: (0..workers).map(|_| ChaseLev::new()).collect(),
            counters: PoolCounters::default(),
            shutdown: AtomicBool::new(false),
            idle: EventCount::new(),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            idle_hook: OnceLock::new(),
        });
        let handles = (0..workers)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asr-exec-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    // LINT-ALLOW: panic — pool construction, not a frame path.
                    .expect("spawn executor worker")
            })
            .collect();
        Self {
            shared,
            handles,
            lanes,
        }
    }

    /// The number of execution lanes (worker threads plus the
    /// submitter's inline lane).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The default lane count for this machine: the available hardware
    /// parallelism, `1` when it cannot be determined.
    pub fn default_lanes() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Installs the idle hook: a callback idle worker lanes run before
    /// parking, returning `true` when it made progress (the lane then
    /// re-scans the queues instead of sleeping). One hook per pool; a
    /// second installation is refused and `false` is returned. The hook
    /// must not call [`WorkerPool::fork_join`] on this pool — a lane
    /// blocked on a nested join could wait on work only it would run.
    pub fn set_idle_hook(&self, hook: IdleHook) -> bool {
        let installed = self.shared.idle_hook.set(hook).is_ok();
        if installed {
            // Give already-parked lanes a chance to run the hook.
            self.shared.notify_workers(true);
        }
        installed
    }

    /// Tasks currently waiting in the shared queues (the global injector
    /// plus every lane deque) — the executor's live saturation gauge,
    /// read lock-free so the serving runtime's QoS pressure monitor
    /// never contends with the hot path it is measuring. A pool keeping
    /// up reads `0` almost always: chunks are grabbed as fast as
    /// submitters publish them. Sustained depth means offered load
    /// exceeds lane capacity.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth()
    }

    /// Scheduling counters since construction: jobs and tasks through
    /// the shared queues, the lane/steal split, submitter steal-backs
    /// and helps, and the peak combined queue depth — a lock-free
    /// snapshot of relaxed atomics. Counters cover scheduled jobs only —
    /// single-chunk jobs and every job on a one-lane pool run inline
    /// without touching the queues.
    pub fn stats(&self) -> WorkerPoolStats {
        self.shared.counters.snapshot()
    }

    /// Runs `f(chunk)` once for every `chunk in 0..chunks`, across the
    /// pool's lanes and the calling thread, and returns when all chunks
    /// have finished — the frame barrier of the parallel decoder.
    ///
    /// The call is safe to issue from any number of threads at once:
    /// chunks from concurrent jobs interleave in the shared queues and
    /// idle lanes steal whatever is available. The caller always executes
    /// chunk 0 inline, then *helps* until its join completes: it
    /// executes its own still-queued chunks if no lane picked them up,
    /// and other jobs' chunks otherwise, so a saturated pool degrades to
    /// inline execution rather than blocking. After warm-up the steady
    /// state performs no heap allocation.
    ///
    /// Tasks must not themselves call `fork_join` on the same pool (the
    /// decoders never do): a worker blocked on a nested join could wait
    /// on work only it would execute.
    ///
    /// # Panics
    ///
    /// Re-raises a panic if `f` panicked on any chunk — after every other
    /// chunk has finished, so data borrowed by the closure stays pinned
    /// throughout.
    pub fn fork_join<F: Fn(usize) + Sync>(&self, chunks: usize, f: &F) {
        if chunks == 0 {
            return;
        }
        if self.handles.is_empty() || chunks == 1 {
            // No workers (one-lane pool) or nothing to overlap: run
            // inline with zero synchronization.
            for chunk in 0..chunks {
                f(chunk);
            }
            return;
        }
        /// Recovers the concrete closure type on an executing lane.
        ///
        /// # Safety
        ///
        /// `ctx` must be an `&F` erased by the `fork_join` call that
        /// built this job's header, still borrowed (the call has not
        /// passed its completion barrier).
        unsafe fn trampoline<F: Fn(usize) + Sync>(ctx: *const (), chunk: usize) {
            // SAFETY: `ctx` was erased from an `&F` that `fork_join`
            // keeps borrowed until its completion barrier.
            let f = unsafe { &*(ctx.cast::<F>()) };
            f(chunk);
        }
        let header = JobHeader {
            run: trampoline::<F>,
            ctx: (f as *const F).cast(),
            pending: AtomicUsize::new(chunks),
            panicked: AtomicBool::new(false),
        };
        let counters = &self.shared.counters;
        counters.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        counters
            .tasks_queued
            .fetch_add((chunks - 1) as u64, Ordering::Relaxed);
        for chunk in 1..chunks {
            let task = Task {
                header: &header,
                chunk: chunk as u32,
            };
            if !self.shared.injector.push(task) {
                // Injector full: degrade this chunk to inline execution,
                // accounted as an instant steal-back.
                counters.tasks_stolen_back.fetch_add(1, Ordering::Relaxed);
                execute_task(&self.shared, task);
            }
        }
        counters
            .peak_queue_depth
            .fetch_max(self.shared.queue_depth(), Ordering::Relaxed);
        self.shared.notify_workers(chunks > 2);
        // Chunk 0 runs inline; a panic here must still wait for the other
        // chunks before unwinding releases the borrows they're using.
        let local = catch_unwind(AssertUnwindSafe(|| f(0)));
        header.pending.fetch_sub(1, Ordering::AcqRel);
        // Help until the join completes: execute our own still-queued
        // chunks (steal-back), or any other job's chunks under
        // contention — every queued task runs exactly once, which is
        // what keeps `header` unreachable once `pending` hits zero.
        loop {
            if header.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            match self.shared.take_for_submitter() {
                Find::Got { task, .. } => {
                    if std::ptr::eq(task.header, &header) {
                        counters.tasks_stolen_back.fetch_add(1, Ordering::Relaxed);
                    } else {
                        counters.tasks_helped.fetch_add(1, Ordering::Relaxed);
                    }
                    execute_task(&self.shared, task);
                }
                Find::Retry => std::hint::spin_loop(),
                Find::Empty => break,
            }
        }
        if header.pending.load(Ordering::Acquire) != 0 {
            let mut guard = self.shared.lock(&self.shared.done_lock);
            while header.pending.load(Ordering::Acquire) != 0 {
                guard = self
                    .shared
                    .done
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        if let Err(payload) = local {
            resume_unwind(payload);
        }
        assert!(
            !header.panicked.load(Ordering::Relaxed),
            "worker pool lane panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // The eventcount's fence orders the shutdown store against each
        // lane's registration, exactly like a work publication.
        self.shared.idle.notify(true);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Checkout/restore accounting for a [`ScratchPool`] (see
/// [`ScratchPool::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchPoolStats {
    /// Checkouts served by allocating a fresh scratch (pool was empty:
    /// first use, or deeper concurrency than ever before).
    pub cold_checkouts: u64,
    /// Checkouts served by a warm scratch from the pool.
    pub warm_checkouts: u64,
    /// Scratches returned to the pool.
    pub restores: u64,
}

impl ScratchPoolStats {
    /// Total checkouts, cold and warm.
    pub fn checkouts(&self) -> u64 {
        self.cold_checkouts + self.warm_checkouts
    }
}

/// A checkout/restore pool of warmed [`DecodeScratch`] working sets.
///
/// The serving runtime holds one of these per decoding graph: every
/// `recognize` call and every session checks a scratch out, and returns
/// it when done. After the pool's high-water mark is reached, the steady
/// state allocates nothing — checkout is a `Vec::pop`, restore a
/// `Vec::push` within capacity, and the scratch itself keeps the token
/// tables warm (see `tests/alloc_free.rs` and the facade's
/// `facade_alloc` test). The cold/warm split is observable through
/// [`ScratchPool::stats`], so a serving loop can verify it stopped
/// paying cold checkouts.
///
/// Thread-safe: concurrent sessions each pop their own scratch; the
/// mutex is held only for the pop/push itself, and every operation
/// recovers from a poisoned lock (the free list is always valid — a
/// panic can at worst lose the scratch that was checked out).
#[derive(Debug)]
pub struct ScratchPool {
    num_states: usize,
    idle: Mutex<Vec<DecodeScratch>>,
    cold_checkouts: AtomicU64,
    warm_checkouts: AtomicU64,
    restores: AtomicU64,
}

impl ScratchPool {
    /// Creates an empty pool sizing scratches for `num_states`-state
    /// graphs.
    pub fn new(num_states: usize) -> Self {
        Self {
            num_states,
            idle: Mutex::new(Vec::new()),
            cold_checkouts: AtomicU64::new(0),
            warm_checkouts: AtomicU64::new(0),
            restores: AtomicU64::new(0),
        }
    }

    /// Recovers the free list even if a holder of the lock panicked: the
    /// `Vec` push/pop operations inside never leave it invalid.
    fn idle_list(&self) -> MutexGuard<'_, Vec<DecodeScratch>> {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The state count scratches are sized for.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of scratches currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.idle_list().len()
    }

    /// Checkout/restore counters since construction. In a warmed serving
    /// loop `cold_checkouts` stops growing: every request rides a
    /// restored scratch.
    pub fn stats(&self) -> ScratchPoolStats {
        ScratchPoolStats {
            cold_checkouts: self.cold_checkouts.load(Ordering::Relaxed),
            warm_checkouts: self.warm_checkouts.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
        }
    }

    /// Takes a scratch out of the pool, allocating a fresh one only when
    /// the pool is empty (first use, or more concurrent checkouts than
    /// ever before). The cold/warm split is recorded in
    /// [`ScratchPool::stats`].
    pub fn checkout(&self) -> DecodeScratch {
        let recycled = self.idle_list().pop();
        match recycled {
            Some(scratch) => {
                self.warm_checkouts.fetch_add(1, Ordering::Relaxed);
                scratch
            }
            None => {
                self.cold_checkouts.fetch_add(1, Ordering::Relaxed);
                DecodeScratch::new(self.num_states)
            }
        }
    }

    /// Returns a scratch to the pool for the next checkout to reuse.
    pub fn restore(&self, scratch: DecodeScratch) {
        self.restores.fetch_add(1, Ordering::Relaxed);
        self.idle_list().push(scratch);
    }

    /// Checks a scratch out as an RAII guard that restores it on drop.
    pub fn scratch(&self) -> PooledScratch<'_> {
        PooledScratch {
            pool: self,
            scratch: Some(self.checkout()),
        }
    }
}

/// RAII guard over a checked-out [`DecodeScratch`]; derefs to the scratch
/// and restores it to the pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<DecodeScratch>,
}

impl Deref for PooledScratch<'_> {
    type Target = DecodeScratch;

    fn deref(&self) -> &DecodeScratch {
        // LINT-ALLOW: panic — `scratch` is `Some` for the guard's whole
        // life; only `drop` takes it.
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut DecodeScratch {
        // LINT-ALLOW: panic — `scratch` is `Some` for the guard's whole
        // life; only `drop` takes it.
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.restore(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let mask = AtomicUsize::new(0);
        pool.fork_join(4, &|chunk| {
            let prev = mask.fetch_or(1 << chunk, Ordering::SeqCst);
            assert_eq!(prev & (1 << chunk), 0, "chunk {chunk} ran twice");
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b1111);
    }

    #[test]
    fn fork_join_is_a_barrier_between_jobs() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for round in 0..50 {
            pool.fork_join(3, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), (round + 1) * 3);
        }
    }

    #[test]
    fn more_chunks_than_lanes_all_run() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.fork_join(10, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn single_lane_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        let thread_id = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        pool.fork_join(3, &|_| {
            assert_eq!(std::thread::current().id(), thread_id);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn chunk_panic_propagates_to_submitter() {
        let outcome = catch_unwind(|| {
            let pool = WorkerPool::new(2);
            pool.fork_join(2, &|chunk| {
                if chunk == 1 {
                    panic!("chunk failure");
                }
            });
        });
        assert!(outcome.is_err());
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = WorkerPool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.fork_join(2, &|chunk| {
                if chunk == 1 {
                    panic!("transient failure");
                }
            });
        }));
        // The pool still works after the failed job.
        let counter = AtomicUsize::new(0);
        pool.fork_join(2, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn concurrent_submitters_share_one_pool() {
        let pool = Arc::new(WorkerPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    let local = AtomicUsize::new(0);
                    pool.fork_join(3, &|_| {
                        local.fetch_add(1, Ordering::SeqCst);
                        total.fetch_add(1, Ordering::SeqCst);
                    });
                    // The join is per-job even with three other
                    // submitters interleaving tasks in the same queues.
                    assert_eq!(local.load(Ordering::SeqCst), 3);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("submitter thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 3);
    }

    #[test]
    fn counters_track_jobs_and_task_ownership() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.stats(), WorkerPoolStats::default());
        assert_eq!(pool.queue_depth(), 0);
        for _ in 0..20 {
            pool.fork_join(4, &|_| {});
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_submitted, 20);
        assert_eq!(stats.tasks_queued, 20 * 3, "chunk 0 is never queued");
        // Every queued task was retired by exactly one side.
        assert_eq!(
            stats.tasks_taken_by_lanes + stats.tasks_stolen_back,
            stats.tasks_queued
        );
        assert!(stats.tasks_stolen <= stats.tasks_taken_by_lanes);
        assert!(stats.peak_queue_depth >= 1);
        assert_eq!(pool.queue_depth(), 0, "queues drain when the pool is idle");
    }

    #[test]
    fn inline_paths_do_not_touch_the_scheduler() {
        // One-lane pool: every job runs inline, nothing is counted.
        let one = WorkerPool::new(1);
        one.fork_join(8, &|_| {});
        assert_eq!(one.stats(), WorkerPoolStats::default());
        // Single-chunk jobs skip the queues even on a multi-lane pool.
        let two = WorkerPool::new(2);
        two.fork_join(1, &|_| {});
        assert_eq!(two.stats(), WorkerPoolStats::default());
    }

    #[test]
    fn scratch_pool_recycles() {
        let pool = ScratchPool::new(256);
        assert_eq!(pool.idle(), 0);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.restore(a);
        pool.restore(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.idle(), 1, "checkout reuses an idle scratch");
    }

    #[test]
    fn scratch_pool_stats_split_cold_from_warm() {
        let pool = ScratchPool::new(64);
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(
            pool.stats(),
            ScratchPoolStats {
                cold_checkouts: 2,
                warm_checkouts: 0,
                restores: 0
            }
        );
        pool.restore(a);
        pool.restore(b);
        let c = pool.checkout();
        pool.restore(c);
        let stats = pool.stats();
        assert_eq!(stats.cold_checkouts, 2, "warm pool stops allocating");
        assert_eq!(stats.warm_checkouts, 1);
        assert_eq!(stats.restores, 3);
        assert_eq!(stats.checkouts(), 3);
    }

    #[test]
    fn scratch_pool_recovers_from_a_poisoned_lock() {
        let pool = ScratchPool::new(16);
        pool.restore(DecodeScratch::new(16));
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let _guard = pool.idle.lock().expect("not yet poisoned");
                panic!("poison the scratch pool lock");
            });
            assert!(handle.join().is_err());
        });
        assert!(pool.idle.lock().is_err(), "lock is poisoned");
        // Every operation keeps serving through the recovered guard.
        assert_eq!(pool.idle(), 1);
        let scratch = pool.checkout();
        pool.restore(scratch);
        {
            let _guard = pool.scratch();
        }
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.stats().warm_checkouts, 2);
    }

    #[test]
    fn pooled_scratch_guard_restores_on_drop() {
        let pool = ScratchPool::new(64);
        {
            let mut guard = pool.scratch();
            guard.ensure(64);
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 1);
    }

    /// A loom-style interleaving stress for the Chase–Lev owner-pop vs.
    /// thief-steal race: the owner pushes and pops at the bottom while
    /// thieves hammer the top; every pushed value must come out exactly
    /// once, across both ends, including the contended last-element case
    /// the `SeqCst` fences arbitrate.
    #[test]
    fn chase_lev_steal_pop_race_delivers_each_task_once() {
        const VALUES: usize = 20_000;
        const THIEVES: usize = 3;
        let deque = ChaseLev::new();
        let taken: Vec<AtomicUsize> = (0..VALUES).map(|_| AtomicUsize::new(0)).collect();
        let stop = AtomicBool::new(false);
        // Task payloads never execute here: the header is a dummy
        // aligned address used purely as a tag, the chunk is the value.
        let dummy = 0x100usize as *const JobHeader;
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| loop {
                    match deque.steal() {
                        Steal::Success(task) => {
                            taken[task.chunk as usize].fetch_add(1, Ordering::SeqCst);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            // Owner: push in small bursts, pop roughly half back, so the
            // deque repeatedly passes through the one-element state.
            let mut next = 0usize;
            while next < VALUES {
                let burst = (VALUES - next).min(7);
                for _ in 0..burst {
                    while !deque.push(Task {
                        header: dummy,
                        chunk: next as u32,
                    }) {
                        std::hint::spin_loop();
                    }
                    next += 1;
                }
                for _ in 0..burst / 2 + 1 {
                    if let Some(task) = deque.pop() {
                        taken[task.chunk as usize].fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            while let Some(task) = deque.pop() {
                taken[task.chunk as usize].fetch_add(1, Ordering::SeqCst);
            }
            // Let the thieves drain anything still in flight.
            while deque.len() > 0 {
                std::hint::spin_loop();
            }
            stop.store(true, Ordering::SeqCst);
        });
        for (value, count) in taken.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "value {value} delivered a wrong number of times"
            );
        }
        assert_eq!(deque.len(), 0);
    }

    /// The Vyukov injector under concurrent producers and consumers:
    /// every pushed value pops exactly once, and a full ring refuses the
    /// push instead of overwriting.
    #[test]
    fn injector_mpmc_delivers_each_task_once() {
        const PER_PRODUCER: usize = 10_000;
        const PRODUCERS: usize = 2;
        const CONSUMERS: usize = 2;
        let injector = Injector::new();
        let taken: Vec<AtomicUsize> = (0..PER_PRODUCER * PRODUCERS)
            .map(|_| AtomicUsize::new(0))
            .collect();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for consumer in 0..CONSUMERS {
                let _ = consumer;
                scope.spawn(|| loop {
                    match injector.pop() {
                        Some(task) => {
                            taken[task.chunk as usize].fetch_add(1, Ordering::SeqCst);
                        }
                        None => {
                            if stop.load(Ordering::SeqCst) && injector.len() == 0 {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut handles = Vec::new();
            for producer in 0..PRODUCERS {
                let injector = &injector;
                handles.push(scope.spawn(move || {
                    let dummy = 0x100usize as *const JobHeader;
                    for i in 0..PER_PRODUCER {
                        let value = producer * PER_PRODUCER + i;
                        while !injector.push(Task {
                            header: dummy,
                            chunk: value as u32,
                        }) {
                            // Full ring: back off until consumers drain.
                            std::hint::spin_loop();
                        }
                    }
                }));
            }
            for handle in handles {
                handle.join().expect("producer");
            }
            stop.store(true, Ordering::SeqCst);
        });
        for (value, count) in taken.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "value {value} miscounted");
        }
    }

    #[test]
    fn injector_refuses_pushes_at_capacity() {
        let injector = Injector::new();
        let dummy = 0x100usize as *const JobHeader;
        for chunk in 0..INJECTOR_CAP {
            assert!(injector.push(Task {
                header: dummy,
                chunk: chunk as u32,
            }));
        }
        assert!(!injector.push(Task {
            header: dummy,
            chunk: 0,
        }));
        assert_eq!(injector.len(), INJECTOR_CAP);
        let first = injector.pop().expect("non-empty");
        assert_eq!(first.chunk, 0, "ring is FIFO");
        assert!(injector.push(Task {
            header: dummy,
            chunk: 7,
        }));
    }

    #[test]
    fn helping_submitters_preserve_task_ownership_accounting() {
        let pool = Arc::new(WorkerPool::new(2));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    pool.fork_join(4, &|_| {
                        std::hint::spin_loop();
                    });
                }
            }));
        }
        for handle in handles {
            handle.join().expect("submitter thread");
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_submitted, 4 * 50);
        assert_eq!(stats.tasks_queued, 4 * 50 * 3);
        // Every queued task was retired by exactly one executor: a lane,
        // its own submitter (steal-back), or a helping foreign submitter.
        assert_eq!(
            stats.tasks_taken_by_lanes + stats.tasks_stolen_back + stats.tasks_helped,
            stats.tasks_queued
        );
        assert_eq!(pool.queue_depth(), 0, "queues drain when the pool is idle");
    }

    #[test]
    fn idle_hook_runs_when_lanes_park_and_installs_once() {
        let pool = WorkerPool::new(2);
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_fired = Arc::clone(&fired);
        assert!(pool.set_idle_hook(Box::new(move || {
            hook_fired.fetch_add(1, Ordering::SeqCst);
            false
        })));
        assert!(
            !pool.set_idle_hook(Box::new(|| false)),
            "second installation refused"
        );
        // Submitting work forces the lane through its idle path (before
        // parking again) at least once afterwards.
        pool.fork_join(2, &|_| {});
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "idle hook never fired"
            );
            std::thread::yield_now();
        }
    }
}
