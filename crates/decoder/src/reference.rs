//! The retained `HashMap` reference decoder — the seed implementation the
//! token-table engine in [`crate::search`] is measured and verified
//! against.
//!
//! Semantics are the original frame-synchronous Viterbi beam search:
//! tokens live in a per-frame `HashMap<u32, Cell>`, every frame collects,
//! filters, and sorts the whole map, and every relax unconditionally
//! pushes a lattice entry. It is deliberately kept allocation-heavy and
//! simple: the equivalence suite asserts the optimized decoder produces
//! byte-identical `words`, `cost`, and `best_state`, and the decode
//! benchmark (`BENCH_decode.json`) reports the speedup over this
//! baseline.
//!
//! The only change from the seed is the `max_active` path of the
//! (private) `ReferenceDecoder::prune`: survivors are now rank-selected
//! with one `select_nth_unstable_by` instead of being fully sorted twice.

use crate::lattice::{Lattice, TraceId};
use crate::search::{DecodeOptions, DecodeResult, DecodeStats, FrameStats};
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Cell {
    cost: f32,
    trace: TraceId,
}

/// The seed `HashMap` beam-search decoder.
///
/// Deterministic: tokens are expanded in ascending state order, so equal
/// inputs produce identical lattices and results on every run and
/// platform. [`DecodeOptions::lattice_gc_interval`] is ignored — the
/// reference keeps the full token trace, exactly as the seed did.
#[derive(Debug, Clone, Default)]
pub struct ReferenceDecoder {
    opts: DecodeOptions,
}

impl ReferenceDecoder {
    /// Creates a decoder with the given options.
    pub fn new(opts: DecodeOptions) -> Self {
        Self { opts }
    }

    /// The configured options.
    pub fn options(&self) -> &DecodeOptions {
        &self.opts
    }

    /// Runs the search over all frames of `scores`.
    ///
    /// # Panics
    ///
    /// Panics if the WFST references phone labels outside the score table.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let mut lattice = Lattice::new();
        let mut stats = DecodeStats::default();
        let mut cur: HashMap<u32, Cell> = HashMap::new();

        let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
        cur.insert(
            wfst.start().0,
            Cell {
                cost: 0.0,
                trace: start_trace,
            },
        );
        // Initial epsilon closure, before any frame is consumed.
        let mut scratch = FrameStats::default();
        epsilon_closure(wfst, &mut cur, &mut lattice, &mut scratch);

        for frame in 0..scores.num_frames() {
            let mut fs = FrameStats {
                active_tokens: cur.len(),
                ..FrameStats::default()
            };
            let expanded = self.prune(&cur);
            fs.expanded_tokens = expanded.len();

            let mut next: HashMap<u32, Cell> = HashMap::with_capacity(expanded.len() * 2);
            for &(state_raw, cell) in &expanded {
                let state = StateId(state_raw);
                if self.opts.record_state_accesses {
                    *stats.state_accesses.entry(state_raw).or_insert(0) += 1;
                }
                for arc in wfst.emitting_arcs(state) {
                    fs.arcs_traversed += 1;
                    let cost = cell.cost + arc.weight + scores.cost(frame, arc.ilabel);
                    relax(
                        &mut next,
                        &mut lattice,
                        arc.dest.0,
                        cost,
                        cell.trace,
                        arc.olabel,
                        &mut fs,
                    );
                }
                // Epsilon arcs of the *source* state were already resolved
                // by the closure of the previous frame; closure below
                // handles the new frontier.
            }
            epsilon_closure(wfst, &mut next, &mut lattice, &mut fs);
            cur = next;
            stats.frames.push(fs);
            if cur.is_empty() {
                break; // the beam killed every path; decode fails gracefully
            }
        }

        self.finish(wfst, cur, lattice, stats)
    }

    /// Applies beam (and optional histogram) pruning, returning surviving
    /// tokens in ascending state order.
    fn prune(&self, cur: &HashMap<u32, Cell>) -> Vec<(u32, Cell)> {
        let best = cur.values().map(|c| c.cost).fold(f32::INFINITY, f32::min);
        let threshold = best + self.opts.beam;
        let mut expanded: Vec<(u32, Cell)> = cur
            .iter()
            .filter(|(_, c)| c.cost <= threshold)
            .map(|(&s, &c)| (s, c))
            .collect();
        if let Some(cap) = self.opts.max_active {
            if cap == 0 {
                expanded.clear();
            } else if expanded.len() > cap {
                // One rank-selection instead of the seed's two full sorts:
                // partition the `cap` cheapest (ties by state id) to the
                // front, then order only the survivors by state.
                expanded.select_nth_unstable_by(cap - 1, |a, b| {
                    a.1.cost.total_cmp(&b.1.cost).then(a.0.cmp(&b.0))
                });
                expanded.truncate(cap);
            }
        }
        expanded.sort_unstable_by_key(|&(s, _)| s);
        expanded
    }

    fn finish(
        &self,
        wfst: &Wfst,
        cur: HashMap<u32, Cell>,
        lattice: Lattice,
        stats: DecodeStats,
    ) -> DecodeResult {
        // Prefer tokens in final states (cost + final cost); fall back to
        // the globally cheapest token, as Kaldi does for truncated audio.
        let mut best_final: Option<(u32, f32, TraceId)> = None;
        let mut best_any: Option<(u32, f32, TraceId)> = None;
        let mut states: Vec<(&u32, &Cell)> = cur.iter().collect();
        states.sort_unstable_by_key(|(s, _)| **s);
        for (&state, cell) in states {
            let better_any = best_any.is_none_or(|(_, c, _)| cell.cost < c);
            if better_any {
                best_any = Some((state, cell.cost, cell.trace));
            }
            let f = wfst.final_cost(StateId(state));
            if f.is_finite() {
                let total = cell.cost + f;
                let better = best_final.is_none_or(|(_, c, _)| total < c);
                if better {
                    best_final = Some((state, total, cell.trace));
                }
            }
        }
        let (reached_final, chosen) = match (best_final, best_any) {
            (Some(f), _) => (true, Some(f)),
            (None, any) => (false, any),
        };
        match chosen {
            Some((state, cost, trace)) => {
                let words = lattice.backtrack(trace);
                DecodeResult {
                    words,
                    cost,
                    reached_final,
                    best_state: StateId(state),
                    stats,
                    lattice,
                }
            }
            None => DecodeResult {
                words: Vec::new(),
                cost: f32::INFINITY,
                reached_final: false,
                best_state: wfst.start(),
                stats,
                lattice,
            },
        }
    }
}

/// Transitively relaxes epsilon arcs inside one frame's token set.
///
/// Worklist algorithm: whenever a token improves, its epsilon arcs are
/// reconsidered. Non-negative weights guarantee termination (zero-weight
/// cycles yield no strict improvement and stop). Deterministic because the
/// initial worklist is sorted by state id.
fn epsilon_closure(
    wfst: &Wfst,
    tokens: &mut HashMap<u32, Cell>,
    lattice: &mut Lattice,
    fs: &mut FrameStats,
) {
    let mut worklist: Vec<u32> = tokens.keys().copied().collect();
    worklist.sort_unstable();
    let mut idx = 0;
    while idx < worklist.len() {
        let state_raw = worklist[idx];
        idx += 1;
        let Some(&cell) = tokens.get(&state_raw) else {
            continue;
        };
        for arc in wfst.epsilon_arcs(StateId(state_raw)) {
            fs.arcs_traversed += 1;
            let cost = cell.cost + arc.weight;
            let improved = relax(
                tokens, lattice, arc.dest.0, cost, cell.trace, arc.olabel, fs,
            );
            if improved {
                worklist.push(arc.dest.0);
            }
        }
    }
}

/// Keeps only the best ingoing path per destination token, appending a
/// lattice entry when the path improves. Returns whether an improvement
/// happened.
fn relax(
    map: &mut HashMap<u32, Cell>,
    lattice: &mut Lattice,
    dest: u32,
    cost: f32,
    prev: TraceId,
    word: WordId,
    fs: &mut FrameStats,
) -> bool {
    match map.get_mut(&dest) {
        Some(cell) if cell.cost <= cost => false,
        slot => {
            let trace = lattice.push(prev, word);
            let cell = Cell { cost, trace };
            match slot {
                Some(existing) => *existing = cell,
                None => {
                    map.insert(dest, cell);
                }
            }
            fs.tokens_created += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_wfst::builder::WfstBuilder;
    use asr_wfst::synth::{SynthConfig, SynthWfst};
    use asr_wfst::PhoneId;

    #[test]
    fn reference_decode_is_deterministic() {
        let w = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let scores = AcousticTable::random(20, w.num_phones() as usize, (0.5, 4.0), 3);
        let d = ReferenceDecoder::new(DecodeOptions::with_beam(6.0));
        let a = d.decode(&w, &scores);
        let b = d.decode(&w, &scores);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.words, b.words);
        assert_eq!(a.lattice.len(), b.lattice.len());
        assert_eq!(a.best_state, b.best_state);
    }

    #[test]
    fn max_active_selection_keeps_the_cheapest_tokens() {
        // Parallel arcs into many destinations; cap must keep the cheapest.
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let dests: Vec<_> = (0..8).map(|_| b.add_state()).collect();
        b.set_start(s0);
        for (i, &d) in dests.iter().enumerate() {
            b.add_arc(s0, d, PhoneId(1), WordId(i as u32 + 1), i as f32);
            b.add_arc(d, d, PhoneId(1), WordId::NONE, 0.1);
            b.set_final(d, 0.0);
        }
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(2, 2, |_, _| 0.5);
        let r = ReferenceDecoder::new(DecodeOptions {
            beam: 100.0,
            max_active: Some(3),
            ..DecodeOptions::default()
        })
        .decode(&w, &scores);
        // Frame 1 expands at most the cap.
        assert!(r.stats.frames[1].expanded_tokens <= 3);
        // The surviving path is the cheapest branch.
        assert_eq!(r.words, vec![WordId(1)]);
    }
}
