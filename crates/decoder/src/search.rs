//! Frame-synchronous Viterbi beam search (the algorithm of Section II).
//!
//! Each frame, every surviving token's outgoing non-epsilon arcs are
//! expanded with the frame's acoustic cost added (Equation 1 in log space:
//! additions replace multiplications), destination tokens keep only their
//! best ingoing path, and epsilon arcs are then followed transitively
//! without consuming a frame. Tokens outside `best + beam` are pruned —
//! standard Viterbi beam search. Backpointers and word labels go to the
//! [`crate::lattice::Lattice`]; backtracking recovers the word sequence.

use crate::lattice::{Lattice, TraceId};
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning knobs of the beam search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeOptions {
    /// Beam width: tokens costlier than `frame_best + beam` are pruned.
    pub beam: f32,
    /// Optional cap on tokens expanded per frame (histogram pruning); the
    /// paper's accelerator uses pure beam pruning, so this defaults off.
    pub max_active: Option<usize>,
    /// Record per-state fetch counts (feeds the Figure 7 dynamic CDF).
    pub record_state_accesses: bool,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        Self {
            beam: 8.0,
            max_active: None,
            record_state_accesses: false,
        }
    }
}

impl DecodeOptions {
    /// Convenience constructor fixing only the beam width.
    pub fn with_beam(beam: f32) -> Self {
        Self {
            beam,
            ..Self::default()
        }
    }
}

/// Per-frame activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Tokens alive at the start of the frame (before pruning).
    pub active_tokens: usize,
    /// Tokens that survived pruning and were expanded.
    pub expanded_tokens: usize,
    /// Arcs traversed (emitting + epsilon).
    pub arcs_traversed: usize,
    /// Token insertions/improvements into the next frame.
    pub tokens_created: usize,
}

/// Aggregated decode statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecodeStats {
    /// One entry per frame.
    pub frames: Vec<FrameStats>,
    /// State-fetch counts keyed by raw state id (present only when
    /// [`DecodeOptions::record_state_accesses`] is set).
    pub state_accesses: HashMap<u32, u64>,
}

impl DecodeStats {
    /// Total arcs traversed across all frames.
    pub fn total_arcs(&self) -> u64 {
        self.frames.iter().map(|f| f.arcs_traversed as u64).sum()
    }

    /// Mean arcs traversed per frame (the paper observes ~25k on the full
    /// Kaldi model, 0.07% of all arcs).
    pub fn mean_arcs_per_frame(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.total_arcs() as f64 / self.frames.len() as f64
    }

    /// Mean tokens expanded per frame.
    pub fn mean_expanded_per_frame(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let total: u64 = self.frames.iter().map(|f| f.expanded_tokens as u64).sum();
        total as f64 / self.frames.len() as f64
    }
}

/// Outcome of a decode.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// Words on the best path, in utterance order.
    pub words: Vec<WordId>,
    /// Cost of the best path (including final cost when reached).
    pub cost: f32,
    /// Whether the best path ends in a final state.
    pub reached_final: bool,
    /// The state of the winning token in the last frame.
    pub best_state: StateId,
    /// Activity statistics.
    pub stats: DecodeStats,
    /// The full token trace (for inspection and memory accounting).
    pub lattice: Lattice,
}

#[derive(Debug, Clone, Copy)]
struct Cell {
    cost: f32,
    trace: TraceId,
}

/// The reference beam-search decoder.
///
/// Deterministic: tokens are expanded in ascending state order, so equal
/// inputs produce identical lattices and results on every run and platform.
#[derive(Debug, Clone, Default)]
pub struct ViterbiDecoder {
    opts: DecodeOptions,
}

impl ViterbiDecoder {
    /// Creates a decoder with the given options.
    pub fn new(opts: DecodeOptions) -> Self {
        Self { opts }
    }

    /// The configured options.
    pub fn options(&self) -> &DecodeOptions {
        &self.opts
    }

    /// Runs the search over all frames of `scores`.
    ///
    /// # Panics
    ///
    /// Panics if the WFST references phone labels outside the score table.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let mut lattice = Lattice::new();
        let mut stats = DecodeStats::default();
        let mut cur: HashMap<u32, Cell> = HashMap::new();

        let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
        cur.insert(
            wfst.start().0,
            Cell {
                cost: 0.0,
                trace: start_trace,
            },
        );
        // Initial epsilon closure, before any frame is consumed.
        let mut scratch = FrameStats::default();
        epsilon_closure(wfst, &mut cur, &mut lattice, &mut scratch);

        for frame in 0..scores.num_frames() {
            let mut fs = FrameStats {
                active_tokens: cur.len(),
                ..FrameStats::default()
            };
            let expanded = self.prune(&cur);
            fs.expanded_tokens = expanded.len();

            let mut next: HashMap<u32, Cell> = HashMap::with_capacity(expanded.len() * 2);
            for &(state_raw, cell) in &expanded {
                let state = StateId(state_raw);
                if self.opts.record_state_accesses {
                    *stats.state_accesses.entry(state_raw).or_insert(0) += 1;
                }
                for arc in wfst.emitting_arcs(state) {
                    fs.arcs_traversed += 1;
                    let cost = cell.cost + arc.weight + scores.cost(frame, arc.ilabel);
                    relax(&mut next, &mut lattice, arc.dest.0, cost, cell.trace, arc.olabel, &mut fs);
                }
                // Epsilon arcs of the *source* state were already resolved
                // by the closure of the previous frame; closure below
                // handles the new frontier.
            }
            epsilon_closure(wfst, &mut next, &mut lattice, &mut fs);
            cur = next;
            stats.frames.push(fs);
            if cur.is_empty() {
                break; // the beam killed every path; decode fails gracefully
            }
        }

        self.finish(wfst, cur, lattice, stats)
    }

    /// Applies beam (and optional histogram) pruning, returning surviving
    /// tokens in ascending state order.
    fn prune(&self, cur: &HashMap<u32, Cell>) -> Vec<(u32, Cell)> {
        let best = cur
            .values()
            .map(|c| c.cost)
            .fold(f32::INFINITY, f32::min);
        let threshold = best + self.opts.beam;
        let mut expanded: Vec<(u32, Cell)> = cur
            .iter()
            .filter(|(_, c)| c.cost <= threshold)
            .map(|(&s, &c)| (s, c))
            .collect();
        expanded.sort_unstable_by_key(|&(s, _)| s);
        if let Some(cap) = self.opts.max_active {
            if expanded.len() > cap {
                expanded.sort_by(|a, b| a.1.cost.total_cmp(&b.1.cost).then(a.0.cmp(&b.0)));
                expanded.truncate(cap);
                expanded.sort_unstable_by_key(|&(s, _)| s);
            }
        }
        expanded
    }

    fn finish(
        &self,
        wfst: &Wfst,
        cur: HashMap<u32, Cell>,
        lattice: Lattice,
        stats: DecodeStats,
    ) -> DecodeResult {
        // Prefer tokens in final states (cost + final cost); fall back to
        // the globally cheapest token, as Kaldi does for truncated audio.
        let mut best_final: Option<(u32, f32, TraceId)> = None;
        let mut best_any: Option<(u32, f32, TraceId)> = None;
        let mut states: Vec<(&u32, &Cell)> = cur.iter().collect();
        states.sort_unstable_by_key(|(s, _)| **s);
        for (&state, cell) in states {
            let better_any = best_any.map_or(true, |(_, c, _)| cell.cost < c);
            if better_any {
                best_any = Some((state, cell.cost, cell.trace));
            }
            let f = wfst.final_cost(StateId(state));
            if f.is_finite() {
                let total = cell.cost + f;
                let better = best_final.map_or(true, |(_, c, _)| total < c);
                if better {
                    best_final = Some((state, total, cell.trace));
                }
            }
        }
        let (reached_final, chosen) = match (best_final, best_any) {
            (Some(f), _) => (true, Some(f)),
            (None, any) => (false, any),
        };
        match chosen {
            Some((state, cost, trace)) => {
                let words = lattice.backtrack(trace);
                DecodeResult {
                    words,
                    cost,
                    reached_final,
                    best_state: StateId(state),
                    stats,
                    lattice,
                }
            }
            None => DecodeResult {
                words: Vec::new(),
                cost: f32::INFINITY,
                reached_final: false,
                best_state: wfst.start(),
                stats,
                lattice,
            },
        }
    }
}

/// Transitively relaxes epsilon arcs inside one frame's token set.
///
/// Worklist algorithm: whenever a token improves, its epsilon arcs are
/// reconsidered. Non-negative weights guarantee termination (zero-weight
/// cycles yield no strict improvement and stop). Deterministic because the
/// initial worklist is sorted by state id.
fn epsilon_closure(
    wfst: &Wfst,
    tokens: &mut HashMap<u32, Cell>,
    lattice: &mut Lattice,
    fs: &mut FrameStats,
) {
    let mut worklist: Vec<u32> = tokens.keys().copied().collect();
    worklist.sort_unstable();
    let mut idx = 0;
    while idx < worklist.len() {
        let state_raw = worklist[idx];
        idx += 1;
        let Some(&cell) = tokens.get(&state_raw) else {
            continue;
        };
        for arc in wfst.epsilon_arcs(StateId(state_raw)) {
            fs.arcs_traversed += 1;
            let cost = cell.cost + arc.weight;
            let improved = relax(
                tokens,
                lattice,
                arc.dest.0,
                cost,
                cell.trace,
                arc.olabel,
                fs,
            );
            if improved {
                worklist.push(arc.dest.0);
            }
        }
    }
}

/// Keeps only the best ingoing path per destination token, appending a
/// lattice entry when the path improves. Returns whether an improvement
/// happened.
fn relax(
    map: &mut HashMap<u32, Cell>,
    lattice: &mut Lattice,
    dest: u32,
    cost: f32,
    prev: TraceId,
    word: WordId,
    fs: &mut FrameStats,
) -> bool {
    match map.get_mut(&dest) {
        Some(cell) if cell.cost <= cost => false,
        slot => {
            let trace = lattice.push(prev, word);
            let cell = Cell { cost, trace };
            match slot {
                Some(existing) => *existing = cell,
                None => {
                    map.insert(dest, cell);
                }
            }
            fs.tokens_created += 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_wfst::builder::WfstBuilder;
    use asr_wfst::PhoneId;

    /// The Figure 2 example: a WFST recognizing "low" (l ow) and "less"
    /// (l eh s), three frames of acoustic scores favouring "low".
    fn figure2() -> (Wfst, AcousticTable) {
        let (l, ow, eh, _s) = (1u32, 2, 3, 4);
        let mut b = WfstBuilder::new();
        let s: Vec<StateId> = (0..7).map(|_| b.add_state()).collect();
        b.set_start(s[0]);
        // costs = -ln(prob) of Figure 2a
        b.add_arc(s[0], s[1], PhoneId(l), WordId(1), 0.51); // 0.6, "low" path
        b.add_arc(s[0], s[4], PhoneId(l), WordId(2), 0.92); // 0.4, "less" path
        b.add_arc(s[1], s[2], PhoneId(ow), WordId::NONE, 0.22); // 0.8
        b.add_arc(s[2], s[3], PhoneId(ow), WordId::NONE, 0.36); // 0.7 self-ish
        b.add_arc(s[4], s[5], PhoneId(eh), WordId::NONE, 0.51);
        b.add_arc(s[5], s[6], PhoneId(4), WordId::NONE, 0.22);
        b.set_final(s[3], 0.0);
        b.set_final(s[6], 0.0);
        let w = b.build().unwrap();
        // Frames: l, ow, ow — acoustically "low" (cost = -ln(p)).
        let probs: [[f32; 5]; 3] = [
            // eps, l, ow, eh, s
            [1.0, 0.9, 0.3, 0.1, 0.2],
            [1.0, 0.2, 0.8, 0.4, 0.1],
            [1.0, 0.1, 0.9, 0.3, 0.2],
        ];
        let table = AcousticTable::from_fn(3, 5, |f, p| -probs[f][p].ln());
        (w, table)
    }

    #[test]
    fn decodes_figure2_to_low() {
        let (w, scores) = figure2();
        let r = ViterbiDecoder::new(DecodeOptions::with_beam(20.0)).decode(&w, &scores);
        assert!(r.reached_final);
        assert_eq!(r.words, vec![WordId(1)], "expected the word 'low'");
        assert_eq!(r.best_state, StateId(3));
        // Path cost: 0.51 + 0.22 + 0.36 (graph) + acoustic(l,ow,ow).
        let expect = 0.51 + 0.22 + 0.36 - (0.9f32.ln() + 0.8f32.ln() + 0.9f32.ln());
        assert!((r.cost - expect).abs() < 1e-4, "cost {} vs {}", r.cost, expect);
    }

    #[test]
    fn tight_beam_prunes_the_weak_path() {
        let (w, scores) = figure2();
        // Beam narrow enough that the "less" branch dies at frame 1.
        let r = ViterbiDecoder::new(DecodeOptions::with_beam(0.5)).decode(&w, &scores);
        assert_eq!(r.words, vec![WordId(1)]);
        // Frame 1 should have expanded fewer tokens than frame 0 created.
        assert!(r.stats.frames[1].expanded_tokens <= r.stats.frames[1].active_tokens);
    }

    #[test]
    fn epsilon_arcs_are_traversed_without_consuming_frames() {
        // start --eps(0.1)--> a --phone1--> b(final)
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        b.add_epsilon_arc(s0, s1, 0.1);
        b.add_arc(s1, s2, PhoneId(1), WordId(3), 0.2);
        b.set_final(s2, 0.0);
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(1, 2, |_, p| if p == 1 { 0.3 } else { 0.0 });
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert!(r.reached_final);
        assert_eq!(r.words, vec![WordId(3)]);
        assert!((r.cost - 0.6).abs() < 1e-5);
    }

    #[test]
    fn epsilon_cycles_terminate() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        // Zero-cost epsilon cycle between s0 and s1.
        b.add_epsilon_arc(s0, s1, 0.0);
        b.add_epsilon_arc(s1, s0, 0.0);
        b.add_arc(s0, s2, PhoneId(1), WordId::NONE, 0.1);
        b.set_final(s2, 0.0);
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(1, 2, |_, _| 0.5);
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert!(r.reached_final);
        assert!((r.cost - 0.6).abs() < 1e-5);
    }

    #[test]
    fn best_ingoing_path_wins_at_merge_states() {
        // Two parallel arcs into the same destination with different costs.
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 2.0); // worse
        b.add_arc(s0, s1, PhoneId(2), WordId(2), 0.5); // better
        b.set_final(s1, 0.0);
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(1, 3, |_, _| 1.0);
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert_eq!(r.words, vec![WordId(2)]);
        assert!((r.cost - 1.5).abs() < 1e-5);
    }

    #[test]
    fn empty_score_table_returns_start_closure() {
        let (w, _) = figure2();
        let scores = AcousticTable::from_fn(0, 5, |_, _| 0.0);
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert!(!r.reached_final);
        assert!(r.words.is_empty());
        assert_eq!(r.best_state, w.start());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn stats_count_frames_and_arcs() {
        let (w, scores) = figure2();
        let r = ViterbiDecoder::new(DecodeOptions::with_beam(20.0)).decode(&w, &scores);
        assert_eq!(r.stats.frames.len(), 3);
        assert!(r.stats.total_arcs() >= 4);
        assert!(r.stats.mean_arcs_per_frame() > 0.0);
    }

    #[test]
    fn state_access_recording_is_optional() {
        let (w, scores) = figure2();
        let off = ViterbiDecoder::default().decode(&w, &scores);
        assert!(off.stats.state_accesses.is_empty());
        let on = ViterbiDecoder::new(DecodeOptions {
            record_state_accesses: true,
            ..DecodeOptions::default()
        })
        .decode(&w, &scores);
        assert!(!on.stats.state_accesses.is_empty());
        assert!(on.stats.state_accesses.contains_key(&0));
    }

    #[test]
    fn max_active_caps_expansion() {
        let (w, scores) = figure2();
        let r = ViterbiDecoder::new(DecodeOptions {
            beam: 100.0,
            max_active: Some(1),
            ..DecodeOptions::default()
        })
        .decode(&w, &scores);
        for f in &r.stats.frames {
            assert!(f.expanded_tokens <= 1);
        }
        // Greedy expansion still finds "low" here.
        assert_eq!(r.words, vec![WordId(1)]);
    }

    #[test]
    fn decode_is_deterministic() {
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let scores = AcousticTable::random(30, w.num_phones() as usize, (0.5, 4.0), 3);
        let d = ViterbiDecoder::new(DecodeOptions::with_beam(6.0));
        let a = d.decode(&w, &scores);
        let b = d.decode(&w, &scores);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.words, b.words);
        assert_eq!(a.lattice.len(), b.lattice.len());
        assert_eq!(a.best_state, b.best_state);
    }
}
