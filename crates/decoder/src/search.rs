//! Frame-synchronous Viterbi beam search (the algorithm of Section II),
//! rebuilt as a software twin of the accelerator's hash datapath.
//!
//! Each frame, every surviving token's outgoing non-epsilon arcs are
//! expanded with the frame's acoustic cost added (Equation 1 in log space:
//! additions replace multiplications), destination tokens keep only their
//! best ingoing path, and epsilon arcs are then followed transitively
//! without consuming a frame. Backpointers and word labels go to the
//! [`crate::lattice::Lattice`]; backtracking recovers the word sequence.
//!
//! # The hot path
//!
//! Where the retained [`crate::reference::ReferenceDecoder`] drives every
//! frame through `HashMap` lookups, full re-sorts of the map, and
//! unconditional lattice pushes, this decoder mirrors the accelerator's
//! structure (Section III of the paper):
//!
//! * **Token storage** is the double-buffered, epoch-tagged
//!   [`crate::token_table::TokenTable`] — the software stand-in for the
//!   two on-chip token hash tables. Clearing a frame is one epoch bump;
//!   after warm-up the whole frame loop performs **zero heap
//!   allocations** (asserted by `tests/alloc_free.rs`).
//! * **Prune-on-insert**: the table tracks the running frame-best during
//!   expansion, and arcs whose destination cost already exceeds
//!   `running_best + beam` skip both the relax and the lattice push — the
//!   accelerator's on-insert beam test. Because the running best can only
//!   over-estimate the final frame best, every skipped token is exactly
//!   one the next frame's prune would discard: decode results stay
//!   byte-identical to the reference (the equivalence suite asserts
//!   `words`, `cost`, and `best_state` match). On the final frame the
//!   filter is disabled so end-of-utterance final-state selection sees
//!   the same token set as the reference.
//! * **Active tracking** is the table's append-only active list (deduped
//!   by the epoch check); per-frame ordering work is one in-place sort of
//!   the surviving state ids rather than collect-and-sort of the whole
//!   map, and `max_active` uses a single rank-selection.
//! * **Lattice compaction**: every
//!   [`DecodeOptions::lattice_gc_interval`] frames the backpointer trace
//!   is mark-compacted from the live tokens (Kaldi's periodic token GC),
//!   so long utterances stop growing the trace unboundedly.

use crate::lattice::{CompactScratch, Lattice, TraceId};
use crate::token_table::TokenTable;
use asr_acoustic::scores::AcousticTable;
use asr_wfst::{StateId, Wfst, WordId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning knobs of the beam search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeOptions {
    /// Beam width: tokens costlier than `frame_best + beam` are pruned.
    pub beam: f32,
    /// Optional cap on tokens expanded per frame (histogram pruning); the
    /// paper's accelerator uses pure beam pruning, so this defaults off.
    pub max_active: Option<usize>,
    /// Record per-state fetch counts (feeds the Figure 7 dynamic CDF).
    pub record_state_accesses: bool,
    /// Compact the lattice every this many frames (`None` keeps the full
    /// trace, as the accelerator leaves stale tokens in DRAM). Ignored by
    /// the reference decoder.
    pub lattice_gc_interval: Option<u32>,
}

impl Default for DecodeOptions {
    fn default() -> Self {
        Self {
            beam: 8.0,
            max_active: None,
            record_state_accesses: false,
            lattice_gc_interval: Some(32),
        }
    }
}

impl DecodeOptions {
    /// Convenience constructor fixing only the beam width.
    pub fn with_beam(beam: f32) -> Self {
        Self {
            beam,
            ..Self::default()
        }
    }
}

/// Per-frame activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Tokens alive at the start of the frame (before pruning).
    pub active_tokens: usize,
    /// Tokens that survived pruning and were expanded.
    pub expanded_tokens: usize,
    /// Arcs traversed (emitting + epsilon).
    pub arcs_traversed: usize,
    /// Token insertions/improvements into the next frame.
    pub tokens_created: usize,
}

/// Aggregated decode statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecodeStats {
    /// One entry per frame.
    pub frames: Vec<FrameStats>,
    /// State-fetch counts keyed by raw state id (present only when
    /// [`DecodeOptions::record_state_accesses`] is set).
    pub state_accesses: HashMap<u32, u64>,
}

impl DecodeStats {
    /// Total arcs traversed across all frames.
    pub fn total_arcs(&self) -> u64 {
        self.frames.iter().map(|f| f.arcs_traversed as u64).sum()
    }

    /// Mean arcs traversed per frame (the paper observes ~25k on the full
    /// Kaldi model, 0.07% of all arcs).
    pub fn mean_arcs_per_frame(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.total_arcs() as f64 / self.frames.len() as f64
    }

    /// Mean tokens expanded per frame.
    pub fn mean_expanded_per_frame(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let total: u64 = self.frames.iter().map(|f| f.expanded_tokens as u64).sum();
        total as f64 / self.frames.len() as f64
    }
}

/// Outcome of a decode.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// Words on the best path, in utterance order.
    pub words: Vec<WordId>,
    /// Cost of the best path (including final cost when reached).
    pub cost: f32,
    /// Whether the best path ends in a final state.
    pub reached_final: bool,
    /// The state of the winning token in the last frame.
    pub best_state: StateId,
    /// Activity statistics.
    pub stats: DecodeStats,
    /// The full token trace (for inspection and memory accounting).
    pub lattice: Lattice,
}

/// Reusable decode working set: the double-buffered token tables plus the
/// frontier/worklist/GC buffers. Holding one across decodes makes repeated
/// decoding of same-sized graphs allocation-free end to end.
#[derive(Debug, Clone)]
pub struct DecodeScratch {
    pub(crate) cur: TokenTable<TraceId>,
    pub(crate) next: TokenTable<TraceId>,
    /// Beam survivors of the current frame, sorted by state id.
    pub(crate) frontier: Vec<u32>,
    /// Epsilon-closure worklist.
    pub(crate) worklist: Vec<u32>,
    /// Live trace roots handed to the lattice GC.
    pub(crate) gc_roots: Vec<TraceId>,
    pub(crate) gc: CompactScratch,
}

impl DecodeScratch {
    /// Allocates scratch for graphs of up to `num_states` states.
    pub fn new(num_states: usize) -> Self {
        Self {
            cur: TokenTable::new(num_states, TraceId::ROOT),
            next: TokenTable::new(num_states, TraceId::ROOT),
            frontier: Vec::with_capacity(num_states.min(1 << 16)),
            worklist: Vec::with_capacity(num_states.min(1 << 16)),
            gc_roots: Vec::with_capacity(num_states.min(1 << 16)),
            gc: CompactScratch::new(),
        }
    }

    /// Grows the token tables if `num_states` exceeds their capacity.
    pub(crate) fn ensure(&mut self, num_states: usize) {
        if self.cur.capacity() < num_states {
            self.cur = TokenTable::new(num_states, TraceId::ROOT);
            self.next = TokenTable::new(num_states, TraceId::ROOT);
        }
    }
}

/// The token-table beam-search decoder.
///
/// Deterministic: tokens are expanded in ascending state order, so equal
/// inputs produce identical lattices and results on every run and
/// platform. Results (`words`, `cost`, `best_state`, `reached_final`) are
/// byte-identical to [`crate::reference::ReferenceDecoder`] on the same
/// inputs.
#[derive(Debug, Clone, Default)]
pub struct ViterbiDecoder {
    opts: DecodeOptions,
}

impl ViterbiDecoder {
    /// Creates a decoder with the given options.
    pub fn new(opts: DecodeOptions) -> Self {
        Self { opts }
    }

    /// The configured options.
    pub fn options(&self) -> &DecodeOptions {
        &self.opts
    }

    /// Runs the search over all frames of `scores`.
    ///
    /// # Panics
    ///
    /// Panics if the WFST references phone labels outside the score table.
    pub fn decode(&self, wfst: &Wfst, scores: &AcousticTable) -> DecodeResult {
        let mut scratch = DecodeScratch::new(wfst.num_states());
        self.decode_with(&mut scratch, wfst, scores)
    }

    /// Runs the search reusing `scratch`; repeated decodes through the
    /// same scratch skip all token-table allocation.
    ///
    /// # Panics
    ///
    /// Panics if the WFST references phone labels outside the score table.
    pub fn decode_with(
        &self,
        scratch: &mut DecodeScratch,
        wfst: &Wfst,
        scores: &AcousticTable,
    ) -> DecodeResult {
        scratch.ensure(wfst.num_states());
        let DecodeScratch {
            cur,
            next,
            frontier,
            worklist,
            gc_roots,
            gc,
        } = scratch;
        let mut lattice = Lattice::new();
        let mut stats = DecodeStats::default();
        let beam = self.opts.beam;

        cur.begin_frame();
        let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
        cur.relax(wfst.start().0, 0.0, || start_trace);
        // Initial epsilon closure, before any frame is consumed; no beam
        // applies yet (mirrors the reference).
        let mut scratch_fs = FrameStats::default();
        epsilon_closure(
            wfst,
            cur,
            &mut lattice,
            &mut scratch_fs,
            f32::INFINITY,
            worklist,
        );

        let num_frames = scores.num_frames();
        for frame in 0..num_frames {
            let mut fs = FrameStats {
                active_tokens: cur.len(),
                ..FrameStats::default()
            };
            build_frontier(cur, frontier, beam, self.opts.max_active);
            fs.expanded_tokens = frontier.len();
            if self.opts.record_state_accesses {
                for &state in frontier.iter() {
                    *stats.state_accesses.entry(state).or_insert(0) += 1;
                }
            }

            // The final frame keeps every token so final-state selection
            // sees the full set, exactly like the reference.
            let last_frame = frame + 1 == num_frames;
            relax_frame(
                wfst,
                cur,
                next,
                frontier,
                &mut lattice,
                &mut fs,
                beam,
                last_frame,
                scores.frame_row(frame),
            );
            // Epsilon closure under a threshold frozen at the end of the
            // emitting phase: order-independent, so the sharded parallel
            // decoder reproduces the exact same closure.
            let closure_threshold = if last_frame {
                f32::INFINITY
            } else {
                next.best() + beam
            };
            epsilon_closure(
                wfst,
                next,
                &mut lattice,
                &mut fs,
                closure_threshold,
                worklist,
            );
            std::mem::swap(cur, next);
            stats.frames.push(fs);
            if cur.is_empty() {
                break; // the beam killed every path; decode fails gracefully
            }
            if !last_frame {
                maybe_gc(
                    self.opts.lattice_gc_interval,
                    frame,
                    cur,
                    &mut lattice,
                    gc_roots,
                    frontier,
                    gc,
                );
            }
        }

        finish(wfst, cur, frontier, lattice, stats)
    }
}

/// Collects the beam (and optional histogram) survivors of `table` into
/// `frontier`, sorted by state id — the deterministic expansion order.
pub(crate) fn build_frontier(
    table: &TokenTable<TraceId>,
    frontier: &mut Vec<u32>,
    beam: f32,
    max_active: Option<usize>,
) {
    frontier.clear();
    let threshold = table.best() + beam;
    for &state in table.active() {
        if table.cost(state) <= threshold {
            frontier.push(state);
        }
    }
    if let Some(cap) = max_active {
        if cap == 0 {
            frontier.clear();
        } else if frontier.len() > cap {
            // Rank-select the `cap` cheapest (ties by state id) in one
            // pass; the survivor set is order-independent, so the single
            // state-order sort below suffices.
            frontier.select_nth_unstable_by(cap - 1, |&a, &b| {
                table.cost(a).total_cmp(&table.cost(b)).then(a.cmp(&b))
            });
            frontier.truncate(cap);
        }
    }
    frontier.sort_unstable();
}

/// Expands one frame's emitting arcs from `frontier` into `next` with
/// prune-on-insert and inline lattice pushes — the sequential frame body,
/// shared by the batch decoder, the streaming decoder, and the parallel
/// decoder's single-lane path so the three can never drift apart.
///
/// Prune-on-insert: the running frame-best can only over-estimate the
/// final best, so anything skipped here is a token the next frame's prune
/// would kill. The final frame keeps every token so final-state selection
/// sees the full set, exactly like the reference.
///
/// `row[p]` is the acoustic cost of phone `p` this frame (an
/// [`AcousticTable`] row or a streamed score row).
#[allow(clippy::too_many_arguments)]
pub(crate) fn relax_frame(
    wfst: &Wfst,
    cur: &TokenTable<TraceId>,
    next: &mut TokenTable<TraceId>,
    frontier: &[u32],
    lattice: &mut Lattice,
    fs: &mut FrameStats,
    beam: f32,
    last_frame: bool,
    row: &[f32],
) {
    next.begin_frame();
    for &state_raw in frontier {
        let cost0 = cur.cost(state_raw);
        let trace = cur.payload(state_raw);
        for arc in wfst.emitting_arcs(StateId(state_raw)) {
            fs.arcs_traversed += 1;
            let cost = cost0 + arc.weight + row[arc.ilabel.index()];
            if !last_frame && cost > next.best() + beam {
                continue;
            }
            if next.relax(arc.dest.0, cost, || lattice.push(trace, arc.olabel)) {
                fs.tokens_created += 1;
            }
        }
    }
}

/// Transitively relaxes epsilon arcs inside one frame's token table.
///
/// Worklist algorithm: whenever a token improves, its epsilon arcs are
/// reconsidered. Non-negative weights guarantee termination (zero-weight
/// cycles yield no strict improvement and stop). Deterministic because the
/// initial worklist is sorted by state id. Tokens beyond `threshold`
/// (frozen by the caller at the end of the emitting phase) are neither
/// stored nor expanded — they could never improve an in-beam token, since
/// epsilon weights are non-negative.
pub(crate) fn epsilon_closure(
    wfst: &Wfst,
    table: &mut TokenTable<TraceId>,
    lattice: &mut Lattice,
    fs: &mut FrameStats,
    threshold: f32,
    worklist: &mut Vec<u32>,
) {
    worklist.clear();
    for &state in table.active() {
        if table.cost(state) <= threshold {
            worklist.push(state);
        }
    }
    worklist.sort_unstable();
    let mut idx = 0;
    while idx < worklist.len() {
        let state_raw = worklist[idx];
        idx += 1;
        let cost = table.cost(state_raw);
        let trace = table.payload(state_raw);
        for arc in wfst.epsilon_arcs(StateId(state_raw)) {
            fs.arcs_traversed += 1;
            let dest_cost = cost + arc.weight;
            if dest_cost > threshold {
                continue;
            }
            if table.relax(arc.dest.0, dest_cost, || lattice.push(trace, arc.olabel)) {
                fs.tokens_created += 1;
                worklist.push(arc.dest.0);
            }
        }
    }
}

/// Runs lattice GC when `frame` crosses the configured interval: live
/// roots are the stored tokens' traces, and every surviving token's
/// backpointer is retargeted to the compacted trace.
pub(crate) fn maybe_gc(
    interval: Option<u32>,
    frame: usize,
    table: &mut TokenTable<TraceId>,
    lattice: &mut Lattice,
    gc_roots: &mut Vec<TraceId>,
    states_scratch: &mut Vec<u32>,
    gc: &mut CompactScratch,
) {
    let Some(interval) = interval else {
        return;
    };
    if interval == 0 || !(frame as u64 + 1).is_multiple_of(interval as u64) {
        return;
    }
    states_scratch.clear();
    states_scratch.extend_from_slice(table.active());
    gc_roots.clear();
    for &state in states_scratch.iter() {
        gc_roots.push(table.payload(state));
    }
    lattice.compact(gc_roots, gc);
    for (&state, &root) in states_scratch.iter().zip(gc_roots.iter()) {
        table.set_payload(state, root);
    }
}

/// End-of-utterance selection: prefer tokens in final states (cost +
/// final cost); fall back to the globally cheapest token, as Kaldi does
/// for truncated audio. Iterates stored tokens in ascending state order —
/// the reference's deterministic tie-break.
pub(crate) fn finish(
    wfst: &Wfst,
    cur: &mut TokenTable<TraceId>,
    states_scratch: &mut Vec<u32>,
    lattice: Lattice,
    stats: DecodeStats,
) -> DecodeResult {
    states_scratch.clear();
    states_scratch.extend_from_slice(cur.active());
    states_scratch.sort_unstable();
    let mut best_final: Option<(u32, f32, TraceId)> = None;
    let mut best_any: Option<(u32, f32, TraceId)> = None;
    for &state in states_scratch.iter() {
        let cost = cur.cost(state);
        let trace = cur.payload(state);
        if best_any.is_none_or(|(_, c, _)| cost < c) {
            best_any = Some((state, cost, trace));
        }
        let f = wfst.final_cost(StateId(state));
        if f.is_finite() {
            let total = cost + f;
            if best_final.is_none_or(|(_, c, _)| total < c) {
                best_final = Some((state, total, trace));
            }
        }
    }
    let (reached_final, chosen) = match (best_final, best_any) {
        (Some(f), _) => (true, Some(f)),
        (None, any) => (false, any),
    };
    match chosen {
        Some((state, cost, trace)) => {
            let words = lattice.backtrack(trace);
            DecodeResult {
                words,
                cost,
                reached_final,
                best_state: StateId(state),
                stats,
                lattice,
            }
        }
        None => DecodeResult {
            words: Vec::new(),
            cost: f32::INFINITY,
            reached_final: false,
            best_state: wfst.start(),
            stats,
            lattice,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asr_wfst::builder::WfstBuilder;
    use asr_wfst::PhoneId;

    /// The Figure 2 example: a WFST recognizing "low" (l ow) and "less"
    /// (l eh s), three frames of acoustic scores favouring "low".
    fn figure2() -> (Wfst, AcousticTable) {
        let (l, ow, eh, _s) = (1u32, 2, 3, 4);
        let mut b = WfstBuilder::new();
        let s: Vec<StateId> = (0..7).map(|_| b.add_state()).collect();
        b.set_start(s[0]);
        // costs = -ln(prob) of Figure 2a
        b.add_arc(s[0], s[1], PhoneId(l), WordId(1), 0.51); // 0.6, "low" path
        b.add_arc(s[0], s[4], PhoneId(l), WordId(2), 0.92); // 0.4, "less" path
        b.add_arc(s[1], s[2], PhoneId(ow), WordId::NONE, 0.22); // 0.8
        b.add_arc(s[2], s[3], PhoneId(ow), WordId::NONE, 0.36); // 0.7 self-ish
        b.add_arc(s[4], s[5], PhoneId(eh), WordId::NONE, 0.51);
        b.add_arc(s[5], s[6], PhoneId(4), WordId::NONE, 0.22);
        b.set_final(s[3], 0.0);
        b.set_final(s[6], 0.0);
        let w = b.build().unwrap();
        // Frames: l, ow, ow — acoustically "low" (cost = -ln(p)).
        let probs: [[f32; 5]; 3] = [
            // eps, l, ow, eh, s
            [1.0, 0.9, 0.3, 0.1, 0.2],
            [1.0, 0.2, 0.8, 0.4, 0.1],
            [1.0, 0.1, 0.9, 0.3, 0.2],
        ];
        let table = AcousticTable::from_fn(3, 5, |f, p| -probs[f][p].ln());
        (w, table)
    }

    #[test]
    fn decodes_figure2_to_low() {
        let (w, scores) = figure2();
        let r = ViterbiDecoder::new(DecodeOptions::with_beam(20.0)).decode(&w, &scores);
        assert!(r.reached_final);
        assert_eq!(r.words, vec![WordId(1)], "expected the word 'low'");
        assert_eq!(r.best_state, StateId(3));
        // Path cost: 0.51 + 0.22 + 0.36 (graph) + acoustic(l,ow,ow).
        let expect = 0.51 + 0.22 + 0.36 - (0.9f32.ln() + 0.8f32.ln() + 0.9f32.ln());
        assert!(
            (r.cost - expect).abs() < 1e-4,
            "cost {} vs {}",
            r.cost,
            expect
        );
    }

    #[test]
    fn tight_beam_prunes_the_weak_path() {
        let (w, scores) = figure2();
        // Beam narrow enough that the "less" branch dies at frame 1.
        let r = ViterbiDecoder::new(DecodeOptions::with_beam(0.5)).decode(&w, &scores);
        assert_eq!(r.words, vec![WordId(1)]);
        // Frame 1 should have expanded fewer tokens than frame 0 created.
        assert!(r.stats.frames[1].expanded_tokens <= r.stats.frames[1].active_tokens);
    }

    #[test]
    fn epsilon_arcs_are_traversed_without_consuming_frames() {
        // start --eps(0.1)--> a --phone1--> b(final)
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        b.add_epsilon_arc(s0, s1, 0.1);
        b.add_arc(s1, s2, PhoneId(1), WordId(3), 0.2);
        b.set_final(s2, 0.0);
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(1, 2, |_, p| if p == 1 { 0.3 } else { 0.0 });
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert!(r.reached_final);
        assert_eq!(r.words, vec![WordId(3)]);
        assert!((r.cost - 0.6).abs() < 1e-5);
    }

    #[test]
    fn epsilon_cycles_terminate() {
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        let s2 = b.add_state();
        b.set_start(s0);
        // Zero-cost epsilon cycle between s0 and s1.
        b.add_epsilon_arc(s0, s1, 0.0);
        b.add_epsilon_arc(s1, s0, 0.0);
        b.add_arc(s0, s2, PhoneId(1), WordId::NONE, 0.1);
        b.set_final(s2, 0.0);
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(1, 2, |_, _| 0.5);
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert!(r.reached_final);
        assert!((r.cost - 0.6).abs() < 1e-5);
    }

    #[test]
    fn best_ingoing_path_wins_at_merge_states() {
        // Two parallel arcs into the same destination with different costs.
        let mut b = WfstBuilder::new();
        let s0 = b.add_state();
        let s1 = b.add_state();
        b.set_start(s0);
        b.add_arc(s0, s1, PhoneId(1), WordId(1), 2.0); // worse
        b.add_arc(s0, s1, PhoneId(2), WordId(2), 0.5); // better
        b.set_final(s1, 0.0);
        let w = b.build().unwrap();
        let scores = AcousticTable::from_fn(1, 3, |_, _| 1.0);
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert_eq!(r.words, vec![WordId(2)]);
        assert!((r.cost - 1.5).abs() < 1e-5);
    }

    #[test]
    fn empty_score_table_returns_start_closure() {
        let (w, _) = figure2();
        let scores = AcousticTable::from_fn(0, 5, |_, _| 0.0);
        let r = ViterbiDecoder::default().decode(&w, &scores);
        assert!(!r.reached_final);
        assert!(r.words.is_empty());
        assert_eq!(r.best_state, w.start());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn stats_count_frames_and_arcs() {
        let (w, scores) = figure2();
        let r = ViterbiDecoder::new(DecodeOptions::with_beam(20.0)).decode(&w, &scores);
        assert_eq!(r.stats.frames.len(), 3);
        assert!(r.stats.total_arcs() >= 4);
        assert!(r.stats.mean_arcs_per_frame() > 0.0);
    }

    #[test]
    fn state_access_recording_is_optional() {
        let (w, scores) = figure2();
        let off = ViterbiDecoder::default().decode(&w, &scores);
        assert!(off.stats.state_accesses.is_empty());
        let on = ViterbiDecoder::new(DecodeOptions {
            record_state_accesses: true,
            ..DecodeOptions::default()
        })
        .decode(&w, &scores);
        assert!(!on.stats.state_accesses.is_empty());
        assert!(on.stats.state_accesses.contains_key(&0));
    }

    #[test]
    fn max_active_caps_expansion() {
        let (w, scores) = figure2();
        let r = ViterbiDecoder::new(DecodeOptions {
            beam: 100.0,
            max_active: Some(1),
            ..DecodeOptions::default()
        })
        .decode(&w, &scores);
        for f in &r.stats.frames {
            assert!(f.expanded_tokens <= 1);
        }
        // Greedy expansion still finds "low" here.
        assert_eq!(r.words, vec![WordId(1)]);
    }

    #[test]
    fn decode_is_deterministic() {
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let scores = AcousticTable::random(30, w.num_phones() as usize, (0.5, 4.0), 3);
        let d = ViterbiDecoder::new(DecodeOptions::with_beam(6.0));
        let a = d.decode(&w, &scores);
        let b = d.decode(&w, &scores);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.words, b.words);
        assert_eq!(a.lattice.len(), b.lattice.len());
        assert_eq!(a.best_state, b.best_state);
    }

    #[test]
    fn scratch_reuse_matches_fresh_decodes() {
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(2_000)).unwrap();
        let scores = AcousticTable::random(25, w.num_phones() as usize, (0.5, 4.0), 9);
        let d = ViterbiDecoder::new(DecodeOptions::with_beam(6.0));
        let fresh = d.decode(&w, &scores);
        let mut scratch = DecodeScratch::new(w.num_states());
        for _ in 0..3 {
            let reused = d.decode_with(&mut scratch, &w, &scores);
            assert_eq!(reused.cost, fresh.cost);
            assert_eq!(reused.words, fresh.words);
            assert_eq!(reused.best_state, fresh.best_state);
            assert_eq!(reused.lattice.len(), fresh.lattice.len());
        }
    }

    #[test]
    fn lattice_gc_shrinks_the_trace_without_changing_results() {
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(3_000)).unwrap();
        let scores = AcousticTable::random(60, w.num_phones() as usize, (0.5, 4.0), 21);
        let keep_all = ViterbiDecoder::new(DecodeOptions {
            lattice_gc_interval: None,
            ..DecodeOptions::with_beam(6.0)
        })
        .decode(&w, &scores);
        let gc = ViterbiDecoder::new(DecodeOptions {
            lattice_gc_interval: Some(8),
            ..DecodeOptions::with_beam(6.0)
        })
        .decode(&w, &scores);
        assert_eq!(gc.cost, keep_all.cost);
        assert_eq!(gc.words, keep_all.words);
        assert_eq!(gc.best_state, keep_all.best_state);
        assert!(
            gc.lattice.len() < keep_all.lattice.len(),
            "GC {} vs full {}",
            gc.lattice.len(),
            keep_all.lattice.len()
        );
    }
}
