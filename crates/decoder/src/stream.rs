//! Incremental (streaming) decoding: the batch frame loop of
//! [`crate::search::ViterbiDecoder`], cut open so frames can arrive one at
//! a time.
//!
//! The paper's full system pipelines its stages: the GPU scores acoustic
//! batch *i + 1* while the accelerator searches batch *i*, handing score
//! rows over through the double-buffered Acoustic Likelihood Buffer. A
//! [`StreamingDecode`] is the search side of that handoff — it consumes
//! score rows as they are produced and keeps the full decode state (token
//! tables, lattice, statistics) alive between rows, so hypotheses can be
//! read out mid-utterance.
//!
//! # Byte-identical to the batch decoder
//!
//! The batch decoder treats the final frame specially (prune-on-insert
//! off, unbounded epsilon-closure threshold) so end-of-utterance
//! final-state selection sees every token. A stream does not know which
//! frame is last — so the caller holds back one row:
//! [`StreamingDecode::step`] advances one *non-final* frame, and
//! [`StreamingDecode::finish`] takes the held-back final row and applies
//! the batch decoder's last-frame semantics. Feeding rows `0..n-1` through
//! `step` and row `n-1` through `finish` produces a [`DecodeResult`] that
//! is byte-identical — `words`, `cost`, `best_state`, `reached_final`,
//! lattice length — to `ViterbiDecoder::decode` over the same `n` rows,
//! which is exactly how the facade's streaming sessions pin their
//! correctness. The held-back row lives in the session's double-buffered
//! row pair, mirroring the ALB swap.

use crate::lattice::{Lattice, TraceId};
use crate::search::{
    build_frontier, epsilon_closure, finish as finish_decode, maybe_gc, relax_frame, DecodeOptions,
    DecodeResult, DecodeScratch, DecodeStats, FrameStats,
};
use asr_acoustic::online::{FrameScorer, OnlineScorer};
use asr_wfst::{StateId, Wfst, WordId};
use std::ops::Deref;

/// A mid-utterance best hypothesis, read without disturbing the search.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialHypothesis {
    /// Words on the current best path, in utterance order.
    pub words: Vec<WordId>,
    /// Path cost of the current best token (no final cost applied).
    pub cost: f32,
    /// State of the current best token.
    pub state: StateId,
    /// Frames consumed so far.
    pub frames: usize,
}

/// An in-flight incremental decode over a WFST handle.
///
/// Generic over how the graph is held: `G` is any [`Deref`] to a
/// [`Wfst`] — a plain `&Wfst` for pipeline-scoped streams, or an
/// `Arc<Wfst>` for **owned** streams with no borrowed lifetime at all,
/// which is what lets the runtime's sessions be `Send + 'static` and
/// migrate between threads mid-utterance.
///
/// Create one per utterance with a (pooled) [`DecodeScratch`], feed score
/// rows through [`StreamingDecode::step`], and recover the scratch from
/// [`StreamingDecode::finish`] for the next utterance.
#[derive(Debug)]
pub struct StreamingDecode<G: Deref<Target = Wfst>> {
    wfst: G,
    opts: DecodeOptions,
    scratch: DecodeScratch,
    lattice: Lattice,
    stats: DecodeStats,
    frames: usize,
    alive: bool,
}

impl<G: Deref<Target = Wfst>> StreamingDecode<G> {
    /// Starts a decode: seeds the start state and runs the initial
    /// epsilon closure, exactly like the batch decoder's preamble.
    pub fn new(wfst: G, opts: DecodeOptions, mut scratch: DecodeScratch) -> Self {
        let graph: &Wfst = &wfst;
        scratch.ensure(graph.num_states());
        let mut lattice = Lattice::new();
        scratch.cur.begin_frame();
        let start_trace = lattice.push(TraceId::ROOT, WordId::NONE);
        scratch.cur.relax(graph.start().0, 0.0, || start_trace);
        let mut preamble_fs = FrameStats::default();
        epsilon_closure(
            graph,
            &mut scratch.cur,
            &mut lattice,
            &mut preamble_fs,
            f32::INFINITY,
            &mut scratch.worklist,
        );
        Self {
            wfst,
            opts,
            scratch,
            lattice,
            stats: DecodeStats::default(),
            frames: 0,
            alive: true,
        }
    }

    /// Frames consumed so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// The search options currently in force.
    pub fn options(&self) -> &DecodeOptions {
        &self.opts
    }

    /// Retunes the search width — the serving layer's QoS knob. The new
    /// `beam`/`max_active` apply from the next consumed row on: a frame
    /// boundary, so mid-utterance retuning never splits a frame's
    /// pruning decisions. The decode is deterministic given the
    /// parameter trace (which row ran under which width), and a decode
    /// whose trace is constant is byte-identical to one constructed
    /// with those options — the pin the runtime's QoS tiers rest on.
    pub fn set_search_params(&mut self, beam: f32, max_active: Option<usize>) {
        self.opts.beam = beam;
        self.opts.max_active = max_active;
    }

    /// `false` once the beam has pruned every path; further rows are
    /// ignored, matching the batch decoder's early exit.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Consumes one frame's score row (`row[p]` = acoustic cost of phone
    /// `p`, `row[0]` the unread epsilon column), treating it as a
    /// *non-final* frame.
    ///
    /// # Panics
    ///
    /// Panics if the WFST references a phone label at or beyond
    /// `row.len()`.
    pub fn step(&mut self, row: &[f32]) {
        self.advance(row, false);
    }

    /// The current best hypothesis: the cheapest live token (ties broken
    /// toward the lowest state id), backtracked through the lattice. A
    /// fresh stream already has live tokens (the start state's epsilon
    /// closure), so this returns `Some` with empty words and `frames: 0`
    /// before any row is consumed; `None` only once the beam has killed
    /// every path.
    pub fn partial(&self) -> Option<PartialHypothesis> {
        if !self.alive {
            return None;
        }
        let cur = &self.scratch.cur;
        let mut best: Option<(u32, f32)> = None;
        for &state in cur.active() {
            let cost = cur.cost(state);
            let better = match best {
                None => true,
                Some((bs, bc)) => cost < bc || (cost == bc && state < bs),
            };
            if better {
                best = Some((state, cost));
            }
        }
        best.map(|(state, cost)| PartialHypothesis {
            words: self.lattice.backtrack(cur.payload(state)),
            cost,
            state: StateId(state),
            frames: self.frames,
        })
    }

    /// Ends the utterance: consumes the held-back final row (if any) with
    /// the batch decoder's last-frame semantics, runs final-state
    /// selection, and hands the scratch back for reuse.
    pub fn finish(mut self, last_row: Option<&[f32]>) -> (DecodeResult, DecodeScratch) {
        if let Some(row) = last_row {
            self.advance(row, true);
        }
        let Self {
            wfst,
            mut scratch,
            lattice,
            stats,
            ..
        } = self;
        let result = finish_decode(
            &wfst,
            &mut scratch.cur,
            &mut scratch.frontier,
            lattice,
            stats,
        );
        (result, scratch)
    }

    /// Abandons the decode, recovering the scratch (used by sessions
    /// dropped without finalizing).
    pub fn into_scratch(self) -> DecodeScratch {
        self.scratch
    }

    /// One iteration of the batch decoder's frame loop.
    fn advance(&mut self, row: &[f32], last_frame: bool) {
        if !self.alive {
            return;
        }
        let wfst: &Wfst = &self.wfst;
        let lattice = &mut self.lattice;
        let DecodeScratch {
            cur,
            next,
            frontier,
            worklist,
            gc_roots,
            gc,
        } = &mut self.scratch;
        let beam = self.opts.beam;

        let mut fs = FrameStats {
            active_tokens: cur.len(),
            ..FrameStats::default()
        };
        build_frontier(cur, frontier, beam, self.opts.max_active);
        fs.expanded_tokens = frontier.len();
        if self.opts.record_state_accesses {
            for &state in frontier.iter() {
                *self.stats.state_accesses.entry(state).or_insert(0) += 1;
            }
        }

        relax_frame(
            wfst, cur, next, frontier, lattice, &mut fs, beam, last_frame, row,
        );
        let closure_threshold = if last_frame {
            f32::INFINITY
        } else {
            next.best() + beam
        };
        epsilon_closure(wfst, next, lattice, &mut fs, closure_threshold, worklist);
        std::mem::swap(cur, next);
        self.stats.frames.push(fs);
        self.frames += 1;
        if cur.is_empty() {
            self.alive = false;
            return;
        }
        if !last_frame {
            maybe_gc(
                self.opts.lattice_gc_interval,
                self.frames - 1,
                cur,
                lattice,
                gc_roots,
                frontier,
                gc,
            );
        }
    }
}

/// The double-buffered score-row pair of the paper's Acoustic Likelihood
/// Buffer, as a reusable handoff: a **front** row the search consumes
/// next and a **staging** row where the scorer lands fresh output.
///
/// Holding one row back is what lets a stream apply the batch decoder's
/// last-frame semantics without knowing in advance which frame is last
/// (see the module docs): the producer [`AlbHandoff::stage`]s each new
/// row, the consumer steps the search over [`AlbHandoff::front`], and
/// [`AlbHandoff::commit`] swaps the fresh row in as the next front. Both
/// [`AudioStreamingDecode`] and the runtime's sessions (single-session
/// and cross-session-batched scoring alike) drive their searches through
/// this one struct, so the hold-back-one-row invariant lives in exactly
/// one place.
///
/// The two buffers only ever swap — after they reach the row length
/// the handoff is allocation-free.
#[derive(Debug, Default)]
pub struct AlbHandoff {
    front: Vec<f32>,
    staging: Vec<f32>,
    have_front: bool,
}

impl AlbHandoff {
    /// An empty handoff; the buffers grow to the row length on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handoff with both buffers pre-sized to `row_len` (no growth on
    /// the first frames).
    pub fn with_row_len(row_len: usize) -> Self {
        Self {
            front: vec![0.0; row_len],
            staging: vec![0.0; row_len],
            have_front: false,
        }
    }

    /// Copies a freshly scored row into the staging buffer
    /// (allocation-free once the buffer has the row's capacity).
    pub fn stage(&mut self, row: &[f32]) {
        self.staging.clear();
        self.staging.extend_from_slice(row);
    }

    /// The staging buffer itself, for producers that write rows in place
    /// (the batched scatter path pops scored rows straight into it).
    pub fn staging_mut(&mut self) -> &mut Vec<f32> {
        &mut self.staging
    }

    /// The held-back row the search should consume next, or `None`
    /// before the first commit.
    pub fn front(&self) -> Option<&[f32]> {
        self.have_front.then_some(self.front.as_slice())
    }

    /// Whether a front row is held back (i.e. at least one row has been
    /// committed).
    pub fn has_front(&self) -> bool {
        self.have_front
    }

    /// Completes the handoff: the staged row becomes the next front row.
    /// Call after the search has stepped over the previous front.
    pub fn commit(&mut self) {
        std::mem::swap(&mut self.front, &mut self.staging);
        self.have_front = true;
    }

    /// Moves the held-back front row out into `out`, emptying the
    /// handoff — the migration path when a session widens from the
    /// single-row handoff to the multi-row [`AlbQueue`] mid-utterance.
    /// Returns `false` (leaving `out` untouched) when no front is held.
    pub fn take_front_into(&mut self, out: &mut Vec<f32>) -> bool {
        if !self.have_front {
            return false;
        }
        out.clear();
        out.extend_from_slice(&self.front);
        self.have_front = false;
        true
    }
}

/// The multi-row generalization of [`AlbHandoff`]: a FIFO of scored
/// rows the search has not yet consumed, with a free list that recycles
/// row buffers so the steady state allocates nothing.
///
/// The paper's Acoustic Likelihood Buffer holds *multi-frame* score
/// batches precisely to amortize the score/search handoff; this queue is
/// that shape in software. Producers [`AlbQueue::checkout`] a buffer,
/// fill it, and [`AlbQueue::push_ready`] it; the search walks
/// [`AlbQueue::ready_rows`] in FIFO order (safe to do while more rows
/// are being scored, because a batch is only launched when at least one
/// *new* row exists — so no currently-ready row can be the utterance's
/// final row) and then [`AlbQueue::retire`]s what it consumed. The
/// last-frame semantics of [`AlbHandoff`] are preserved by never
/// retiring the final row: it is handed to `finish` instead.
#[derive(Debug, Default)]
pub struct AlbQueue {
    ready: std::collections::VecDeque<Vec<f32>>,
    free: Vec<Vec<f32>>,
}

impl AlbQueue {
    /// An empty queue; buffers are created (then recycled) on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scored rows awaiting the search.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// A row buffer resized to `row_len` — recycled from the free list
    /// when one is available, freshly allocated otherwise.
    pub fn checkout(&mut self, row_len: usize) -> Vec<f32> {
        let mut row = self.free.pop().unwrap_or_default();
        row.resize(row_len, 0.0);
        row
    }

    /// Appends a scored row to the ready FIFO.
    pub fn push_ready(&mut self, row: Vec<f32>) {
        self.ready.push_back(row);
    }

    /// The ready rows in FIFO (frame) order, for the search to relax
    /// back-to-back inside one fork-join batch.
    pub fn ready_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.ready.iter().map(Vec::as_slice)
    }

    /// Recycles the first `count` ready rows after the search has
    /// consumed them. `count` saturates at the number of ready rows, so
    /// an over-count can never panic the session frame loop.
    pub fn retire(&mut self, count: usize) {
        for _ in 0..count {
            let Some(row) = self.ready.pop_front() else {
                break;
            };
            self.free.push(row);
        }
    }

    /// Pops the oldest ready row (for the finalize tail, where the rows
    /// are consumed one at a time and the last one must survive for the
    /// end-of-utterance treatment). Recycle it with [`AlbQueue::recycle`].
    pub fn pop_ready(&mut self) -> Option<Vec<f32>> {
        self.ready.pop_front()
    }

    /// Returns a buffer to the free list.
    pub fn recycle(&mut self, row: Vec<f32>) {
        self.free.push(row);
    }
}

/// Multi-row overlap state for a pool-attached [`AudioStreamingDecode`]:
/// the executor handle, the batch depth, the ready-row FIFO, and the
/// stage buffers the scoring chunk fills during a join.
#[derive(Debug)]
struct OverlapState {
    pool: std::sync::Arc<crate::pool::WorkerPool>,
    depth: usize,
    queue: AlbQueue,
    stage: Vec<Vec<f32>>,
}

/// An incremental decode fed *raw audio* instead of score rows: the
/// microphone-style end of the streaming stack at the decoder layer.
///
/// Composes an [`OnlineScorer`] (streaming MFCC + per-frame acoustic
/// scoring) with a [`StreamingDecode`], bridging them with the same
/// double-buffered row pair the facade sessions use: each scored row is
/// staged while the search consumes the previous one, so the final row can
/// receive the batch decoder's end-of-utterance treatment. Pushing any
/// chunking of a waveform and finishing is therefore byte-identical to
/// batch-scoring the waveform and batch-decoding the table.
///
/// [`AudioStreamingDecode::with_overlap`] widens the handoff to
/// multi-row ALB batches on a shared [`WorkerPool`](crate::pool::WorkerPool):
/// one fork-join relaxes every already-scored row through the search
/// while the scorer produces up to `depth` further rows — still
/// byte-identical, because row order and per-row arithmetic never
/// change.
#[derive(Debug)]
pub struct AudioStreamingDecode<G: Deref<Target = Wfst>, S> {
    decode: StreamingDecode<G>,
    scorer: OnlineScorer<S>,
    alb: AlbHandoff,
    overlap: Option<OverlapState>,
}

impl<G: Deref<Target = Wfst> + Send, S: FrameScorer + Send> AudioStreamingDecode<G, S> {
    /// Starts an audio-fed decode over a (pooled) scratch.
    pub fn new(
        wfst: G,
        opts: DecodeOptions,
        scratch: DecodeScratch,
        scorer: OnlineScorer<S>,
    ) -> Self {
        let row_len = scorer.row_len();
        Self {
            decode: StreamingDecode::new(wfst, opts, scratch),
            scorer,
            alb: AlbHandoff::with_row_len(row_len),
            overlap: None,
        }
    }

    /// Starts an audio-fed decode whose score/search handoff runs as
    /// multi-row ALB batches on `pool`: each drain relaxes every
    /// already-scored row while the scorer produces up to `depth` new
    /// rows in an overlapped fork-join chunk. Byte-identical to
    /// [`AudioStreamingDecode::new`] for every depth and chunking.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn with_overlap(
        wfst: G,
        opts: DecodeOptions,
        scratch: DecodeScratch,
        scorer: OnlineScorer<S>,
        pool: std::sync::Arc<crate::pool::WorkerPool>,
        depth: usize,
    ) -> Self {
        assert!(depth > 0, "overlap depth must be at least one row");
        let mut this = Self::new(wfst, opts, scratch, scorer);
        this.overlap = Some(OverlapState {
            pool,
            depth,
            queue: AlbQueue::new(),
            stage: Vec::new(),
        });
        this
    }

    /// Feeds raw 16 kHz samples, in any chunking; completed frames are
    /// scored and searched immediately (one row held back for last-frame
    /// semantics). Allocation-free per frame once warm.
    pub fn push_samples(&mut self, samples: &[f32]) {
        self.scorer.push_samples(samples);
        if self.overlap.is_some() {
            self.drain_rows_overlapped();
        } else {
            self.drain_rows();
        }
    }

    /// Frames the search has consumed so far.
    pub fn frames(&self) -> usize {
        self.decode.frames()
    }

    /// The current best hypothesis (see [`StreamingDecode::partial`]).
    pub fn partial(&self) -> Option<PartialHypothesis> {
        self.decode.partial()
    }

    /// Ends the utterance: flushes the front-end's delta lookahead, gives
    /// the held-back row the batch last-frame treatment, and returns the
    /// result plus the recovered scratch and front-end (for pooling).
    pub fn finish(mut self) -> (DecodeResult, DecodeScratch, OnlineScorer<S>) {
        self.scorer.finish();
        if self.overlap.is_some() {
            self.drain_rows_overlapped();
            let last = match self.overlap.as_mut() {
                Some(overlap) => {
                    // Relax every ready row but the last, which takes the
                    // batch decoder's end-of-utterance treatment below.
                    while overlap.queue.ready_len() > 1 {
                        let Some(row) = overlap.queue.pop_ready() else {
                            break;
                        };
                        self.decode.step(&row);
                        overlap.queue.recycle(row);
                    }
                    overlap.queue.pop_ready()
                }
                None => None,
            };
            let (result, scratch) = self.decode.finish(last.as_deref());
            return (result, scratch, self.scorer);
        }
        self.drain_rows();
        let last = self.alb.front();
        let (result, scratch) = self.decode.finish(last);
        (result, scratch, self.scorer)
    }

    fn drain_rows(&mut self) {
        while self.scorer.pop_row_into(self.alb.staging_mut()) {
            if let Some(front) = self.alb.front() {
                self.decode.step(front);
            }
            self.alb.commit();
        }
    }

    /// One multi-row ALB batch per iteration: pop one scored row inline
    /// (its existence proves no currently-ready row is the utterance's
    /// final row), then fork-join — chunk 0 relaxes every ready row
    /// through the search in FIFO order while chunk 1 pulls up to
    /// `depth - 1` further rows out of the scorer. Rows enter the ready
    /// queue in frame order, so the search consumes the exact sequence
    /// the inline path would.
    fn drain_rows_overlapped(&mut self) {
        let row_len = self.scorer.row_len();
        loop {
            let Some(overlap) = self.overlap.as_mut() else {
                return;
            };
            let mut first = overlap.queue.checkout(row_len);
            if !self.scorer.pop_row_into(&mut first) {
                overlap.queue.recycle(first);
                return;
            }
            let extra = overlap.depth - 1;
            if overlap.queue.ready_len() == 0 && extra == 0 {
                // Nothing to overlap: the scored row just becomes ready.
                overlap.queue.push_ready(first);
                continue;
            }
            while overlap.stage.len() < extra {
                overlap.stage.push(Vec::new());
            }
            for buf in overlap.stage.iter_mut().take(extra) {
                buf.resize(row_len, 0.0);
            }
            let queue = &overlap.queue;
            let decode_slot = std::sync::Mutex::new(&mut self.decode);
            let score_slot =
                std::sync::Mutex::new((&mut self.scorer, &mut overlap.stage[..extra], 0usize));
            overlap.pool.fork_join(2, &|chunk| {
                if chunk == 0 {
                    let mut decode = decode_slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    for row in queue.ready_rows() {
                        decode.step(row);
                    }
                } else {
                    let mut slot = score_slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let (scorer, stage, produced) = &mut *slot;
                    for buf in stage.iter_mut() {
                        if !scorer.pop_row_into(buf) {
                            break;
                        }
                        *produced += 1;
                    }
                }
            });
            let (_, _, produced) = score_slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(overlap) = self.overlap.as_mut() else {
                return;
            };
            let stepped = overlap.queue.ready_len();
            overlap.queue.retire(stepped);
            overlap.queue.push_ready(first);
            for i in 0..produced {
                let refill = overlap.queue.checkout(0);
                let row = std::mem::replace(&mut overlap.stage[i], refill);
                overlap.queue.push_ready(row);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::ViterbiDecoder;
    use asr_acoustic::scores::AcousticTable;
    use asr_wfst::synth::{SynthConfig, SynthWfst};

    fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
        let w = SynthWfst::generate(&SynthConfig::with_states(states)).unwrap();
        let scores = AcousticTable::random(frames, w.num_phones() as usize, (0.5, 4.0), seed);
        (w, scores)
    }

    fn stream_decode(wfst: &Wfst, scores: &AcousticTable, opts: DecodeOptions) -> DecodeResult {
        let mut d = StreamingDecode::new(wfst, opts, DecodeScratch::new(wfst.num_states()));
        let n = scores.num_frames();
        for frame in 0..n.saturating_sub(1) {
            d.step(scores.frame_row(frame));
        }
        let last = if n > 0 {
            Some(scores.frame_row(n - 1))
        } else {
            None
        };
        d.finish(last).0
    }

    #[test]
    fn streaming_matches_batch_byte_for_byte() {
        let (w, scores) = workload(3_000, 40, 29);
        let opts = DecodeOptions::with_beam(6.0);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let streamed = stream_decode(&w, &scores, opts);
        assert_eq!(streamed.cost.to_bits(), batch.cost.to_bits());
        assert_eq!(streamed.words, batch.words);
        assert_eq!(streamed.best_state, batch.best_state);
        assert_eq!(streamed.reached_final, batch.reached_final);
        assert_eq!(streamed.lattice.len(), batch.lattice.len());
        assert_eq!(streamed.stats.frames.len(), batch.stats.frames.len());
    }

    #[test]
    fn single_frame_utterance_matches_batch() {
        let (w, scores) = workload(500, 1, 31);
        let opts = DecodeOptions::with_beam(8.0);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let streamed = stream_decode(&w, &scores, opts);
        assert_eq!(streamed.cost.to_bits(), batch.cost.to_bits());
        assert_eq!(streamed.words, batch.words);
    }

    #[test]
    fn empty_utterance_matches_batch() {
        let (w, _) = workload(500, 1, 37);
        let empty = AcousticTable::from_fn(0, w.num_phones() as usize, |_, _| 0.0);
        let opts = DecodeOptions::with_beam(8.0);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &empty);
        let streamed = stream_decode(&w, &empty, opts);
        assert_eq!(streamed.cost, batch.cost);
        assert_eq!(streamed.words, batch.words);
        assert_eq!(streamed.best_state, batch.best_state);
    }

    #[test]
    fn partials_become_available_and_track_frames() {
        let (w, scores) = workload(2_000, 30, 41);
        let mut d = StreamingDecode::new(
            &w,
            DecodeOptions::with_beam(6.0),
            DecodeScratch::new(w.num_states()),
        );
        for frame in 0..scores.num_frames() - 1 {
            d.step(scores.frame_row(frame));
            let p = d.partial().expect("live decode has a best token");
            assert_eq!(p.frames, frame + 1);
            assert!(p.cost.is_finite());
        }
        let (result, _) = d.finish(Some(scores.frame_row(scores.num_frames() - 1)));
        assert!(result.cost.is_finite());
    }

    #[test]
    fn scratch_recycles_across_streamed_utterances() {
        let (w, scores) = workload(2_000, 25, 43);
        let opts = DecodeOptions::with_beam(6.0);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let mut scratch = DecodeScratch::new(w.num_states());
        for _ in 0..3 {
            let mut d = StreamingDecode::new(&w, opts.clone(), scratch);
            for frame in 0..scores.num_frames() - 1 {
                d.step(scores.frame_row(frame));
            }
            let (result, recovered) = d.finish(Some(scores.frame_row(scores.num_frames() - 1)));
            assert_eq!(result.cost.to_bits(), batch.cost.to_bits());
            assert_eq!(result.words, batch.words);
            scratch = recovered;
        }
    }

    #[test]
    fn audio_fed_decode_matches_batch_scoring_plus_batch_decode() {
        use asr_acoustic::signal::{render_phones, SignalConfig};
        use asr_acoustic::template::TemplateScorer;
        use asr_wfst::PhoneId;

        let w = SynthWfst::generate(&SynthConfig::with_states(800)).unwrap();
        let scorer = TemplateScorer::with_default_signal(w.num_phones() - 1);
        let audio = render_phones(
            &[PhoneId(1), PhoneId(3), PhoneId(2)],
            5,
            &SignalConfig::default(),
        );
        let opts = DecodeOptions::with_beam(8.0);
        let batch_scores = scorer.score_waveform(&audio);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &batch_scores);

        for chunk in [1usize, 160, 163] {
            let online = OnlineScorer::new(*scorer.mfcc_config(), &scorer);
            let mut d = AudioStreamingDecode::new(
                &w,
                opts.clone(),
                DecodeScratch::new(w.num_states()),
                online,
            );
            for piece in audio.chunks(chunk) {
                d.push_samples(piece);
            }
            let (result, _, _) = d.finish();
            assert_eq!(result.cost.to_bits(), batch.cost.to_bits(), "chunk {chunk}");
            assert_eq!(result.words, batch.words, "chunk {chunk}");
            assert_eq!(result.best_state, batch.best_state, "chunk {chunk}");
            assert_eq!(result.reached_final, batch.reached_final, "chunk {chunk}");
        }
    }

    #[test]
    fn audio_fed_decode_yields_partials() {
        use asr_acoustic::signal::{render_phones, SignalConfig};
        use asr_acoustic::template::TemplateScorer;
        use asr_wfst::PhoneId;

        let w = SynthWfst::generate(&SynthConfig::with_states(500)).unwrap();
        let scorer = TemplateScorer::with_default_signal(w.num_phones() - 1);
        let audio = render_phones(&[PhoneId(2), PhoneId(4)], 6, &SignalConfig::default());
        let online = OnlineScorer::new(*scorer.mfcc_config(), &scorer);
        let mut d = AudioStreamingDecode::new(
            &w,
            DecodeOptions::with_beam(8.0),
            DecodeScratch::new(w.num_states()),
            online,
        );
        let mut partials = 0;
        for piece in audio.chunks(160) {
            d.push_samples(piece);
            if let Some(p) = d.partial() {
                assert!(p.cost.is_finite());
                partials += 1;
            }
        }
        assert!(partials > 0, "partials surfaced while audio streamed");
        // The search lags the pushed audio: one row held back plus the
        // two-frame delta lookahead.
        assert!(d.frames() >= audio.len() / 160 - 3);
        let (result, _, _) = d.finish();
        assert_eq!(result.stats.frames.len(), audio.len() / 160);
    }

    #[test]
    fn constant_search_params_trace_matches_construction_options() {
        let (w, scores) = workload(2_000, 30, 53);
        let narrow = DecodeOptions {
            max_active: Some(64),
            ..DecodeOptions::with_beam(3.0)
        };
        let batch = ViterbiDecoder::new(narrow.clone()).decode(&w, &scores);
        // Construct wide, immediately retune narrow: the preamble (start
        // seeding + initial closure) is width-independent, so the decode
        // must be byte-identical to one constructed narrow.
        let mut d = StreamingDecode::new(
            &w,
            DecodeOptions::with_beam(12.0),
            DecodeScratch::new(w.num_states()),
        );
        for frame in 0..scores.num_frames() - 1 {
            d.set_search_params(narrow.beam, narrow.max_active);
            d.step(scores.frame_row(frame));
        }
        d.set_search_params(narrow.beam, narrow.max_active);
        let (result, _) = d.finish(Some(scores.frame_row(scores.num_frames() - 1)));
        assert_eq!(result.cost.to_bits(), batch.cost.to_bits());
        assert_eq!(result.words, batch.words);
        assert_eq!(result.best_state, batch.best_state);
        assert_eq!(result.reached_final, batch.reached_final);
    }

    #[test]
    fn scripted_param_trace_is_deterministic() {
        let (w, scores) = workload(2_000, 40, 59);
        let run = || {
            let mut d = StreamingDecode::new(
                &w,
                DecodeOptions::with_beam(8.0),
                DecodeScratch::new(w.num_states()),
            );
            for frame in 0..scores.num_frames() - 1 {
                // Narrow twice mid-utterance, widen back once: the same
                // trace must reproduce the same bytes every run.
                let (beam, cap) = match frame {
                    0..=9 => (8.0, None),
                    10..=19 => (4.0, Some(256)),
                    20..=29 => (2.0, Some(64)),
                    _ => (6.0, None),
                };
                d.set_search_params(beam, cap);
                d.step(scores.frame_row(frame));
            }
            d.finish(Some(scores.frame_row(scores.num_frames() - 1))).0
        };
        let a = run();
        let b = run();
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.words, b.words);
        assert_eq!(a.best_state, b.best_state);
        assert_eq!(a.lattice.len(), b.lattice.len());
    }

    #[test]
    fn alb_handoff_holds_back_exactly_one_row() {
        let mut alb = AlbHandoff::with_row_len(3);
        assert!(!alb.has_front());
        assert_eq!(alb.front(), None);
        alb.stage(&[1.0, 2.0, 3.0]);
        assert!(!alb.has_front(), "staging does not publish a front row");
        alb.commit();
        assert_eq!(alb.front(), Some(&[1.0, 2.0, 3.0][..]));
        // The staging buffer is independent: writing it never disturbs
        // the committed front until the next commit.
        alb.staging_mut().clear();
        alb.staging_mut().extend_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(alb.front(), Some(&[1.0, 2.0, 3.0][..]));
        alb.commit();
        assert_eq!(alb.front(), Some(&[4.0, 5.0, 6.0][..]));
    }

    #[test]
    fn tight_beam_still_matches_batch() {
        // A zero-width beam exercises the prune-on-insert and closure
        // thresholds at their most aggressive; the stream must follow the
        // batch decoder through every pruning decision (and through the
        // early exit, should the beam ever kill every path).
        let (w, scores) = workload(300, 10, 47);
        let opts = DecodeOptions::with_beam(0.0);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &scores);
        let streamed = stream_decode(&w, &scores, opts);
        assert_eq!(streamed.cost.to_bits(), batch.cost.to_bits());
        assert_eq!(streamed.words, batch.words);
        assert_eq!(streamed.stats.frames.len(), batch.stats.frames.len());
    }

    #[test]
    fn alb_queue_recycles_buffers_and_keeps_fifo_order() {
        let mut q = AlbQueue::new();
        assert_eq!(q.ready_len(), 0);
        for v in 1..=3 {
            let mut row = q.checkout(2);
            row.fill(v as f32);
            q.push_ready(row);
        }
        let rows: Vec<f32> = q.ready_rows().map(|r| r[0]).collect();
        assert_eq!(rows, vec![1.0, 2.0, 3.0], "FIFO frame order");
        q.retire(2);
        assert_eq!(q.ready_len(), 1);
        // Retired buffers come back out of the free list.
        let recycled = q.checkout(2);
        assert_eq!(recycled.len(), 2);
        q.recycle(recycled);
        let last = q.pop_ready().expect("one row left");
        assert_eq!(last[0], 3.0);
        assert!(q.pop_ready().is_none());
    }

    #[test]
    fn overlapped_multi_row_audio_decode_matches_inline_for_every_depth() {
        use crate::pool::WorkerPool;
        use asr_acoustic::signal::{render_phones, SignalConfig};
        use asr_acoustic::template::TemplateScorer;
        use asr_wfst::PhoneId;
        use std::sync::Arc;

        let w = SynthWfst::generate(&SynthConfig::with_states(800)).unwrap();
        let scorer = TemplateScorer::with_default_signal(w.num_phones() - 1);
        let audio = render_phones(
            &[PhoneId(1), PhoneId(3), PhoneId(2), PhoneId(4)],
            5,
            &SignalConfig::default(),
        );
        let opts = DecodeOptions::with_beam(8.0);
        let batch_scores = scorer.score_waveform(&audio);
        let batch = ViterbiDecoder::new(opts.clone()).decode(&w, &batch_scores);

        let pool = Arc::new(WorkerPool::new(2));
        for depth in [1usize, 2, 4, 7] {
            for chunk in [160usize, 517] {
                let online = OnlineScorer::new(*scorer.mfcc_config(), &scorer);
                let mut d = AudioStreamingDecode::with_overlap(
                    &w,
                    opts.clone(),
                    DecodeScratch::new(w.num_states()),
                    online,
                    Arc::clone(&pool),
                    depth,
                );
                for piece in audio.chunks(chunk) {
                    d.push_samples(piece);
                }
                let (result, _, _) = d.finish();
                assert_eq!(
                    result.cost.to_bits(),
                    batch.cost.to_bits(),
                    "depth {depth} chunk {chunk}"
                );
                assert_eq!(result.words, batch.words, "depth {depth} chunk {chunk}");
                assert_eq!(result.best_state, batch.best_state);
                assert_eq!(result.reached_final, batch.reached_final);
                assert_eq!(result.lattice.len(), batch.lattice.len());
            }
        }
    }
}
