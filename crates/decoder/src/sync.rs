//! Synchronization facade for the lock-free executor.
//!
//! Everything in `pool.rs` that touches atomics, fences, or the
//! parking-lot mutex/condvar pairs imports from here instead of
//! `std::sync`. In a normal build these are *re-exports of the real
//! `std` types* — zero cost, byte-identical codegen, pinned by the
//! byte-identity suites. Under `--features model-check` they swap to
//! [`asr_verify::shadow`]'s instrumented twins, which route every
//! operation through the mini-loom model checker's deterministic
//! scheduler and explicit weak-memory model (see
//! `crates/decoder/src/model_check.rs` for the harnesses and
//! ARCHITECTURE.md "Verification & static analysis" for the design).
//!
//! Outside an active `model::check` run the shadow types fall back to
//! their wrapped `std` primitives, so the rest of the test suite still
//! behaves normally even when the feature is enabled.

#[cfg(feature = "model-check")]
pub(crate) use asr_verify::shadow::{
    fence, AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard,
};
#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};
#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

pub(crate) use std::sync::atomic::Ordering;
