//! Epoch-tagged flat token store: the software twin of the accelerator's
//! on-chip token hash tables (`asr-accel`'s `hash` module, Section III of
//! the paper).
//!
//! The hardware keeps the current and next frame's active tokens in two
//! 32K-entry hash tables whose entries hold the token likelihood plus a
//! next-pointer chaining all active entries for the State Issuer's walk;
//! swapping and clearing the tables is what ends a frame. This module
//! plays that datapath in software with the luxury of a *perfect* hash —
//! a dense array indexed by state id:
//!
//! * **slots** (`costs`/`payloads`) mirror the hash entries: one per
//!   state, carrying the path cost and a caller-chosen payload (the
//!   backpointer [`crate::lattice::TraceId`] in the sequential decoder, a
//!   pending backpointer/word pair in the sharded parallel decoder);
//! * an **epoch tag** per slot replaces clearing: a slot is live only if
//!   its tag equals the table's current epoch, so "flushing the hash
//!   table" between frames is one counter bump ([`TokenTable::begin_frame`])
//!   instead of an `O(entries)` wipe or a `HashMap` rehash;
//! * the **active list** mirrors the hardware's insertion-ordered linked
//!   list: an append-only `Vec<u32>` of the states inserted this epoch,
//!   deduplicated for free by the epoch check on first touch.
//!
//! After warm-up the table performs no heap allocation: lookups, inserts,
//! improvements, and per-frame resets all reuse the same storage. The
//! running frame-best cost is tracked on insert so the beam test
//! (`cost <= best + beam`) — the accelerator's prune-on-insert — is one
//! compare away.

/// Slot-level outcome of one [`TokenTable::relax`], as reported to an
/// [`InsertObserver`].
///
/// This is exactly the case split the accelerator's Token Issuer sees at
/// the hash table: a probe either allocates a fresh entry (append to the
/// active list), updates an existing entry with a better likelihood, or
/// leaves a better-or-equal entry untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelaxOutcome {
    /// First touch of the state this epoch: a new slot went live and the
    /// state was appended to the active list.
    Appended,
    /// The state was already live and the new cost was strictly better;
    /// the slot was overwritten in place.
    Improved,
    /// The state was already live at an equal or better cost; nothing was
    /// stored and the payload closure was never evaluated.
    Rejected,
}

impl RelaxOutcome {
    /// `true` when the relax stored cost + payload (insert or improve) —
    /// the boolean [`TokenTable::relax`] returns.
    #[inline]
    pub fn stored(self) -> bool {
        !matches!(self, RelaxOutcome::Rejected)
    }

    /// `true` when the state was already live before the relax (the hash
    /// probe found an existing entry rather than allocating one).
    #[inline]
    pub fn existing(self) -> bool {
        !matches!(self, RelaxOutcome::Appended)
    }
}

/// Hook receiving one event per [`TokenTable::relax_observed`] call,
/// *before* the slot is written (and before the payload closure runs).
///
/// This is how a timing model rides along the functional search without
/// owning any search state: `asr-accel`'s simulator implements it to
/// charge hash-probe cycles, collision chains, and overflow round trips
/// for every insert attempt — including rejected ones, which still cost a
/// probe in hardware. The non-observing entry point
/// ([`TokenTable::relax`]) passes the zero-sized [`NoopObserver`], which
/// monomorphizes to nothing, so the decoder hot path pays no cost for the
/// hook.
pub trait InsertObserver {
    /// Called once per relax attempt with the slot-level outcome.
    fn observe(&mut self, state: u32, outcome: RelaxOutcome);
}

/// The do-nothing observer used by the non-instrumented search paths;
/// calls through it compile away entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl InsertObserver for NoopObserver {
    #[inline(always)]
    fn observe(&mut self, _state: u32, _outcome: RelaxOutcome) {}
}

/// One frame's tokens, stored flat and cleared by epoch bump.
///
/// `P` is the per-token payload stored next to the path cost; it must be
/// `Copy` (slots are recycled wholesale between epochs).
///
/// # Example
///
/// ```
/// use asr_decoder::token_table::TokenTable;
///
/// let mut table: TokenTable<u32> = TokenTable::new(100, 0);
/// table.begin_frame();
/// assert!(table.relax(7, 1.5, || 41));   // insert
/// assert!(table.relax(7, 1.0, || 42));   // improve
/// assert!(!table.relax(7, 2.0, || 43));  // worse: rejected
/// assert_eq!(table.get(7), Some((1.0, 42)));
/// assert_eq!(table.active(), &[7]);
/// assert_eq!(table.best(), 1.0);
/// table.begin_frame();                   // O(1) clear
/// assert!(table.is_empty());
/// assert_eq!(table.get(7), None);
/// ```
#[derive(Debug, Clone)]
pub struct TokenTable<P: Copy> {
    /// First state id this table covers (non-zero for shards).
    base: u32,
    /// Current epoch; slots are live iff their tag matches.
    epoch: u32,
    /// Per-slot epoch tags.
    epochs: Vec<u32>,
    /// Per-slot path costs (valid only when the tag matches).
    costs: Vec<f32>,
    /// Per-slot payloads (valid only when the tag matches).
    payloads: Vec<P>,
    /// States inserted this epoch, in insertion order.
    active: Vec<u32>,
    /// Cheapest cost inserted this epoch (`f32::INFINITY` when empty).
    best: f32,
}

impl<P: Copy> TokenTable<P> {
    /// Creates a table covering states `0..num_states`.
    ///
    /// `fill` initializes the payload slots; it is never observable (slots
    /// are read only after a live write) but keeps the storage safe.
    pub fn new(num_states: usize, fill: P) -> Self {
        Self::new_shard(0, num_states, fill)
    }

    /// Creates a shard covering states `base..base + len` (used by the
    /// parallel decoder to split the state space across workers).
    pub fn new_shard(base: u32, len: usize, fill: P) -> Self {
        Self {
            base,
            // Tags start at 0, the epoch at 1: every slot is stale by
            // construction, so a fresh table is empty even before the
            // first `begin_frame`.
            epoch: 1,
            epochs: vec![0; len],
            costs: vec![f32::INFINITY; len],
            payloads: vec![fill; len],
            active: Vec::with_capacity(len.min(1 << 16)),
            best: f32::INFINITY,
        }
    }

    /// Number of state slots.
    pub fn capacity(&self) -> usize {
        self.epochs.len()
    }

    /// First state id covered.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Starts a new frame: one counter bump invalidates every slot (the
    /// hardware's table swap-and-clear).
    pub fn begin_frame(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap: the only O(n) reset, once every 2^32 frames.
            self.epochs.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.active.clear();
        self.best = f32::INFINITY;
    }

    #[inline]
    fn slot(&self, state: u32) -> usize {
        debug_assert!(
            state >= self.base && ((state - self.base) as usize) < self.epochs.len(),
            "state {state} outside table range {}..{}",
            self.base,
            self.base as usize + self.epochs.len()
        );
        (state - self.base) as usize
    }

    /// Looks up a live token.
    #[inline]
    pub fn get(&self, state: u32) -> Option<(f32, P)> {
        let slot = self.slot(state);
        if self.epochs[slot] == self.epoch {
            Some((self.costs[slot], self.payloads[slot]))
        } else {
            None
        }
    }

    /// Cost of a live token.
    ///
    /// # Panics
    ///
    /// Panics (debug) or returns stale data (release) if the token is not
    /// live; callers iterate [`TokenTable::active`], whose entries always
    /// are.
    #[inline]
    pub fn cost(&self, state: u32) -> f32 {
        let slot = self.slot(state);
        debug_assert_eq!(self.epochs[slot], self.epoch, "stale token read");
        self.costs[slot]
    }

    /// Payload of a live token (same liveness contract as
    /// [`TokenTable::cost`]).
    #[inline]
    pub fn payload(&self, state: u32) -> P {
        let slot = self.slot(state);
        debug_assert_eq!(self.epochs[slot], self.epoch, "stale token read");
        self.payloads[slot]
    }

    /// Overwrites the payload of a live token (used by lattice GC to
    /// retarget backpointers).
    #[inline]
    pub fn set_payload(&mut self, state: u32, payload: P) {
        let slot = self.slot(state);
        debug_assert_eq!(self.epochs[slot], self.epoch, "stale token write");
        self.payloads[slot] = payload;
    }

    /// Keeps only the best in-going path per state — the accelerator's
    /// lookup-or-insert with likelihood compare. Returns whether the token
    /// was inserted or improved; `payload` is evaluated only then (the
    /// sequential decoder allocates its lattice entry inside it).
    #[inline]
    pub fn relax(&mut self, state: u32, cost: f32, payload: impl FnOnce() -> P) -> bool {
        self.relax_observed(state, cost, payload, &mut NoopObserver)
    }

    /// [`TokenTable::relax`] with a slot-event hook: `observer` sees the
    /// [`RelaxOutcome`] of every attempt (including rejections) before the
    /// slot is written and before `payload` runs. The accelerator
    /// simulator's scoreboard hangs its hash/token timing off this; with
    /// [`NoopObserver`] it compiles down to exactly [`TokenTable::relax`].
    #[inline]
    pub fn relax_observed(
        &mut self,
        state: u32,
        cost: f32,
        payload: impl FnOnce() -> P,
        observer: &mut impl InsertObserver,
    ) -> bool {
        let slot = self.slot(state);
        if self.epochs[slot] == self.epoch {
            if self.costs[slot] <= cost {
                observer.observe(state, RelaxOutcome::Rejected);
                return false;
            }
            observer.observe(state, RelaxOutcome::Improved);
        } else {
            observer.observe(state, RelaxOutcome::Appended);
            self.epochs[slot] = self.epoch;
            self.active.push(state);
        }
        self.costs[slot] = cost;
        self.payloads[slot] = payload();
        if cost < self.best {
            self.best = cost;
        }
        true
    }

    /// The states inserted this epoch, in insertion order (the hardware
    /// linked-list walk).
    pub fn active(&self) -> &[u32] {
        &self.active
    }

    /// Sorts the active list by state id in place (the deterministic
    /// expansion order of the reference decoder).
    pub fn sort_active(&mut self) {
        self.active.sort_unstable();
    }

    /// Number of live tokens.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// `true` when no token is live.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Cheapest live cost (`f32::INFINITY` when empty) — the running
    /// frame-best that drives prune-on-insert.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_improve_reject() {
        let mut t: TokenTable<u64> = TokenTable::new(16, 0);
        t.begin_frame();
        assert!(t.relax(3, 2.0, || 1));
        assert!(!t.relax(3, 2.0, || 2), "equal cost keeps the first arrival");
        assert!(t.relax(3, 1.0, || 3));
        assert_eq!(t.get(3), Some((1.0, 3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn epoch_bump_clears_in_constant_time() {
        let mut t: TokenTable<()> = TokenTable::new(8, ());
        t.begin_frame();
        for s in 0..8 {
            t.relax(s, s as f32, || ());
        }
        assert_eq!(t.len(), 8);
        t.begin_frame();
        assert!(t.is_empty());
        assert_eq!(t.get(0), None);
        assert_eq!(t.best(), f32::INFINITY);
        // Slots are reusable immediately.
        assert!(t.relax(5, 0.25, || ()));
        assert_eq!(t.active(), &[5]);
    }

    #[test]
    fn active_list_dedupes_by_epoch() {
        let mut t: TokenTable<u32> = TokenTable::new(4, 0);
        t.begin_frame();
        t.relax(2, 3.0, || 0);
        t.relax(2, 1.0, || 1);
        t.relax(1, 2.0, || 2);
        t.relax(2, 0.5, || 3);
        assert_eq!(t.active(), &[2, 1], "insertion order, no duplicates");
        t.sort_active();
        assert_eq!(t.active(), &[1, 2]);
    }

    #[test]
    fn best_tracks_running_minimum() {
        let mut t: TokenTable<()> = TokenTable::new(4, ());
        t.begin_frame();
        assert_eq!(t.best(), f32::INFINITY);
        t.relax(0, 4.0, || ());
        assert_eq!(t.best(), 4.0);
        t.relax(1, 2.0, || ());
        assert_eq!(t.best(), 2.0);
        t.relax(2, 3.0, || ());
        assert_eq!(t.best(), 2.0);
    }

    #[test]
    fn shards_cover_offset_ranges() {
        let mut t: TokenTable<u8> = TokenTable::new_shard(100, 50, 0);
        t.begin_frame();
        assert!(t.relax(120, 1.0, || 7));
        assert_eq!(t.get(120), Some((1.0, 7)));
        assert_eq!(t.base(), 100);
        assert_eq!(t.capacity(), 50);
    }

    #[test]
    fn epoch_wrap_resets_tags() {
        let mut t: TokenTable<()> = TokenTable::new(4, ());
        t.epoch = u32::MAX - 1;
        t.begin_frame(); // epoch == MAX
        t.relax(1, 1.0, || ());
        t.begin_frame(); // wraps: tags rewritten, epoch restarts
        assert!(t.is_empty());
        assert_eq!(t.get(1), None);
        t.relax(2, 2.0, || ());
        assert_eq!(t.active(), &[2]);
    }

    #[test]
    fn fresh_table_is_empty_before_first_frame() {
        let t: TokenTable<u32> = TokenTable::new(8, 0);
        assert!(t.is_empty());
        assert_eq!(t.get(3), None, "no phantom live tokens before begin_frame");
        assert_eq!(t.best(), f32::INFINITY);
    }

    #[test]
    fn observer_sees_every_relax_outcome() {
        struct Recorder(Vec<(u32, RelaxOutcome)>);
        impl InsertObserver for Recorder {
            fn observe(&mut self, state: u32, outcome: RelaxOutcome) {
                self.0.push((state, outcome));
            }
        }
        let mut t: TokenTable<u32> = TokenTable::new(8, 0);
        let mut obs = Recorder(Vec::new());
        t.begin_frame();
        assert!(t.relax_observed(3, 2.0, || 1, &mut obs));
        assert!(!t.relax_observed(3, 2.5, || 2, &mut obs));
        assert!(t.relax_observed(3, 1.0, || 3, &mut obs));
        assert!(t.relax_observed(5, 4.0, || 4, &mut obs));
        assert_eq!(
            obs.0,
            vec![
                (3, RelaxOutcome::Appended),
                (3, RelaxOutcome::Rejected),
                (3, RelaxOutcome::Improved),
                (5, RelaxOutcome::Appended),
            ]
        );
        assert_eq!(t.get(3), Some((1.0, 3)), "rejected payload never stored");
    }

    #[test]
    fn relax_outcome_predicates() {
        assert!(RelaxOutcome::Appended.stored());
        assert!(RelaxOutcome::Improved.stored());
        assert!(!RelaxOutcome::Rejected.stored());
        assert!(!RelaxOutcome::Appended.existing());
        assert!(RelaxOutcome::Improved.existing());
        assert!(RelaxOutcome::Rejected.existing());
    }

    #[test]
    fn payload_updates_in_place() {
        let mut t: TokenTable<u32> = TokenTable::new(4, 0);
        t.begin_frame();
        t.relax(0, 1.0, || 10);
        t.set_payload(0, 99);
        assert_eq!(t.payload(0), 99);
        assert_eq!(t.cost(0), 1.0);
    }
}
