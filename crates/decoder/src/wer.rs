//! Word error rate: the accuracy metric of ASR systems.
//!
//! WER = (substitutions + deletions + insertions) / reference length,
//! computed from the Levenshtein alignment between the reference and the
//! hypothesis word sequences. Functional tests use this to verify that the
//! full pipeline (synthetic speech → MFCC → template scoring → Viterbi)
//! recovers the words that produced the audio.

use asr_wfst::WordId;
use serde::{Deserialize, Serialize};

/// Alignment counts from comparing a hypothesis against a reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WerBreakdown {
    /// Words correct.
    pub correct: usize,
    /// Substituted words.
    pub substitutions: usize,
    /// Deleted words (in reference, missing from hypothesis).
    pub deletions: usize,
    /// Inserted words (in hypothesis, absent from reference).
    pub insertions: usize,
    /// Reference length.
    pub ref_len: usize,
}

impl WerBreakdown {
    /// Word error rate in `[0, ∞)`; 0 is a perfect transcript. An empty
    /// reference with a non-empty hypothesis reports `insertions / 1`.
    pub fn wer(&self) -> f64 {
        let errors = (self.substitutions + self.deletions + self.insertions) as f64;
        errors / self.ref_len.max(1) as f64
    }

    /// Total edit distance.
    pub fn errors(&self) -> usize {
        self.substitutions + self.deletions + self.insertions
    }
}

/// Computes the Levenshtein alignment between `reference` and `hypothesis`.
pub fn align(reference: &[WordId], hypothesis: &[WordId]) -> WerBreakdown {
    let n = reference.len();
    let m = hypothesis.len();
    // dp[i][j] = edit distance between ref[..i] and hyp[..j].
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in dp[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub_cost = usize::from(reference[i - 1] != hypothesis[j - 1]);
            dp[i][j] = (dp[i - 1][j - 1] + sub_cost)
                .min(dp[i - 1][j] + 1) // deletion
                .min(dp[i][j - 1] + 1); // insertion
        }
    }
    // Trace back to classify the edits.
    let mut b = WerBreakdown {
        ref_len: n,
        ..WerBreakdown::default()
    };
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 && dp[i][j] == dp[i - 1][j - 1] && reference[i - 1] == hypothesis[j - 1] {
            b.correct += 1;
            i -= 1;
            j -= 1;
        } else if i > 0 && j > 0 && dp[i][j] == dp[i - 1][j - 1] + 1 {
            b.substitutions += 1;
            i -= 1;
            j -= 1;
        } else if i > 0 && dp[i][j] == dp[i - 1][j] + 1 {
            b.deletions += 1;
            i -= 1;
        } else {
            b.insertions += 1;
            j -= 1;
        }
    }
    b
}

/// Convenience wrapper returning just the rate.
pub fn wer(reference: &[WordId], hypothesis: &[WordId]) -> f64 {
    align(reference, hypothesis).wer()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<WordId> {
        v.iter().map(|&x| WordId(x)).collect()
    }

    #[test]
    fn identical_sequences_have_zero_wer() {
        let r = ids(&[1, 2, 3]);
        let b = align(&r, &r);
        assert_eq!(b.wer(), 0.0);
        assert_eq!(b.correct, 3);
        assert_eq!(b.errors(), 0);
    }

    #[test]
    fn substitution_detected() {
        let b = align(&ids(&[1, 2, 3]), &ids(&[1, 9, 3]));
        assert_eq!(b.substitutions, 1);
        assert_eq!(b.correct, 2);
        assert!((b.wer() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn deletion_detected() {
        let b = align(&ids(&[1, 2, 3]), &ids(&[1, 3]));
        assert_eq!(b.deletions, 1);
        assert_eq!(b.correct, 2);
    }

    #[test]
    fn insertion_detected() {
        let b = align(&ids(&[1, 3]), &ids(&[1, 2, 3]));
        assert_eq!(b.insertions, 1);
        assert_eq!(b.correct, 2);
        assert!((b.wer() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_reference_counts_insertions() {
        let b = align(&[], &ids(&[1, 2]));
        assert_eq!(b.insertions, 2);
        assert_eq!(b.wer(), 2.0);
    }

    #[test]
    fn empty_hypothesis_counts_deletions() {
        let b = align(&ids(&[1, 2]), &[]);
        assert_eq!(b.deletions, 2);
        assert_eq!(b.wer(), 1.0);
    }

    #[test]
    fn totals_are_consistent() {
        let r = ids(&[1, 2, 3, 4, 5]);
        let h = ids(&[1, 9, 3, 5, 6]);
        let b = align(&r, &h);
        assert_eq!(b.correct + b.substitutions + b.deletions, b.ref_len);
        assert_eq!(b.correct + b.substitutions + b.insertions, h.len());
    }
}
