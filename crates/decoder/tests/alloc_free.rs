//! Allocation accounting for the token-table hot path.
//!
//! The claim under test: the steady-state frame loop performs **zero heap
//! allocations per frame**. With a warmed [`DecodeScratch`], the only
//! allocations a decode may perform are amortized container growth
//! (lattice doubling, the per-frame stats vector) — counts that grow
//! logarithmically, not linearly, in the number of frames. A single
//! allocation per frame would separate a 200-frame decode from a 50-frame
//! decode by 150+ counts; the test allows a slack of 16 for the
//! logarithmic growth.

use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::{DecodeOptions, DecodeScratch, ViterbiDecoder};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// The counter is process-global, so tests in this binary must not run
/// their allocating phases concurrently; each test body holds this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct CountingAllocator;

// SAFETY: defers to the system allocator; the counter is metadata only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_frame_loop_is_allocation_free() {
    let _guard = serialized();
    let wfst = SynthWfst::generate(&SynthConfig::with_states(5_000).with_seed(3)).unwrap();
    let phones = wfst.num_phones() as usize;
    let short_scores = AcousticTable::random(50, phones, (0.5, 4.0), 7);
    let long_scores = AcousticTable::random(200, phones, (0.5, 4.0), 7);
    let decoder = ViterbiDecoder::new(DecodeOptions::with_beam(6.0));
    let mut scratch = DecodeScratch::new(wfst.num_states());

    // Warm every watermark with the longest workload.
    let warm = decoder.decode_with(&mut scratch, &wfst, &long_scores);
    assert!(warm.cost.is_finite());

    let mut short_allocs = 0;
    let short_result = count_allocs(|| {
        let r = decoder.decode_with(&mut scratch, &wfst, &short_scores);
        short_allocs = r.lattice.len() as u64; // keep the result alive
    });
    let mut long_allocs = 0;
    let long_result = count_allocs(|| {
        let r = decoder.decode_with(&mut scratch, &wfst, &long_scores);
        long_allocs = r.lattice.len() as u64;
    });

    assert!(
        long_result <= short_result + 16,
        "4x the frames cost {long_result} allocations vs {short_result}: \
         the frame loop is allocating per frame"
    );
    // Sanity: both decodes did real work.
    assert!(short_allocs > 0 && long_allocs > 0);
}

#[test]
fn warmed_repeat_decodes_have_identical_allocation_counts() {
    let _guard = serialized();
    let wfst = SynthWfst::generate(&SynthConfig::with_states(3_000).with_seed(9)).unwrap();
    let scores = AcousticTable::random(80, wfst.num_phones() as usize, (0.5, 4.0), 13);
    let decoder = ViterbiDecoder::new(DecodeOptions::with_beam(6.0));
    let mut scratch = DecodeScratch::new(wfst.num_states());
    decoder.decode_with(&mut scratch, &wfst, &scores); // warm

    let first = count_allocs(|| {
        decoder.decode_with(&mut scratch, &wfst, &scores);
    });
    let second = count_allocs(|| {
        decoder.decode_with(&mut scratch, &wfst, &scores);
    });
    assert_eq!(
        first, second,
        "identical decodes through warmed scratch must allocate identically"
    );
}
