//! Equivalence suite: the token-table decoder must reproduce the retained
//! `HashMap` reference decoder byte-for-byte on `words`, `cost`, and
//! `best_state` — across graph sizes, beams, histogram caps, and the
//! sharded parallel variant. This is what licenses replacing the hot path:
//! prune-on-insert may only skip work, never change the answer.

use asr_acoustic::scores::AcousticTable;
use asr_decoder::parallel::ParallelDecoder;
use asr_decoder::reference::ReferenceDecoder;
use asr_decoder::search::{DecodeOptions, DecodeScratch, ViterbiDecoder};
use asr_wfst::synth::{SynthConfig, SynthWfst};
use asr_wfst::Wfst;

fn workload(states: usize, frames: usize, seed: u64) -> (Wfst, AcousticTable) {
    let wfst = SynthWfst::generate(&SynthConfig::with_states(states).with_seed(seed)).unwrap();
    let scores = AcousticTable::random(
        frames,
        wfst.num_phones() as usize,
        (0.5, 4.0),
        seed.wrapping_mul(0x9E37_79B9),
    );
    (wfst, scores)
}

fn assert_equivalent(opts: &DecodeOptions, wfst: &Wfst, scores: &AcousticTable, label: &str) {
    let reference = ReferenceDecoder::new(opts.clone()).decode(wfst, scores);
    let table = ViterbiDecoder::new(opts.clone()).decode(wfst, scores);
    assert_eq!(
        table.cost.to_bits(),
        reference.cost.to_bits(),
        "{label}: cost"
    );
    assert_eq!(table.words, reference.words, "{label}: words");
    assert_eq!(
        table.best_state, reference.best_state,
        "{label}: best_state"
    );
    assert_eq!(
        table.reached_final, reference.reached_final,
        "{label}: reached_final"
    );
}

#[test]
fn equivalent_across_graph_sizes_and_seeds() {
    for states in [2_000usize, 10_000, 50_000] {
        for seed in [1u64, 2, 3] {
            let (wfst, scores) = workload(states, 20, seed);
            let opts = DecodeOptions::with_beam(6.0);
            assert_equivalent(
                &opts,
                &wfst,
                &scores,
                &format!("{states} states, seed {seed}"),
            );
        }
    }
}

#[test]
fn equivalent_across_beams() {
    let (wfst, scores) = workload(8_000, 25, 11);
    for beam in [0.0f32, 2.0, 4.0, 8.0, 16.0, 64.0] {
        let opts = DecodeOptions::with_beam(beam);
        assert_equivalent(&opts, &wfst, &scores, &format!("beam {beam}"));
    }
}

#[test]
fn equivalent_under_histogram_pruning() {
    let (wfst, scores) = workload(6_000, 20, 23);
    // cap 0 is the degenerate everything-pruned decode; it must not
    // panic and must agree with the reference's empty result.
    for cap in [0usize, 1, 8, 64, 512] {
        let opts = DecodeOptions {
            beam: 12.0,
            max_active: Some(cap),
            ..DecodeOptions::default()
        };
        assert_equivalent(&opts, &wfst, &scores, &format!("max_active {cap}"));
    }
}

#[test]
fn equivalent_with_and_without_lattice_gc() {
    let (wfst, scores) = workload(5_000, 50, 31);
    for interval in [None, Some(1u32), Some(4), Some(16)] {
        let opts = DecodeOptions {
            beam: 6.0,
            lattice_gc_interval: interval,
            ..DecodeOptions::default()
        };
        assert_equivalent(&opts, &wfst, &scores, &format!("gc {interval:?}"));
    }
}

#[test]
fn equivalent_on_truncated_audio_without_finals_in_beam() {
    // A tight beam often strands the best path outside final states; the
    // final-frame handling (pruning disabled) must match the reference's
    // full-set final-state selection.
    for seed in [5u64, 17, 40] {
        let (wfst, scores) = workload(3_000, 7, seed);
        let opts = DecodeOptions::with_beam(1.5);
        assert_equivalent(&opts, &wfst, &scores, &format!("tight beam, seed {seed}"));
    }
}

#[test]
fn parallel_decoder_is_deterministic_and_matches_reference() {
    let (wfst, scores) = workload(10_000, 20, 7);
    let opts = DecodeOptions::with_beam(6.0);
    let reference = ReferenceDecoder::new(opts.clone()).decode(&wfst, &scores);
    for threads in [1usize, 2, 3, 4, 8] {
        let decoder = ParallelDecoder::new(opts.clone(), threads);
        let a = decoder.decode(&wfst, &scores);
        let b = decoder.decode(&wfst, &scores);
        // Determinism: identical runs, including the lattice.
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{threads} threads");
        assert_eq!(a.words, b.words, "{threads} threads");
        assert_eq!(a.lattice.len(), b.lattice.len(), "{threads} threads");
        // Equivalence: same answer as the seed semantics.
        assert_eq!(
            a.cost.to_bits(),
            reference.cost.to_bits(),
            "{threads} threads"
        );
        assert_eq!(a.words, reference.words, "{threads} threads");
        assert_eq!(a.best_state, reference.best_state, "{threads} threads");
    }
}

#[test]
fn scratch_reuse_across_different_graphs_matches_reference() {
    // One scratch serving interleaved decodes of differently sized graphs
    // (the serving pattern): results must not depend on scratch history.
    let mut scratch = DecodeScratch::new(1);
    let opts = DecodeOptions::with_beam(6.0);
    let decoder = ViterbiDecoder::new(opts.clone());
    for &(states, seed) in &[(2_000usize, 1u64), (9_000, 2), (3_000, 3), (9_000, 4)] {
        let (wfst, scores) = workload(states, 15, seed);
        let reference = ReferenceDecoder::new(opts.clone()).decode(&wfst, &scores);
        let reused = decoder.decode_with(&mut scratch, &wfst, &scores);
        assert_eq!(reused.cost.to_bits(), reference.cost.to_bits());
        assert_eq!(reused.words, reference.words);
        assert_eq!(reused.best_state, reference.best_state);
    }
}
