//! Battery-life modelling: the paper's motivating argument quantified.
//!
//! The introduction argues that software ASR "results in fairly short
//! operating time per battery charge" and that cloud offload pays for
//! radio energy instead. This module turns the workspace's energy numbers
//! into the user-visible metric: hours of always-available speech
//! recognition per charge, for each execution target.

use crate::metrics::OperatingPoint;
use serde::{Deserialize, Serialize};

/// A device battery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Capacity in watt-hours.
    pub capacity_wh: f64,
}

impl Battery {
    /// A typical smartphone battery (~3000 mAh at 3.85 V).
    pub fn smartphone() -> Self {
        Self { capacity_wh: 11.5 }
    }

    /// A smartwatch battery (~300 mAh at 3.85 V).
    pub fn smartwatch() -> Self {
        Self { capacity_wh: 1.2 }
    }

    /// Joules stored.
    pub fn joules(&self) -> f64 {
        self.capacity_wh * 3600.0
    }
}

/// Cellular-offload model: energy the radio burns shipping audio to a
/// cloud recognizer (the alternative the paper's introduction discusses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudOffload {
    /// Radio energy per second of uploaded speech, in joules (compressed
    /// audio over LTE-class radio, including tail energy).
    pub radio_j_per_speech_s: f64,
}

impl Default for CloudOffload {
    fn default() -> Self {
        // ~16 kbps compressed speech with LTE tail states: order of a
        // joule per second of speech.
        Self {
            radio_j_per_speech_s: 1.0,
        }
    }
}

/// Hours of speech that can be *recognized* on one charge, if the whole
/// battery went to the recognizer (an upper bound that makes platforms
/// comparable).
pub fn speech_hours_per_charge(battery: Battery, point: &OperatingPoint) -> f64 {
    if point.energy_j_per_speech_s <= 0.0 {
        return f64::INFINITY;
    }
    battery.joules() / point.energy_j_per_speech_s / 3600.0
}

/// Hours of speech recognizable via cloud offload on one charge.
pub fn cloud_speech_hours_per_charge(battery: Battery, offload: &CloudOffload) -> f64 {
    battery.joules() / offload.radio_j_per_speech_s / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_presets_are_ordered() {
        assert!(Battery::smartphone().joules() > Battery::smartwatch().joules());
        assert!((Battery::smartphone().joules() - 11.5 * 3600.0).abs() < 1e-9);
    }

    #[test]
    fn accelerator_outlasts_cpu_by_orders_of_magnitude() {
        let battery = Battery::smartphone();
        // Representative operating points from the paper's Figure 14.
        let cpu = OperatingPoint::from_power(0.298, 32.2); // ~9.6 J per speech s
        let asic = OperatingPoint {
            decode_s_per_speech_s: 1.0 / 56.0,
            energy_j_per_speech_s: 0.00826, // 287x below the GPU's 2.37 J
        };
        let cpu_hours = speech_hours_per_charge(battery, &cpu);
        let asic_hours = speech_hours_per_charge(battery, &asic);
        assert!(cpu_hours < 2.0, "CPU: {cpu_hours:.2} h of speech");
        assert!(asic_hours > 1000.0, "ASIC: {asic_hours:.0} h of speech");
        assert!(asic_hours / cpu_hours > 500.0);
    }

    #[test]
    fn local_accelerator_beats_cloud_offload() {
        let battery = Battery::smartphone();
        let cloud = cloud_speech_hours_per_charge(battery, &CloudOffload::default());
        let asic = speech_hours_per_charge(
            battery,
            &OperatingPoint {
                decode_s_per_speech_s: 1.0 / 56.0,
                energy_j_per_speech_s: 0.00826,
            },
        );
        // The paper's argument: offload spends radio energy the local
        // accelerator does not.
        assert!(
            asic > 10.0 * cloud,
            "asic {asic:.0} h vs cloud {cloud:.0} h"
        );
    }

    #[test]
    fn degenerate_point_is_infinite() {
        let free = OperatingPoint {
            decode_s_per_speech_s: 0.1,
            energy_j_per_speech_s: 0.0,
        };
        assert_eq!(
            speech_hours_per_charge(Battery::smartwatch(), &free),
            f64::INFINITY
        );
    }
}
