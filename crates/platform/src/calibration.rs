//! Published operating points and the constants derived from them.
//!
//! The paper reports (Sections VI-VII):
//!
//! * the final accelerator decodes **56x faster than real time**, i.e.
//!   0.01786 s of decode per second of speech;
//! * the final accelerator is **1.7x faster than the GPU** and **16.7x
//!   faster than the CPU** (Figure 10 / Section VI), fixing the GPU at
//!   0.0304 s and the CPU at 0.298 s per speech second (consistent with
//!   the 9.8x GPU-over-CPU speedup quoted for Figure 14);
//! * the **Viterbi search is 73% of CPU time and 86% of GPU time**
//!   (Figure 1), fixing the DNN at 0.110 s (CPU) and 4.94 ms (GPU) per
//!   speech second;
//! * average power: **CPU 32.2 W, GPU 76.4 W** (Figure 12);
//! * the search touches **~25k arcs per frame** on average (Section IV-A),
//!   i.e. 2.5M arcs per speech second at 100 frames/s.
//!
//! Dividing, the models use ~119 ns per arc on the CPU and ~12.1 ns per
//! arc on the GPU, and scale DNN time by FLOPs relative to a Kaldi-era
//! acoustic model (~30 MFLOP/frame). The constants are exposed (not
//! hard-wired into the models) so ablations can move them.

use serde::{Deserialize, Serialize};

/// Frames of speech per second (10 ms frames).
pub const FRAMES_PER_SECOND: f64 = 100.0;

/// Arcs per frame observed by the paper on the Kaldi WFST.
pub const PAPER_ARCS_PER_FRAME: f64 = 25_000.0;

/// Reference DNN cost per frame used to scale acoustic-model time.
pub const REFERENCE_DNN_FLOPS_PER_FRAME: f64 = 30.0e6;

/// Calibrated constants for both baseline platforms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// CPU Viterbi nanoseconds per traversed arc.
    pub cpu_viterbi_ns_per_arc: f64,
    /// GPU Viterbi nanoseconds per traversed arc.
    pub gpu_viterbi_ns_per_arc: f64,
    /// CPU DNN seconds per speech-second at the reference model size.
    pub cpu_dnn_s_per_speech_s: f64,
    /// GPU DNN seconds per speech-second at the reference model size.
    pub gpu_dnn_s_per_speech_s: f64,
    /// CPU package power in watts while decoding.
    pub cpu_power_w: f64,
    /// GPU board power in watts while decoding.
    pub gpu_power_w: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        // Derivation in the module docs.
        let final_asic = 1.0 / 56.0; // 0.017857 s per speech second
        let gpu_viterbi = final_asic * 1.7; // 0.030357
        let cpu_viterbi = final_asic * 16.7; // 0.298214
        let arcs_per_speech_s = PAPER_ARCS_PER_FRAME * FRAMES_PER_SECOND;
        Self {
            cpu_viterbi_ns_per_arc: cpu_viterbi / arcs_per_speech_s * 1e9,
            gpu_viterbi_ns_per_arc: gpu_viterbi / arcs_per_speech_s * 1e9,
            // Figure 1 shares: Viterbi is 73% (CPU) and 86% (GPU).
            cpu_dnn_s_per_speech_s: cpu_viterbi * (27.0 / 73.0),
            gpu_dnn_s_per_speech_s: gpu_viterbi * (14.0 / 86.0),
            cpu_power_w: 32.2,
            gpu_power_w: 76.4,
        }
    }
}

impl Calibration {
    /// The paper-published GPU Viterbi decode time per speech second.
    pub fn gpu_viterbi_s_per_speech_s(&self) -> f64 {
        self.gpu_viterbi_ns_per_arc * 1e-9 * PAPER_ARCS_PER_FRAME * FRAMES_PER_SECOND
    }

    /// The paper-published CPU Viterbi decode time per speech second.
    pub fn cpu_viterbi_s_per_speech_s(&self) -> f64 {
        self.cpu_viterbi_ns_per_arc * 1e-9 * PAPER_ARCS_PER_FRAME * FRAMES_PER_SECOND
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times_match_published_ratios() {
        let c = Calibration::default();
        let gpu = c.gpu_viterbi_s_per_speech_s();
        let cpu = c.cpu_viterbi_s_per_speech_s();
        // GPU is 9.8x the CPU (Figure 14 text).
        assert!((cpu / gpu - 9.82).abs() < 0.15, "got {}", cpu / gpu);
        // Final ASIC at 1/56 s: 1.7x and 16.7x checks.
        let asic = 1.0 / 56.0;
        assert!((gpu / asic - 1.7).abs() < 1e-6);
        assert!((cpu / asic - 16.7).abs() < 1e-6);
    }

    #[test]
    fn figure1_shares_are_reproduced() {
        let c = Calibration::default();
        let cpu_share = c.cpu_viterbi_s_per_speech_s()
            / (c.cpu_viterbi_s_per_speech_s() + c.cpu_dnn_s_per_speech_s);
        let gpu_share = c.gpu_viterbi_s_per_speech_s()
            / (c.gpu_viterbi_s_per_speech_s() + c.gpu_dnn_s_per_speech_s);
        assert!((cpu_share - 0.73).abs() < 0.01, "CPU share {cpu_share}");
        assert!((gpu_share - 0.86).abs() < 0.01, "GPU share {gpu_share}");
    }

    #[test]
    fn dnn_gpu_speedup_is_in_published_band() {
        // The paper quotes 26x for DNN GPU-over-CPU; the Figure 1 shares
        // imply ~22x. Accept the band.
        let c = Calibration::default();
        let speedup = c.cpu_dnn_s_per_speech_s / c.gpu_dnn_s_per_speech_s;
        assert!((20.0..28.0).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn per_arc_times_are_sane() {
        let c = Calibration::default();
        assert!((c.cpu_viterbi_ns_per_arc - 119.3).abs() < 1.0);
        assert!((c.gpu_viterbi_ns_per_arc - 12.1).abs() < 0.2);
    }
}
