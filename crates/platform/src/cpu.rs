//! CPU baseline: Kaldi's software decoder on a Core i7-6700K.
//!
//! Two modes:
//!
//! * **calibrated** — decode time scales the paper's measured per-arc cost
//!   (derived in [`crate::calibration`]) by the workload's actual arc
//!   count, so figures computed on scaled-down WFSTs keep the published
//!   ratios;
//! * **measured** — actually run the reference decoder from `asr-decoder`
//!   and time it on the host, for sanity checks and examples (the host is
//!   not an i7-6700K, so measured numbers are indicative only).

use crate::calibration::{Calibration, FRAMES_PER_SECOND, REFERENCE_DNN_FLOPS_PER_FRAME};
use crate::metrics::OperatingPoint;
use asr_acoustic::scores::AcousticTable;
use asr_decoder::search::{DecodeOptions, DecodeResult, ViterbiDecoder};
use asr_wfst::Wfst;
use std::time::Instant;

/// The CPU platform model.
#[derive(Debug, Clone, Default)]
pub struct CpuModel {
    calibration: Calibration,
}

impl CpuModel {
    /// Model with explicit calibration constants.
    pub fn new(calibration: Calibration) -> Self {
        Self { calibration }
    }

    /// The constants in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Viterbi decode time (seconds per second of speech) for a workload
    /// traversing `arcs_per_frame` arcs on average.
    pub fn viterbi_s_per_speech_s(&self, arcs_per_frame: f64) -> f64 {
        self.calibration.cpu_viterbi_ns_per_arc * 1e-9 * arcs_per_frame * FRAMES_PER_SECOND
    }

    /// DNN scoring time (seconds per second of speech) for an acoustic
    /// model of `flops_per_frame`.
    pub fn dnn_s_per_speech_s(&self, flops_per_frame: f64) -> f64 {
        self.calibration.cpu_dnn_s_per_speech_s * (flops_per_frame / REFERENCE_DNN_FLOPS_PER_FRAME)
    }

    /// The Figure 9/11/12 operating point for the Viterbi search.
    pub fn viterbi_point(&self, arcs_per_frame: f64) -> OperatingPoint {
        OperatingPoint::from_power(
            self.viterbi_s_per_speech_s(arcs_per_frame),
            self.calibration.cpu_power_w,
        )
    }

    /// Runs the actual reference decoder on the host and returns the
    /// result plus wall-clock seconds. Indicative only; calibrated numbers
    /// drive the figures.
    pub fn measure_viterbi(
        &self,
        wfst: &Wfst,
        scores: &AcousticTable,
        beam: f32,
    ) -> (DecodeResult, f64) {
        let decoder = ViterbiDecoder::new(DecodeOptions::with_beam(beam));
        let start = Instant::now();
        let result = decoder.decode(wfst, scores);
        (result, start.elapsed().as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_reproduces_published_time() {
        let cpu = CpuModel::default();
        // 25k arcs/frame -> 0.298 s per speech second (16.7x slower than
        // the final accelerator).
        let t = cpu.viterbi_s_per_speech_s(25_000.0);
        assert!((t - 0.298).abs() < 0.002, "got {t}");
    }

    #[test]
    fn decode_time_scales_linearly_with_arcs() {
        let cpu = CpuModel::default();
        let t1 = cpu.viterbi_s_per_speech_s(5_000.0);
        let t2 = cpu.viterbi_s_per_speech_s(10_000.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn operating_point_uses_rapl_power() {
        let cpu = CpuModel::default();
        let p = cpu.viterbi_point(25_000.0);
        assert!((p.power_w() - 32.2).abs() < 1e-9);
        assert!(p.energy_j_per_speech_s > 9.0); // ~9.6 J per speech second
    }

    #[test]
    fn dnn_time_scales_with_model_size() {
        let cpu = CpuModel::default();
        let small = cpu.dnn_s_per_speech_s(15.0e6);
        let reference = cpu.dnn_s_per_speech_s(30.0e6);
        assert!((reference / small - 2.0).abs() < 1e-9);
        assert!((reference - 0.1103).abs() < 0.002);
    }

    #[test]
    fn measured_decode_runs_and_returns_result() {
        use asr_wfst::synth::{SynthConfig, SynthWfst};
        let w = SynthWfst::generate(&SynthConfig::with_states(500)).unwrap();
        let scores = AcousticTable::random(5, w.num_phones() as usize, (0.5, 4.0), 1);
        let (result, seconds) = CpuModel::default().measure_viterbi(&w, &scores, 6.0);
        assert!(seconds > 0.0);
        assert!(result.cost.is_finite());
    }
}
