//! GPU baseline: the CUDA decoder of Chong et al. on a GeForce GTX 980.
//!
//! Calibrated like [`crate::cpu`], with one structural refinement: the GPU
//! decoder's per-frame cost has a fixed kernel-launch/synchronization
//! component on top of the per-arc throughput term. The paper emphasizes
//! that the Viterbi search parallelizes poorly (3.74-10x, versus 26x for
//! the DNN); the fixed overhead is what keeps small active sets from
//! scaling down GPU time linearly, and it is derived so the published
//! operating point (25k arcs/frame) is preserved exactly.

use crate::calibration::{
    Calibration, FRAMES_PER_SECOND, PAPER_ARCS_PER_FRAME, REFERENCE_DNN_FLOPS_PER_FRAME,
};
use crate::metrics::OperatingPoint;
use serde::{Deserialize, Serialize};

/// Fraction of the GPU's per-frame Viterbi cost that is fixed overhead
/// (kernel launches, global synchronization between frame phases).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuOverheadSplit {
    /// Fixed seconds per frame regardless of active-set size.
    pub fixed_fraction: f64,
}

impl Default for GpuOverheadSplit {
    fn default() -> Self {
        // Zero by default: every figure compares platforms at the *same*
        // workload, so the calibrated per-arc cost must scale linearly for
        // the published ratios to be preserved at reduced scale (see
        // DESIGN.md). A non-zero fraction models kernel-launch /
        // synchronization overhead for ablations on absolute GPU latency.
        Self {
            fixed_fraction: 0.0,
        }
    }
}

/// The GPU platform model.
#[derive(Debug, Clone, Default)]
pub struct GpuModel {
    calibration: Calibration,
    overhead: GpuOverheadSplit,
}

impl GpuModel {
    /// Model with explicit constants.
    pub fn new(calibration: Calibration, overhead: GpuOverheadSplit) -> Self {
        Self {
            calibration,
            overhead,
        }
    }

    /// The constants in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Viterbi decode time (seconds per second of speech) for a workload
    /// traversing `arcs_per_frame` arcs on average.
    pub fn viterbi_s_per_speech_s(&self, arcs_per_frame: f64) -> f64 {
        let paper_total = self.calibration.gpu_viterbi_ns_per_arc
            * 1e-9
            * PAPER_ARCS_PER_FRAME
            * FRAMES_PER_SECOND;
        let fixed = paper_total * self.overhead.fixed_fraction;
        let variable = paper_total
            * (1.0 - self.overhead.fixed_fraction)
            * (arcs_per_frame / PAPER_ARCS_PER_FRAME);
        fixed + variable
    }

    /// DNN scoring time (seconds per second of speech) for an acoustic
    /// model of `flops_per_frame`.
    pub fn dnn_s_per_speech_s(&self, flops_per_frame: f64) -> f64 {
        self.calibration.gpu_dnn_s_per_speech_s * (flops_per_frame / REFERENCE_DNN_FLOPS_PER_FRAME)
    }

    /// The Figure 9/11/12 operating point for the Viterbi search.
    pub fn viterbi_point(&self, arcs_per_frame: f64) -> OperatingPoint {
        OperatingPoint::from_power(
            self.viterbi_s_per_speech_s(arcs_per_frame),
            self.calibration.gpu_power_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_reproduces_published_time() {
        let gpu = GpuModel::default();
        let t = gpu.viterbi_s_per_speech_s(25_000.0);
        assert!((t - 0.0304).abs() < 0.0005, "got {t}");
    }

    #[test]
    fn default_model_scales_linearly() {
        let gpu = GpuModel::default();
        let full = gpu.viterbi_s_per_speech_s(25_000.0);
        let tenth = gpu.viterbi_s_per_speech_s(2_500.0);
        assert!((tenth / full - 0.1).abs() < 1e-9);
    }

    #[test]
    fn fixed_overhead_keeps_small_sets_from_scaling_linearly() {
        let gpu = GpuModel::new(
            Calibration::default(),
            GpuOverheadSplit {
                fixed_fraction: 0.35,
            },
        );
        let full = gpu.viterbi_s_per_speech_s(25_000.0);
        let tenth = gpu.viterbi_s_per_speech_s(2_500.0);
        // Far more than 10% of the time remains: fixed overhead dominates.
        assert!(tenth > 0.35 * full);
        assert!(tenth < full);
    }

    #[test]
    fn operating_point_uses_board_power() {
        let gpu = GpuModel::default();
        let p = gpu.viterbi_point(25_000.0);
        assert!((p.power_w() - 76.4).abs() < 1e-9);
        // ~2.3 J per speech second, 4.2x less than the CPU's ~9.6 J.
        assert!((p.energy_j_per_speech_s - 2.32).abs() < 0.05);
    }

    #[test]
    fn gpu_beats_cpu_by_published_factor() {
        let gpu = GpuModel::default();
        let cpu = crate::cpu::CpuModel::default();
        let ratio = cpu.viterbi_s_per_speech_s(25_000.0) / gpu.viterbi_s_per_speech_s(25_000.0);
        assert!((ratio - 9.8).abs() < 0.2, "got {ratio}");
    }

    #[test]
    fn dnn_is_much_faster_than_viterbi_on_gpu() {
        // Figure 1: the GPU spends 86% of its time in the search.
        let gpu = GpuModel::default();
        let dnn = gpu.dnn_s_per_speech_s(30.0e6);
        let vit = gpu.viterbi_s_per_speech_s(25_000.0);
        assert!(vit / (vit + dnn) > 0.85);
    }
}
