//! Platform models: the CPU and GPU baselines the paper measures against,
//! and the combined ASR pipeline model.
//!
//! The paper's baselines are physical machines we cannot re-measure: Kaldi
//! on a Core i7-6700K (RAPL power) and a CUDA decoder on a GeForce GTX 980
//! (nvprof power). Following the substitution policy in DESIGN.md, this
//! crate models them analytically, **calibrated to the paper's published
//! operating points** (module [`calibration`]), and scales with the actual
//! workload the simulator ran (arcs per frame, DNN size). The reference
//! software decoder in `asr-decoder` remains available for *measured* CPU
//! runs ([`cpu::CpuModel::measure_viterbi`]), used by examples to sanity
//! check the model's ballpark.
//!
//! * [`calibration`] — the published numbers and the constants derived
//!   from them;
//! * [`cpu`] — CPU Viterbi + DNN times and 32.2 W power;
//! * [`gpu`] — GPU Viterbi + DNN times and 76.4 W power;
//! * [`pipeline`] — the end-to-end system model behind the 1.87x
//!   full-pipeline claim (GPU-only sequential vs GPU+accelerator
//!   pipelined);
//! * [`metrics`] — the decode-time / energy / power triple used by every
//!   figure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod battery;
pub mod calibration;
pub mod cpu;
pub mod gpu;
pub mod metrics;
pub mod pipeline;

pub use calibration::Calibration;
pub use cpu::CpuModel;
pub use gpu::GpuModel;
pub use metrics::OperatingPoint;
