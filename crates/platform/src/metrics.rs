//! The decode-time / energy / power triple every figure reports.

use serde::{Deserialize, Serialize};

/// One platform's operating point on a workload: the axes of Figures 9-14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Decode (Viterbi) time per second of speech, in seconds (Figure 9).
    pub decode_s_per_speech_s: f64,
    /// Energy per second of speech, in joules (Figures 11/14).
    pub energy_j_per_speech_s: f64,
}

impl OperatingPoint {
    /// Builds the point from a decode time and an average power.
    pub fn from_power(decode_s_per_speech_s: f64, power_w: f64) -> Self {
        Self {
            decode_s_per_speech_s,
            energy_j_per_speech_s: decode_s_per_speech_s * power_w,
        }
    }

    /// Average power in watts (Figure 12).
    pub fn power_w(&self) -> f64 {
        if self.decode_s_per_speech_s <= 0.0 {
            return 0.0;
        }
        self.energy_j_per_speech_s / self.decode_s_per_speech_s
    }

    /// Speedup of `self` over `other` (>1 means `self` is faster).
    pub fn speedup_over(&self, other: &OperatingPoint) -> f64 {
        other.decode_s_per_speech_s / self.decode_s_per_speech_s
    }

    /// Energy reduction of `self` versus `other` (>1 means `self` uses
    /// less energy).
    pub fn energy_reduction_vs(&self, other: &OperatingPoint) -> f64 {
        other.energy_j_per_speech_s / self.energy_j_per_speech_s
    }

    /// Real-time factor (56x in the paper for the final accelerator).
    pub fn real_time_factor(&self) -> f64 {
        if self.decode_s_per_speech_s <= 0.0 {
            return f64::INFINITY;
        }
        1.0 / self.decode_s_per_speech_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_power_roundtrips() {
        let p = OperatingPoint::from_power(0.25, 40.0);
        assert!((p.energy_j_per_speech_s - 10.0).abs() < 1e-12);
        assert!((p.power_w() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_energy_reduction() {
        let slow = OperatingPoint::from_power(1.0, 100.0);
        let fast = OperatingPoint::from_power(0.1, 1.0);
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-12);
        assert!((fast.energy_reduction_vs(&slow) - 1000.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn real_time_factor() {
        let p = OperatingPoint::from_power(1.0 / 56.0, 0.45);
        assert!((p.real_time_factor() - 56.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_point_is_safe() {
        let p = OperatingPoint::from_power(0.0, 10.0);
        assert_eq!(p.power_w(), 0.0);
        assert_eq!(p.real_time_factor(), f64::INFINITY);
    }
}
