//! Full ASR pipeline model: DNN + Viterbi, batched and pipelined.
//!
//! Section VI evaluates the complete system: a GPU-only configuration runs
//! the DNN and the search sequentially on the GPU, while the proposed
//! system runs the DNN on the GPU and the search on the accelerator *in
//! parallel*, pipelined over batches of frames (the accelerator decodes
//! batch *i* while the GPU scores batch *i+1*; the Acoustic Likelihood
//! Buffer double-buffers the handoff). The paper reports 1.87x end-to-end
//! over GPU-only.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::metrics::OperatingPoint;
use serde::{Deserialize, Serialize};

/// End-to-end times (per second of speech) of the three system options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineComparison {
    /// CPU-only: DNN and search sequential on the CPU.
    pub cpu_only_s: f64,
    /// GPU-only: DNN and search sequential on the GPU.
    pub gpu_only_s: f64,
    /// GPU (DNN) + accelerator (search), pipelined: the stages overlap, so
    /// throughput is set by the slower stage.
    pub gpu_plus_accel_s: f64,
}

impl PipelineComparison {
    /// The headline end-to-end speedup (paper: 1.87x).
    pub fn speedup_over_gpu_only(&self) -> f64 {
        self.gpu_only_s / self.gpu_plus_accel_s
    }
}

/// The full-system model.
#[derive(Debug, Clone, Default)]
pub struct PipelineModel {
    cpu: CpuModel,
    gpu: GpuModel,
}

impl PipelineModel {
    /// Builds from explicit platform models.
    pub fn new(cpu: CpuModel, gpu: GpuModel) -> Self {
        Self { cpu, gpu }
    }

    /// Compares system options for a workload of `arcs_per_frame` and an
    /// acoustic model of `dnn_flops_per_frame`, given the accelerator's
    /// simulated Viterbi time per speech second.
    pub fn compare(
        &self,
        arcs_per_frame: f64,
        dnn_flops_per_frame: f64,
        accel_viterbi_s_per_speech_s: f64,
    ) -> PipelineComparison {
        let cpu_only_s = self.cpu.viterbi_s_per_speech_s(arcs_per_frame)
            + self.cpu.dnn_s_per_speech_s(dnn_flops_per_frame);
        let gpu_dnn = self.gpu.dnn_s_per_speech_s(dnn_flops_per_frame);
        let gpu_only_s = self.gpu.viterbi_s_per_speech_s(arcs_per_frame) + gpu_dnn;
        // Pipelined: batches flow through both stages; steady-state
        // throughput is governed by the slower stage.
        let gpu_plus_accel_s = gpu_dnn.max(accel_viterbi_s_per_speech_s);
        PipelineComparison {
            cpu_only_s,
            gpu_only_s,
            gpu_plus_accel_s,
        }
    }

    /// Operating point of the combined GPU+accelerator system, charging
    /// GPU energy for the DNN portion and accelerator energy for the
    /// search.
    pub fn combined_point(
        &self,
        dnn_flops_per_frame: f64,
        accel_point: OperatingPoint,
    ) -> OperatingPoint {
        let gpu_dnn_s = self.gpu.dnn_s_per_speech_s(dnn_flops_per_frame);
        let gpu_energy = gpu_dnn_s * self.gpu.calibration().gpu_power_w;
        OperatingPoint {
            decode_s_per_speech_s: gpu_dnn_s.max(accel_point.decode_s_per_speech_s),
            energy_j_per_speech_s: gpu_energy + accel_point.energy_j_per_speech_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{PAPER_ARCS_PER_FRAME, REFERENCE_DNN_FLOPS_PER_FRAME};

    #[test]
    fn paper_operating_point_gives_published_speedup() {
        let model = PipelineModel::default();
        // Final accelerator: 1/56 s per speech second.
        let cmp = model.compare(
            PAPER_ARCS_PER_FRAME,
            REFERENCE_DNN_FLOPS_PER_FRAME,
            1.0 / 56.0,
        );
        let s = cmp.speedup_over_gpu_only();
        // Paper: 1.87x. Our derivation of Figure 1 shares gives ~1.98;
        // accept the band around the published value.
        assert!((1.75..2.1).contains(&s), "got {s}");
    }

    #[test]
    fn pipeline_is_bounded_by_slower_stage() {
        let model = PipelineModel::default();
        let fast_accel = model.compare(25_000.0, 30.0e6, 1e-6);
        // With an infinitely fast accelerator, the DNN bounds throughput.
        let gpu_dnn = model.gpu.dnn_s_per_speech_s(30.0e6);
        assert!((fast_accel.gpu_plus_accel_s - gpu_dnn).abs() < 1e-12);
        let slow_accel = model.compare(25_000.0, 30.0e6, 1.0);
        assert!((slow_accel.gpu_plus_accel_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_only_is_slowest() {
        let model = PipelineModel::default();
        let cmp = model.compare(25_000.0, 30.0e6, 1.0 / 56.0);
        assert!(cmp.cpu_only_s > cmp.gpu_only_s);
        assert!(cmp.gpu_only_s > cmp.gpu_plus_accel_s);
    }

    #[test]
    fn combined_point_adds_energies() {
        let model = PipelineModel::default();
        let accel = OperatingPoint::from_power(1.0 / 56.0, 0.462);
        let combined = model.combined_point(30.0e6, accel);
        assert!(combined.energy_j_per_speech_s > accel.energy_j_per_speech_s);
        assert!(combined.decode_s_per_speech_s >= accel.decode_s_per_speech_s.min(0.005));
    }
}
