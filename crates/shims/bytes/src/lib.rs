//! Vendored stand-in for `bytes`: little-endian cursor reads over `&[u8]`
//! and appends onto `Vec<u8>`, covering exactly the accessors the packed
//! WFST container format uses.

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow (as the real crate does).
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `u128`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u128_le(&mut self) -> u128;

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

macro_rules! slice_get {
    ($self:ident, $t:ty) => {{
        const N: usize = std::mem::size_of::<$t>();
        let (head, rest) = $self.split_at(N);
        let value = <$t>::from_le_bytes(head.try_into().expect("sized split"));
        *$self = rest;
        value
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        slice_get!(self, u8)
    }

    fn get_u32_le(&mut self) -> u32 {
        slice_get!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        slice_get!(self, u64)
    }

    fn get_u128_le(&mut self) -> u128 {
        slice_get!(self, u128)
    }
}

/// Little-endian appends onto a growable byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u128_le(&mut self, v: u128) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_u128_le(0xFEED_FACE_CAFE_F00D_0123_4567_89AB_CDEF);
        out.put_f32_le(1.5);
        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_u128_le(), 0xFEED_FACE_CAFE_F00D_0123_4567_89AB_CDEF);
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut buf: &[u8] = &data;
        buf.advance(2);
        assert_eq!(buf.get_u8(), 3);
        assert_eq!(buf.remaining(), 1);
    }
}
