//! Vendored stand-in for `criterion`: a small wall-clock harness exposing
//! the API the workspace's benches use (`Criterion::benchmark_group`,
//! `bench_function`, `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros). It reports median
//! time-per-iteration to stdout; there is no statistical machinery, plots,
//! or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 30,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_benchmark(&id.into(), 30, f);
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.samples, f);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count to roughly 5 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!(
        "bench {id:<50} {:>12}/iter ({iters} iters/sample)",
        format_time(median)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
