//! Vendored stand-in for `proptest`, covering the macro surface this
//! workspace's property tests use: `proptest! { #[test] fn f(x in strategy) }`
//! with range, `any`, tuple, and `prop::collection::vec` strategies, plus
//! `prop_assert!`/`prop_assert_eq!` and `ProptestConfig::with_cases`.
//!
//! Cases are generated from a deterministic per-test RNG (seeded by the
//! test name), so failures reproduce; there is no shrinking.

use std::ops::{Range, RangeInclusive};

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the test's name so each property gets its own stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Whole-domain generation for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy drawing from the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (`prop::collection` in real proptest).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy, TestRng};

    pub mod prop {
        //! The `prop::` namespace used by test bodies.
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("assertion failed: {left:?} != {right:?}"),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(
                format!("assertion failed: {left:?} != {right:?} ({})", format!($($fmt)+)),
            );
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!("assertion failed: {left:?} == {right:?}"));
        }
    }};
}

/// Declares property tests; each named function runs `config.cases`
/// deterministic cases of its body with fresh strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("property {} failed on case {case}: {message}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_are_respected(a in 3u32..9, b in -5i64..=5, f in 0.5f32..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vectors_obey_size(v in prop::collection::vec((0usize..4, 1u32..3), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for (x, y) in v {
                prop_assert!(x < 4);
                prop_assert_eq!(y.min(2), y);
            }
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
