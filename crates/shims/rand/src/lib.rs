//! Vendored stand-in for `rand` implementing the surface this workspace
//! uses: the [`Rng`] trait with `gen`, `gen_bool`, and `gen_range`,
//! [`SeedableRng::seed_from_u64`], and
//! [`distributions::Distribution`]. Streams are deterministic per seed but
//! are not bit-compatible with upstream `rand` — nothing in the workspace
//! depends on upstream streams, only on internal reproducibility.

use std::ops::{Range, RangeInclusive};

/// A source of randomness.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Samples a value from the standard distribution of `T` (uniform over
    /// the unit interval for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample_single(range, self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard distribution of `T` (what `rng.gen::<T>()` samples).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa-width bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa-width bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $next:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.$next() as $t
            }
        }
    )*};
}
impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64,
                   usize: next_u64, i8: next_u32, i16: next_u32, i32: next_u32,
                   i64: next_u64, isize: next_u64);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit: $t = Standard::sample_standard(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end {
                    // Nudge to the largest value below `end`.
                    <$t>::from_bits(self.end.to_bits() - 1)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit: $t = Standard::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

pub mod distributions {
    //! Distribution sampling, mirroring `rand::distributions`.

    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SplitMix(u64);

    impl Rng for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(7);
        for _ in 0..10_000 {
            let a: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&a));
            let b: i64 = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&b));
            let c: f32 = rng.gen_range(0.5..4.0);
            assert!((0.5..4.0).contains(&c));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
