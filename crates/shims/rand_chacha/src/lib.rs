//! Vendored ChaCha8 generator implementing the `rand` shim's traits.
//!
//! The core is the genuine ChaCha permutation with 8 rounds over the usual
//! 16-word state (4 constants, 8 key words, block counter, 3 nonce words).
//! `seed_from_u64` expands the seed into key material with SplitMix64;
//! streams are deterministic per seed but not bit-compatible with upstream
//! `rand_chacha` (nothing in the workspace depends on upstream streams).

use rand::{Rng, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha stream cipher core used as an RNG, with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means empty.
    cursor: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter starts at zero; nonce words stay zero (single stream).
        Self {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_continues_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(7);
        let second: Vec<u32> = (0..40).map(|_| again.next_u32()).collect();
        assert_eq!(first, second);
        // Words span three blocks and should not repeat block 1 verbatim.
        assert_ne!(&first[..16], &first[16..32]);
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
