//! The in-memory JSON value tree produced by [`crate::Serialize`] and a
//! deterministic pretty-printer over it.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite float.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Map-key rendering (JSON object keys are strings).
pub trait SerializeKey {
    /// Renders the key.
    fn to_key(&self) -> String;
}

macro_rules! impl_key_display {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
impl_key_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for &str {
    fn to_key(&self) -> String {
        (*self).to_owned()
    }
}

impl<A: SerializeKey, B: SerializeKey> SerializeKey for (A, B) {
    fn to_key(&self) -> String {
        format!("{},{}", self.0.to_key(), self.1.to_key())
    }
}

impl<A: SerializeKey, B: SerializeKey, C: SerializeKey> SerializeKey for (A, B, C) {
    fn to_key(&self) -> String {
        format!(
            "{},{},{}",
            self.0.to_key(),
            self.1.to_key(),
            self.2.to_key()
        )
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_repr(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl Value {
    /// Renders with two-space indentation, `serde_json`-style.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(0, &mut out);
        out
    }

    fn write_pretty(&self, indent: usize, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Float(v) => out.push_str(&float_repr(*v)),
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(indent + 1, out);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write_pretty(indent + 1, out);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}
