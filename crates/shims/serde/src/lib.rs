//! Vendored stand-in for `serde`, implementing exactly the surface this
//! workspace uses: `#[derive(Serialize, Deserialize)]`, a `Serialize`
//! trait that renders to an in-memory JSON value, and the `#[serde(skip)]`
//! field attribute. The build environment has no registry access, so the
//! real crate cannot be fetched; types serialized here are plain data
//! (figures, stats, configs) and need nothing more than deterministic
//! JSON output via the sibling `serde_json` shim.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialization to an in-memory JSON value tree.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json_value(&self) -> json::Value;
}

/// Marker trait kept so `#[derive(Deserialize)]` and trait imports
/// compile; nothing in the workspace deserializes through serde.
pub trait Deserialize: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> json::Value {
        (**self).to_json_value()
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> json::Value {
                let v = *self as f64;
                if v.is_finite() {
                    json::Value::Float(v)
                } else {
                    // JSON has no Inf/NaN; degrade to null like
                    // `serde_json::Value` consumers expect for gaps.
                    json::Value::Null
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_json_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> json::Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> json::Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: json::SerializeKey,
    V: Serialize,
{
    fn to_json_value(&self) -> json::Value {
        let mut entries: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        // Deterministic output regardless of hasher state.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(entries)
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: json::SerializeKey,
    V: Serialize,
{
    fn to_json_value(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json_value()))
                .collect(),
        )
    }
}
