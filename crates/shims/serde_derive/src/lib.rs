//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the vendored serde
//! shim. Parses the item declaration directly from the token stream (no
//! `syn`/`quote` available offline) and supports what this workspace
//! declares: non-generic structs with named fields, tuple structs, unit
//! structs, and enums with unit variants. `#[serde(skip)]` omits a field.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<(String, bool)>),
    Tuple(usize),
    Unit,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<String> },
}

/// Consumes leading attributes; returns whether `#[serde(skip)]` was seen.
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        if let Some(TokenTree::Group(g)) = iter.next() {
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = inner.next() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        for t in args.stream() {
                            if let TokenTree::Ident(a) = t {
                                if a.to_string() == "skip" {
                                    skip = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    skip
}

fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_named_fields(group: proc_macro::Group) -> Vec<(String, bool)> {
    let mut fields = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        let skip = skip_attrs(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found {other}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field {name}, found {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth
        // zero (commas inside `<...>`, tuples, and arrays don't split).
        let mut angle_depth = 0i32;
        for t in iter.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push((name, skip));
    }
    fields
}

fn count_tuple_fields(group: proc_macro::Group) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for t in group.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(group: proc_macro::Group) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name, found {other}"),
            None => break,
        };
        // Unit variants only: a payload would need real serde.
        if let Some(TokenTree::Group(_)) = iter.peek() {
            panic!("serde_derive shim: enum variant {name} with fields is unsupported")
        }
        // Skip an optional discriminant and the trailing comma.
        for t in iter.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)`'s group is consumed by the next arm.
            }
            Some(TokenTree::Group(_)) => {}
            Some(other) => panic!("serde_derive: unexpected token {other}"),
            None => panic!("serde_derive: no struct/enum found"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type {name} is unsupported");
    }
    if kind == "enum" {
        let body = loop {
            match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
                Some(_) => {}
                None => panic!("serde_derive: enum {name} has no body"),
            }
        };
        return Item::Enum {
            name,
            variants: parse_variants(body),
        };
    }
    let fields = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(count_tuple_fields(g))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive: unexpected struct body for {name}: {other:?}"),
    };
    Item::Struct { name, fields }
}

/// Derives the shim's `Serialize` (JSON value rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fields) => {
                let mut body = String::from(
                    "let mut obj: Vec<(String, ::serde::json::Value)> = Vec::new();\n",
                );
                for (field, skip) in fields {
                    if skip {
                        continue;
                    }
                    body.push_str(&format!(
                        "obj.push((\"{field}\".to_string(), \
                         ::serde::Serialize::to_json_value(&self.{field})));\n"
                    ));
                }
                body.push_str("::serde::json::Value::Object(obj)");
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n}}"
                )
            }
            Fields::Tuple(1) => format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::Serialize::to_json_value(&self.0)\n}}\n}}"
            ),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::json::Value {{\n\
                     ::serde::json::Value::Array(vec![{}])\n}}\n}}",
                    items.join(", ")
                )
            }
            Fields::Unit => format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Null\n}}\n}}"
            ),
        },
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            let arms = arms.join(",\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::json::Value {{\n\
                 ::serde::json::Value::Str(match self {{\n{arms}\n}}.to_string())\n}}\n}}\n\
                 impl ::serde::json::SerializeKey for {name} {{\n\
                 fn to_key(&self) -> String {{\n\
                 match self {{\n{arms}\n}}.to_string()\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code parses")
}

/// Derives the shim's no-op `Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive: generated code parses")
}
