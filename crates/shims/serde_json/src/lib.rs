//! Vendored stand-in for `serde_json` over the vendored serde shim.
//! Implements only what the workspace calls: [`to_string_pretty`] (and
//! compact [`to_string`]), both infallible for the value-tree model but
//! keeping the `Result` signature callers expect.

use std::fmt;

/// Serialization error (never produced by the shim; kept for signature
/// compatibility).
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().pretty())
}

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let pretty = value.to_json_value().pretty();
    // The value tree has no string newlines escaped away, so compacting is
    // a cheap join of the pretty form's trimmed lines.
    Ok(pretty
        .lines()
        .map(str::trim_start)
        .collect::<Vec<_>>()
        .join(""))
}
