//! `asr-lint` — the repo's custom static-analysis pass.
//!
//! Usage: `cargo run -p asr-verify --bin asr-lint [REPO_ROOT]`
//!
//! Scans every first-party `src/` tree (vendored shims, integration
//! tests, benches and examples exempt) and enforces the invariants in
//! [`asr_verify::lint`]: SAFETY comments on `unsafe`, `Ordering::` and
//! raw-pointer types confined to allowlisted modules, no panicking
//! calls in hot-path modules, and size/align asserts on every
//! `#[repr(C)]` store record. Exits non-zero on any finding.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let findings = asr_verify::lint::lint_repo(&root);
    if findings.is_empty() {
        eprintln!("asr-lint: clean");
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        eprintln!("{finding}");
    }
    eprintln!("asr-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
