//! In-repo verification toolchain for the lock-free serving runtime.
//!
//! Two halves, both dependency-free:
//!
//! * [`model`] + [`shadow`] — a mini-loom **stateless model checker**.
//!   [`shadow`] provides drop-in replacements for `std::sync::atomic`
//!   types, fences, `Mutex` and `Condvar`; when a check is running they
//!   route every operation through a deterministic scheduler and an
//!   explicit C11-style weak-memory model (vector clocks, per-location
//!   store histories, release/acquire/SeqCst semantics), and outside a
//!   check they fall back to the real `std` primitives. [`model::check`]
//!   explores *every* interleaving of a small multi-threaded harness up
//!   to a preemption bound, branching both on scheduling choices and on
//!   which admissible store each relaxed/acquire load observes — so a
//!   missing `Release` fence or a lost wakeup is found exhaustively
//!   instead of probabilistically. `asr-decoder` threads these types
//!   through its executor (`crates/decoder/src/sync.rs`) behind the
//!   `model-check` feature; release builds compile to the plain `std`
//!   atomics with zero overhead.
//! * [`lint`] — the engine behind the `asr-lint` binary: a hand-rolled
//!   Rust lexer (no `syn`, no registry deps) enforcing repo invariants
//!   clippy cannot: `// SAFETY:` comments on every `unsafe` block,
//!   `Ordering::*` and raw-pointer types confined to an allowlisted
//!   module set, no panicking calls in hot-path modules, and
//!   compile-time size/align asserts for every `repr(C)` record.
//!
//! Run the whole suite with `just verify`; see ARCHITECTURE.md
//! ("Verification & static analysis") for the design notes.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lint;
pub mod model;
pub mod shadow;
