//! The engine behind `asr-lint`: a hand-rolled Rust lexer plus four
//! repo-invariant rules that clippy cannot express.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `safety-comment` | every `unsafe` block / `unsafe impl` carries a `// SAFETY:` comment; every `unsafe fn` documents `# Safety` |
//! | `ordering-allowlist` | `Ordering::` tokens appear only in the allowlisted lock-free modules |
//! | `raw-ptr-allowlist` | raw-pointer types (`*const T` / `*mut T`) appear only in the allowlisted unsafe-audited modules |
//! | `no-panic-hot-path` | no `panic!` / `unwrap()` / `expect()` / `unreachable!` / `todo!` / `unimplemented!` in the hot-path modules (executor, session frame loop, store load/validate) |
//! | `repr-c-assert` | every `#[repr(C)]` record in the graph store keeps its compile-time `size_of` / `align_of` asserts |
//!
//! `#[cfg(test)] mod` bodies are excluded (tests may panic freely), and
//! an individual hot-path site can be waived with a justification
//! comment containing `LINT-ALLOW: panic` on or just above the line.
//!
//! The lexer understands line/block (nested) comments, string / raw
//! string / byte string / char literals, and lifetimes — enough to
//! never misread `"unsafe"` in a string or `'a` as a char literal.

use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule name (see the module table).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Files allowed to name `Ordering::*` — the lock-free executor, the
/// facade, the runtime's batch service, the model checker itself, and
/// the serving bench that reads the executor's relaxed counters.
const ORDERING_ALLOW: &[&str] = &[
    "crates/decoder/src/pool.rs",
    "crates/decoder/src/sync.rs",
    "crates/decoder/src/model_check.rs",
    "src/runtime.rs",
    "crates/verify/src/model.rs",
    "crates/verify/src/shadow.rs",
    "crates/bench/src/bin/bench_serving.rs",
];

/// Files allowed to name raw-pointer types — exactly the audited
/// unsafe modules (sharded runtime views, zero-copy store, lane cells,
/// the executor's erased job headers, the SIMD scan, and the checker).
const RAW_PTR_ALLOW: &[&str] = &[
    "crates/decoder/src/pool.rs",
    "crates/decoder/src/parallel.rs",
    "crates/decoder/src/model_check.rs",
    "src/runtime.rs",
    "crates/wfst/src/store.rs",
    "crates/wfst/src/model.rs",
    "crates/verify/src/model.rs",
];

/// Hot-path / error-path modules where panicking calls are forbidden:
/// the executor, the streaming session frame loop, and the store's
/// load/validate path (corrupt images must fail typed, never panic).
const NO_PANIC: &[&str] = &[
    "crates/decoder/src/pool.rs",
    "crates/decoder/src/stream.rs",
    "crates/wfst/src/store.rs",
];

/// Files whose `#[repr(C)]` records must carry size/align asserts (the
/// byte-stable store image format).
const REPR_C_ASSERT: &[&str] = &["crates/wfst/src/store.rs"];

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Lit,
}

#[derive(Debug)]
struct Token {
    line: usize,
    tok: Tok,
}

#[derive(Debug)]
struct Comment {
    line: usize,
    text: String,
}

#[derive(Debug, Default)]
struct Lexed {
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

/// Lexes just enough Rust: tokens with line numbers, comments kept
/// separately, literals opaque.
fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..i].to_string(),
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: source[start..i.min(bytes.len())].to_string(),
                });
            }
            '"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Lit,
                });
            }
            'r' | 'b' if is_raw_string_start(bytes, i) => {
                // r"...", r#"..."#, br"...", b"..." — count hashes.
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
                    j += 1;
                }
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                debug_assert_eq!(bytes.get(j), Some(&b'"'));
                j += 1;
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'\n') => {
                            line += 1;
                            j += 1;
                        }
                        Some(&b'"') => {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                            j += 1;
                        }
                        Some(&b'\\') if hashes == 0 && bytes[i] == b'b' && bytes[i + 1] == b'"' => {
                            // plain byte string: honor escapes
                            j += 2;
                        }
                        Some(_) => j += 1,
                    }
                }
                i = j;
                out.tokens.push(Token {
                    line,
                    tok: Tok::Lit,
                });
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes with a
                // quote after one (possibly escaped) character.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Lit,
                    });
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    i += 3;
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Lit,
                    });
                } else {
                    // Lifetime: consume the quote, the ident follows.
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(source[start..i].to_string()),
                });
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    // Numeric literal (float dots and suffixes eaten).
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Lit,
                });
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            other => {
                out.tokens.push(Token {
                    line,
                    tok: Tok::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // b"..." plain byte string
    bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"')
}

/// Marks token indices inside `#[cfg(test)] mod … { … }` bodies (and
/// `#[cfg(all(test, …))]` variants) so test code is exempt from rules.
fn test_mod_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.tokens;
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok == Tok::Punct('#')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "cfg")
        {
            // Scan the attribute for a `test` ident up to the closing ']'.
            let mut j = i + 3;
            let mut saw_test = false;
            let mut depth = 0usize;
            while let Some(t) = toks.get(j) {
                match &t.tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') if depth == 0 => break,
                    Tok::Punct(']') => depth -= 1,
                    // `test` counts unless negated: `#[cfg(not(test))]`
                    // guards *non*-test code.
                    Tok::Ident(s) if s == "test" => {
                        let negated =
                            j >= 2 && matches!(&toks[j - 2].tok, Tok::Ident(p) if p == "not");
                        if !negated {
                            saw_test = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if saw_test {
                // Skip any further attributes, then expect `mod name {`.
                let mut k = j + 1;
                while matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct('#'))) {
                    let mut depth = 0usize;
                    k += 1;
                    while let Some(t) = toks.get(k) {
                        match &t.tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                if matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "mod") {
                    // Find the opening brace and mark to its close.
                    while k < toks.len() && toks[k].tok != Tok::Punct('{') {
                        k += 1;
                    }
                    let mut depth = 0usize;
                    while let Some(t) = toks.get(k) {
                        match &t.tok {
                            Tok::Punct('{') => depth += 1,
                            Tok::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    mask[k] = true;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        mask[k] = true;
                        k += 1;
                    }
                    i = k;
                }
            }
        }
        i += 1;
    }
    mask
}

fn path_matches(file: &str, list: &[&str]) -> bool {
    list.iter().any(|p| file.ends_with(p))
}

fn comment_near(lexed: &Lexed, lo: usize, hi: usize, needles: &[&str]) -> bool {
    lexed
        .comments
        .iter()
        .any(|c| c.line >= lo && c.line <= hi && needles.iter().any(|n| c.text.contains(n)))
}

/// Lints one file's source; `file` is its repo-relative path.
pub fn lint_source(file: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let mask = test_mod_mask(&lexed);
    let toks = &lexed.tokens;
    let mut findings = Vec::new();

    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        match &t.tok {
            // --- rule: safety-comment -------------------------------
            Tok::Ident(s) if s == "unsafe" => {
                let next = toks.get(i + 1).map(|t| &t.tok);
                let is_fn_kw = matches!(next, Some(Tok::Ident(s)) if s == "fn");
                // `unsafe fn(...)` with no name is a fn-*pointer* type
                // (e.g. a trampoline field), not a declaration.
                let is_fn_decl =
                    is_fn_kw && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(_)));
                if is_fn_kw && !is_fn_decl {
                    continue;
                }
                let (lo, hi, needles): (usize, usize, &[&str]) = if is_fn_decl {
                    // Doc block may sit well above the signature.
                    (t.line.saturating_sub(40), t.line, &["# Safety", "SAFETY:"])
                } else {
                    (t.line.saturating_sub(5), t.line + 1, &["SAFETY:"])
                };
                if !comment_near(&lexed, lo, hi, needles) {
                    let what = match next {
                        Some(Tok::Ident(s)) if s == "fn" => {
                            "`unsafe fn` without a `# Safety` doc section"
                        }
                        Some(Tok::Ident(s)) if s == "impl" => {
                            "`unsafe impl` without a `// SAFETY:` comment"
                        }
                        _ => "`unsafe` block without a `// SAFETY:` comment",
                    };
                    findings.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "safety-comment",
                        message: what.to_string(),
                    });
                }
            }
            // --- rule: ordering-allowlist ---------------------------
            Tok::Ident(s)
                if s == "Ordering"
                    && !path_matches(file, ORDERING_ALLOW)
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':'))) =>
            {
                findings.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "ordering-allowlist",
                    message: "`Ordering::` outside the allowlisted lock-free modules".to_string(),
                });
            }
            // --- rule: raw-ptr-allowlist ----------------------------
            Tok::Punct('*') if !path_matches(file, RAW_PTR_ALLOW) => {
                if matches!(
                    toks.get(i + 1).map(|t| &t.tok),
                    Some(Tok::Ident(s)) if s == "const" || s == "mut"
                ) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "raw-ptr-allowlist",
                        message: "raw-pointer type outside the allowlisted unsafe modules"
                            .to_string(),
                    });
                }
            }
            // --- rule: no-panic-hot-path ----------------------------
            Tok::Ident(s) if path_matches(file, NO_PANIC) => {
                let banged = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
                let called = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                let hit = match s.as_str() {
                    "panic" | "unreachable" | "todo" | "unimplemented" => banged,
                    "unwrap" | "expect" => called,
                    _ => false,
                };
                if hit
                    && !comment_near(
                        &lexed,
                        t.line.saturating_sub(3),
                        t.line,
                        &["LINT-ALLOW: panic"],
                    )
                {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "no-panic-hot-path",
                        message: format!(
                            "`{s}` in a hot-path module (waive with `// LINT-ALLOW: panic — why`)"
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    // --- rule: repr-c-assert -----------------------------------------
    if path_matches(file, REPR_C_ASSERT) {
        findings.extend(check_repr_c(file, &lexed, &mask));
    }
    findings
}

/// Every `#[repr(C…)]` record must be named in both a `size_of` and an
/// `align_of` compile-time assert somewhere in the same file.
fn check_repr_c(file: &str, lexed: &Lexed, mask: &[bool]) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    let mut records: Vec<(usize, String)> = Vec::new();
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let is_repr = toks[i].tok == Tok::Punct('#')
            && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "repr")
            && matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::Punct('(')))
            && matches!(toks.get(i + 4).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "C");
        if !is_repr {
            continue;
        }
        // Find the record name after the attribute(s).
        let mut j = i + 5;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Ident(s) if s == "struct" || s == "union" || s == "enum" => {
                    if let Some(Tok::Ident(name)) = toks.get(j + 1).map(|t| &t.tok) {
                        records.push((toks[j].line, name.clone()));
                    }
                    break;
                }
                _ => j += 1,
            }
        }
    }
    for (line, name) in records {
        for probe in ["size_of", "align_of"] {
            let mentioned = toks.iter().enumerate().any(|(i, t)| {
                matches!(&t.tok, Tok::Ident(s) if s == probe)
                    && toks[i..toks.len().min(i + 8)]
                        .iter()
                        .any(|t| matches!(&t.tok, Tok::Ident(s) if *s == name))
            });
            if !mentioned {
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: "repr-c-assert",
                    message: format!(
                        "`#[repr(C)]` record `{name}` has no compile-time `{probe}` assert"
                    ),
                });
            }
        }
    }
    findings
}

/// Source directories scanned relative to the repo root; vendored
/// shims, integration tests, benches and examples are exempt.
fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() && path.file_name().is_some_and(|n| n != "shims") {
                stack.push(path.join("src"));
            }
        }
    }
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Lints the whole repo rooted at `root`; returns every finding.
pub fn lint_repo(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for path in collect_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        findings.extend(lint_source(&rel, &source));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(file: &str, src: &str) -> Vec<&'static str> {
        lint_source(file, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let bad = "fn f(p: *const u8) { let _ = unsafe { *p }; }";
        assert_eq!(rules("src/runtime.rs", bad), vec!["safety-comment"]);
        let good =
            "fn f(p: *const u8) {\n    // SAFETY: caller pins p.\n    let _ = unsafe { *p };\n}";
        assert!(rules("src/runtime.rs", good).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc_section() {
        let good = "/// Does things.\n///\n/// # Safety\n///\n/// Caller must pin `p`.\npub unsafe fn f(p: *const u8) {}";
        assert!(rules("src/runtime.rs", good).is_empty());
        let bad = "pub unsafe fn f(p: *const u8) {}";
        assert_eq!(rules("src/runtime.rs", bad), vec!["safety-comment"]);
    }

    #[test]
    fn unsafe_fn_pointer_types_are_not_declarations() {
        let src = "struct H { run: unsafe fn(*const u8, usize) }";
        assert!(rules("src/runtime.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let src = "// unsafe unsafe unsafe\nfn f() { let _ = \"unsafe { }\"; }";
        assert!(rules("src/lib.rs", src).is_empty());
    }

    #[test]
    fn ordering_confined_to_allowlist() {
        let src = "use std::sync::atomic::Ordering;\nfn f() { let _ = Ordering::SeqCst; }";
        assert_eq!(
            rules("crates/acoustic/src/lib.rs", src),
            vec!["ordering-allowlist"]
        );
        assert!(rules("crates/decoder/src/pool.rs", src).is_empty());
    }

    #[test]
    fn raw_pointers_confined_to_allowlist() {
        let src = "fn f(x: *mut u8) {}";
        assert_eq!(
            rules("crates/acoustic/src/lib.rs", src),
            vec!["raw-ptr-allowlist"]
        );
        assert!(rules("crates/wfst/src/store.rs", src).is_empty());
    }

    #[test]
    fn hot_path_panics_flagged_and_waivable() {
        let bad = "fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(
            rules("crates/decoder/src/stream.rs", bad),
            vec!["no-panic-hot-path"]
        );
        let waived =
            "fn f(x: Option<u8>) {\n    // LINT-ALLOW: panic — impossible by construction.\n    x.unwrap();\n}";
        assert!(rules("crates/decoder/src/stream.rs", waived).is_empty());
        // unwrap_or_else is not unwrap.
        let ok = "fn f(x: Result<u8, u8>) { x.unwrap_or_else(|e| e); }";
        assert!(rules("crates/decoder/src/stream.rs", ok).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); let _ = unsafe { std::mem::zeroed::<u8>() }; }\n}";
        assert!(rules("crates/decoder/src/pool.rs", src).is_empty());
    }

    #[test]
    fn repr_c_records_need_both_asserts() {
        let bad = "#[repr(C)]\nstruct Rec { a: u32 }";
        let got = rules("crates/wfst/src/store.rs", bad);
        assert_eq!(got, vec!["repr-c-assert", "repr-c-assert"]);
        let good = "#[repr(C)]\nstruct Rec { a: u32 }\nconst _: () = assert!(std::mem::size_of::<Rec>() == 4);\nconst _: () = assert!(std::mem::align_of::<Rec>() == 4);";
        assert!(rules("crates/wfst/src/store.rs", good).is_empty());
    }

    #[test]
    fn lifetimes_do_not_derail_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { let _ = 'x'; let _ = '\\n'; }";
        assert!(rules("src/lib.rs", src).is_empty());
    }
}
