//! A mini-loom stateless model checker: deterministic DFS over every
//! interleaving (and every admissible weak-memory read) of a small
//! multi-threaded harness.
//!
//! # How a check runs
//!
//! [`check`] executes the harness closure over and over. Each execution
//! runs the harness threads as real OS threads, but a cooperative
//! handshake (one shared mutex + condvar) guarantees **exactly one
//! thread runs at a time**: every [`shadow`](crate::shadow) operation is
//! a *scheduling point* where the active thread performs its memory
//! effect under the model lock and then hands control to whichever
//! thread the explorer chooses next. Nondeterminism — which thread runs,
//! which store a load reads, which sleeper a `notify_one` wakes — is
//! recorded on a decision stack; after each execution the explorer
//! backtracks depth-first to the deepest decision with an untried
//! alternative and replays. Exploration terminates when the stack
//! empties, i.e. every behavior within the bounds has been visited.
//!
//! # The memory model
//!
//! A pragmatic C11 approximation, strong enough to pass the correct
//! Chase–Lev orderings and weak enough to expose missing fences:
//!
//! * Every thread carries a vector clock; every store appends to its
//!   location's history a `(value, writer, writer-time, sync-clock)`
//!   event. `Release` stores carry the writer's full clock; `Relaxed`
//!   stores carry only the clock captured by the writer's last `Release`
//!   fence (empty if none).
//! * A load may read any store that per-thread coherence and
//!   happens-before admit: never older than a store the thread already
//!   observed at that location, and never a store hidden by a
//!   happens-before-later one. Each admissible store is a DFS branch.
//!   `Acquire` loads join the store's sync clock into the reader's
//!   clock; `Relaxed` loads bank it for a later `Acquire` fence.
//! * RMWs read the latest store in modification order (they must be
//!   adjacent to their own store) and continue C++20 release sequences
//!   (an RMW's sync clock joins the previous store's). A failed
//!   `compare_exchange` reads the latest store; weak and strong CAS are
//!   modeled identically (no spurious failures).
//! * `SeqCst` fences and operations additionally join the thread clock
//!   with a global SC clock in **both** directions — the total order all
//!   SC ops agree on. This is what arbitrates the Chase–Lev pop/steal
//!   fence pair while still letting a `Relaxed`-where-`Release`-needed
//!   bug read stale slot values.
//!
//! # Bounds
//!
//! State space is kept finite by [`Config::preemption_bound`] (only
//! switches *away from a runnable thread* count; switches at blocking or
//! after [`yield_now`] are free), [`Config::max_steps`] per execution
//! (a livelock backstop), and [`Config::max_executions`] overall.
//! Blocking is modeled exactly: when every live thread is blocked the
//! execution fails with a deadlock report — which is precisely what a
//! lost eventcount wakeup looks like.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as RealOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Bounds for one [`check`] run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Maximum number of *preemptive* context switches per execution:
    /// switches away from a thread that could have continued. Blocking
    /// switches and post-yield switches are free. 2–3 suffices for the
    /// classic two-thread races; raising it grows the space quickly.
    pub preemption_bound: usize,
    /// Hard cap on executions; exceeding it panics (the harness is too
    /// big for exhaustive exploration — shrink it or the bound).
    pub max_executions: usize,
    /// Scheduling points allowed in a single execution before it is
    /// reported as a livelock.
    pub max_steps: usize,
    /// Maximum threads a harness may have alive at once (including the
    /// main thread).
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_executions: 200_000,
            max_steps: 4_000,
            max_threads: 4,
        }
    }
}

/// Outcome of an exhaustive exploration (see [`explore`]).
#[derive(Debug)]
pub struct Outcome {
    /// Executions visited before completing or failing.
    pub executions: usize,
    /// `Some(report)` if any execution failed — assertion, deadlock,
    /// or livelock — with the interleaving trace that produced it.
    pub failure: Option<String>,
}

/// Sentinel panic payload used to unwind harness threads when the
/// execution is aborted (failure found elsewhere); never a failure.
struct Abort;

/// One recorded nondeterministic choice.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    total: usize,
}

/// A vector clock over thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: usize, value: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = value;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One store event in a location's modification order.
#[derive(Debug, Clone)]
struct StoreEvent {
    value: u64,
    writer: usize,
    /// The writer's own clock component at the store; a thread with
    /// `clock[writer] >= writer_time` is happens-after this store.
    writer_time: u64,
    /// Clock an acquire-reader synchronizes with.
    sync: VClock,
}

/// An atomic location's full history plus per-thread coherence floors.
#[derive(Debug)]
struct Location {
    stores: Vec<StoreEvent>,
    /// Per-thread index of the newest store this thread has observed
    /// (read from or written); coherence forbids reading older ones.
    last_seen: Vec<usize>,
    /// Per-thread store index of the thread's most recent access here.
    /// A repeat load may not re-read the same *stale* store: stores
    /// become visible in finite time (the C11 progress guarantee,
    /// applied at its strongest), which is what lets `yield_now` spin
    /// loops terminate instead of branching on the stale value forever.
    last_read: Vec<Option<usize>>,
}

/// Shadow mutex bookkeeping.
#[derive(Debug)]
struct MutexState {
    held_by: Option<usize>,
    /// Release clock of the last unlock; joined by the next lock.
    clock: VClock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    status: Status,
    clock: VClock,
    /// Clock captured by the last `Release` fence; relaxed stores
    /// publish this instead of the live clock.
    pending_release: VClock,
    /// Sync clocks banked by relaxed loads, claimed by an `Acquire`
    /// fence.
    pending_acquire: VClock,
    /// Set by [`yield_now`]; the scheduler must run someone else if it
    /// can, and switching away is free.
    yielded: bool,
}

/// Everything the explorer mutates during one execution; guarded by the
/// single handshake mutex so the active thread owns it exclusively.
struct ExecState {
    cfg: Config,
    threads: Vec<ThreadState>,
    active: Option<usize>,
    preemptions: usize,
    steps: usize,
    abort: bool,
    failure: Option<String>,
    decisions: Vec<Decision>,
    /// Next index into `decisions` (replay cursor).
    cursor: usize,
    locations: Vec<Location>,
    mutexes: Vec<MutexState>,
    /// Waiters per condvar id, in wait order (notify_one picks by
    /// decision among them).
    cond_waiters: Vec<VecDeque<usize>>,
    /// Global SeqCst clock (the SC total order, as a clock).
    sc_clock: VClock,
    trace: Vec<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One execution's shared handshake: the state, the condvar every
/// thread (and the controller) waits on, and a lock-free abort flag so
/// shadow ops can fall back cheaply during teardown.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    aborted: AtomicBool,
    /// Monotone id of this execution, used by shadow cells to detect
    /// registrations left over from a previous execution.
    seq: u64,
}

impl std::fmt::Debug for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Execution").field("seq", &self.seq).finish()
    }
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Whether the calling thread is currently inside a model execution.
pub fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

static EXEC_SEQ: AtomicU64 = AtomicU64::new(1);

/// A registration cell embedded in each shadow primitive: which
/// execution it was registered under and the id it got. Real atomics
/// because the shadow types must stay `Sync`; only the single active
/// model thread ever writes them.
#[derive(Debug)]
pub(crate) struct RegCell {
    seq: AtomicU64,
    id: AtomicUsize,
}

impl RegCell {
    pub(crate) const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            id: AtomicUsize::new(0),
        }
    }
}

impl ExecState {
    fn fail(&mut self, exec: &Execution, msg: &str) -> ! {
        if self.failure.is_none() {
            let mut report = format!("model check failed: {msg}\n--- trace ---\n");
            for line in &self.trace {
                report.push_str(line);
                report.push('\n');
            }
            self.failure = Some(report);
        }
        self.abort = true;
        exec.aborted.store(true, RealOrdering::SeqCst);
        exec.cv.notify_all();
        std::panic::panic_any(Abort);
    }

    /// Takes (or replays) the next decision among `total` alternatives.
    fn decide(&mut self, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        let at = self.cursor;
        self.cursor += 1;
        if at < self.decisions.len() {
            debug_assert_eq!(
                self.decisions[at].total, total,
                "replay divergence: decision {at} fan-out changed"
            );
            self.decisions[at].chosen
        } else {
            self.decisions.push(Decision { chosen: 0, total });
            0
        }
    }

    /// Picks the next thread to activate. `me` is the thread at the
    /// scheduling point (it may have just blocked or finished).
    fn schedule(&mut self, exec: &Execution, me: usize) {
        let runnable: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.threads[t].status == Status::Runnable)
            .collect();
        if runnable.is_empty() {
            if self.threads.iter().all(|t| t.status == Status::Finished) {
                self.active = None;
                exec.cv.notify_all();
                return;
            }
            let blocked: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(i, t)| format!("t{i}:{:?}", t.status))
                .collect();
            self.fail(
                exec,
                &format!(
                    "deadlock: every live thread is blocked ({}) — lost wakeup?",
                    blocked.join(", ")
                ),
            );
        }
        // Prefer threads that have not just yielded; a yielded thread
        // only runs again when it is the sole runnable one.
        let fresh: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&t| !self.threads[t].yielded)
            .collect();
        let pool = if fresh.is_empty() { runnable } else { fresh };
        let me_continues = pool.contains(&me);
        let candidates: Vec<usize> = if me_continues {
            if self.preemptions >= self.cfg.preemption_bound {
                vec![me]
            } else {
                // `me` first so choice 0 is "continue", keeping the
                // baseline execution mostly sequential.
                std::iter::once(me)
                    .chain(pool.iter().copied().filter(|&t| t != me))
                    .collect()
            }
        } else {
            pool
        };
        let next = candidates[self.decide(candidates.len())];
        if me_continues && next != me {
            self.preemptions += 1;
        }
        self.threads[next].yielded = false;
        self.active = Some(next);
        exec.cv.notify_all();
    }
}

impl Execution {
    fn wait_for_turn<'a>(
        &'a self,
        me: usize,
        mut st: MutexGuard<'a, ExecState>,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == Some(me) {
                return st;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `op` as one atomic scheduling point for thread `me`, then
    /// hands control to the explorer's next pick.
    fn op<R>(&self, me: usize, op: impl FnOnce(&mut ExecState, &Execution) -> R) -> R {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        debug_assert_eq!(st.active, Some(me), "op from a non-active thread");
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let cap = st.cfg.max_steps;
            st.fail(self, &format!("step cap {cap} exceeded — livelock?"));
        }
        let out = op(&mut st, self);
        st.schedule(self, me);
        let st = self.wait_for_turn(me, st);
        drop(st);
        out
    }

    /// Registers (or looks up) a shadow primitive for this execution.
    /// `make` appends the model-side state and returns its id.
    fn register(
        &self,
        cell: &RegCell,
        st: &mut ExecState,
        make: impl FnOnce(&mut ExecState) -> usize,
    ) -> usize {
        if cell.seq.load(RealOrdering::Relaxed) == self.seq {
            return cell.id.load(RealOrdering::Relaxed);
        }
        let id = make(st);
        cell.id.store(id, RealOrdering::Relaxed);
        cell.seq.store(self.seq, RealOrdering::Relaxed);
        id
    }

    fn location_id(&self, cell: &RegCell, st: &mut ExecState, init: u64) -> usize {
        let threads = self.max_threads_hint(st);
        self.register(cell, st, |st| {
            st.locations.push(Location {
                stores: vec![StoreEvent {
                    value: init,
                    writer: 0,
                    // `writer_time` 0 makes the initial store
                    // happens-before every load.
                    writer_time: 0,
                    sync: VClock::default(),
                }],
                last_seen: vec![0; threads],
                last_read: vec![None; threads],
            });
            st.locations.len() - 1
        })
    }

    fn max_threads_hint(&self, st: &ExecState) -> usize {
        st.cfg.max_threads.max(st.threads.len())
    }
}

// ---------------------------------------------------------------------
// Shadow-facing operations (crate-internal API used by `crate::shadow`).
// ---------------------------------------------------------------------

/// Effective orderings split into their acquire/release/SC components.
fn is_acquire(o: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(o, Acquire | AcqRel | SeqCst)
}

fn is_release(o: std::sync::atomic::Ordering) -> bool {
    use std::sync::atomic::Ordering::*;
    matches!(o, Release | AcqRel | SeqCst)
}

fn is_seqcst(o: std::sync::atomic::Ordering) -> bool {
    matches!(o, std::sync::atomic::Ordering::SeqCst)
}

fn sc_sync(st: &mut ExecState, me: usize) {
    let mut sc = std::mem::take(&mut st.sc_clock);
    st.threads[me].clock.join(&sc);
    sc.join(&st.threads[me].clock);
    st.sc_clock = sc;
}

/// Performs a load; branches over every admissible store.
pub(crate) fn atomic_load(
    cell: &RegCell,
    init: u64,
    order: std::sync::atomic::Ordering,
) -> Option<u64> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        return None;
    }
    Some(exec.op(me, |st, exec| {
        let loc = exec.location_id(cell, st, init);
        if is_seqcst(order) {
            sc_sync(st, me);
        }
        // Coherence + happens-before floor: newest store this thread
        // has observed here, or that happens-before this load.
        let mut floor = st.locations[loc].last_seen[me];
        for (i, s) in st.locations[loc].stores.iter().enumerate() {
            if st.threads[me].clock.get(s.writer) >= s.writer_time {
                floor = floor.max(i);
            }
        }
        let newest = st.locations[loc].stores.len() - 1;
        // Progress: a repeat load may not re-read the same stale store
        // (see `Location::last_read`).
        if let Some(k) = st.locations[loc].last_read[me] {
            if k < newest {
                floor = floor.max(k + 1);
            }
        }
        let span = newest - floor + 1;
        // Choice 0 reads the newest store (the SC-like baseline);
        // later choices read progressively staler admissible stores.
        let pick = newest - st.decide(span);
        let (value, sync) = {
            let s = &st.locations[loc].stores[pick];
            (s.value, s.sync.clone())
        };
        st.locations[loc].last_seen[me] = st.locations[loc].last_seen[me].max(pick);
        st.locations[loc].last_read[me] = Some(pick);
        if is_acquire(order) {
            st.threads[me].clock.join(&sync);
        } else {
            st.threads[me].pending_acquire.join(&sync);
        }
        if is_seqcst(order) {
            sc_sync(st, me);
        }
        st.trace.push(format!(
            "t{me} load L{loc} {order:?} -> {value} (store #{pick})"
        ));
        value
    }))
}

/// Appends a store to the location's modification order.
pub(crate) fn atomic_store(
    cell: &RegCell,
    init: u64,
    value: u64,
    order: std::sync::atomic::Ordering,
) -> Option<()> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        return None;
    }
    exec.op(me, |st, exec| {
        let loc = exec.location_id(cell, st, init);
        if is_seqcst(order) {
            sc_sync(st, me);
        }
        push_store(st, me, loc, value, order, false);
        st.trace
            .push(format!("t{me} store L{loc} {order:?} <- {value}"));
    });
    Some(())
}

/// Shared store bookkeeping; `rmw` continues the release sequence.
fn push_store(
    st: &mut ExecState,
    me: usize,
    loc: usize,
    value: u64,
    order: std::sync::atomic::Ordering,
    rmw: bool,
) {
    let t = st.threads[me].clock.get(me) + 1;
    st.threads[me].clock.set(me, t);
    let mut sync = if is_release(order) {
        st.threads[me].clock.clone()
    } else {
        st.threads[me].pending_release.clone()
    };
    if rmw {
        // C++20 release sequence: an RMW extends the sequence headed by
        // the store it read from, whatever its own ordering.
        let prev = st.locations[loc].stores.last().expect("initial store");
        sync.join(&prev.sync.clone());
    }
    if is_seqcst(order) {
        sc_sync(st, me);
        sync.join(&st.threads[me].clock);
    }
    let idx = st.locations[loc].stores.len();
    st.locations[loc].stores.push(StoreEvent {
        value,
        writer: me,
        writer_time: t,
        sync,
    });
    st.locations[loc].last_seen[me] = idx;
    st.locations[loc].last_read[me] = Some(idx);
}

/// Read-modify-write: reads the latest store (RMWs are adjacent to
/// their own store in modification order), applies `f`, appends.
pub(crate) fn atomic_rmw(
    cell: &RegCell,
    init: u64,
    order: std::sync::atomic::Ordering,
    f: impl FnOnce(u64) -> u64,
) -> Option<u64> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        return None;
    }
    Some(exec.op(me, |st, exec| {
        let loc = exec.location_id(cell, st, init);
        if is_seqcst(order) {
            sc_sync(st, me);
        }
        let (old, sync) = {
            let s = st.locations[loc].stores.last().expect("initial store");
            (s.value, s.sync.clone())
        };
        if is_acquire(order) {
            st.threads[me].clock.join(&sync);
        } else {
            st.threads[me].pending_acquire.join(&sync);
        }
        let new = f(old);
        push_store(st, me, loc, new, order, true);
        st.trace
            .push(format!("t{me} rmw L{loc} {order:?} {old} -> {new}"));
        old
    }))
}

/// Compare-exchange: success is an RMW on the latest store; failure is
/// a load of the latest store with the failure ordering. Weak and
/// strong are identical (no spurious failures).
pub(crate) fn atomic_cas(
    cell: &RegCell,
    init: u64,
    expected: u64,
    new: u64,
    success: std::sync::atomic::Ordering,
    failure: std::sync::atomic::Ordering,
) -> Option<Result<u64, u64>> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        return None;
    }
    Some(exec.op(me, |st, exec| {
        let loc = exec.location_id(cell, st, init);
        let latest = {
            let s = st.locations[loc].stores.last().expect("initial store");
            (s.value, s.sync.clone())
        };
        if latest.0 == expected {
            if is_seqcst(success) {
                sc_sync(st, me);
            }
            if is_acquire(success) {
                st.threads[me].clock.join(&latest.1);
            } else {
                st.threads[me].pending_acquire.join(&latest.1);
            }
            push_store(st, me, loc, new, success, true);
            st.trace
                .push(format!("t{me} cas L{loc} {expected}->{new} ok"));
            Ok(expected)
        } else {
            if is_seqcst(failure) {
                sc_sync(st, me);
            }
            if is_acquire(failure) {
                st.threads[me].clock.join(&latest.1);
            } else {
                st.threads[me].pending_acquire.join(&latest.1);
            }
            let newest = st.locations[loc].stores.len() - 1;
            st.locations[loc].last_seen[me] = st.locations[loc].last_seen[me].max(newest);
            st.locations[loc].last_read[me] = Some(newest);
            st.trace.push(format!(
                "t{me} cas L{loc} exp {expected} found {} fail",
                latest.0
            ));
            Err(latest.0)
        }
    }))
}

/// A memory fence with the given ordering.
pub(crate) fn fence(order: std::sync::atomic::Ordering) -> Option<()> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        return None;
    }
    exec.op(me, |st, _exec| {
        if is_acquire(order) {
            let banked = std::mem::take(&mut st.threads[me].pending_acquire);
            st.threads[me].clock.join(&banked);
        }
        if is_seqcst(order) {
            sc_sync(st, me);
        }
        if is_release(order) {
            st.threads[me].pending_release = st.threads[me].clock.clone();
        }
        st.trace.push(format!("t{me} fence {order:?}"));
    });
    Some(())
}

/// Mutex lock: blocks (in model time) while held; acquire edge from the
/// last unlock. Returns `None` outside a model run.
pub(crate) fn mutex_lock(cell: &RegCell) -> Option<()> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        std::panic::panic_any(Abort);
    }
    loop {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let id = exec.register(cell, &mut st, |st| {
            st.mutexes.push(MutexState {
                held_by: None,
                clock: VClock::default(),
            });
            st.mutexes.len() - 1
        });
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let cap = st.cfg.max_steps;
            st.fail(&exec, &format!("step cap {cap} exceeded — livelock?"));
        }
        if st.mutexes[id].held_by.is_none() {
            st.mutexes[id].held_by = Some(me);
            let clock = st.mutexes[id].clock.clone();
            st.threads[me].clock.join(&clock);
            st.trace.push(format!("t{me} lock M{id}"));
            st.schedule(&exec, me);
            let st = exec.wait_for_turn(me, st);
            drop(st);
            return Some(());
        }
        st.threads[me].status = Status::BlockedMutex(id);
        st.trace.push(format!("t{me} block on M{id}"));
        st.schedule(&exec, me);
        let st = exec.wait_for_turn(me, st);
        drop(st);
        // Woken runnable: loop and retry the acquisition.
    }
}

/// Mutex unlock: release edge to the next lock; wakes blocked lockers.
/// A no-op during abort teardown so guard drops never double-panic.
pub(crate) fn mutex_unlock(cell: &RegCell) {
    let Some((exec, me)) = current() else { return };
    if exec.aborted.load(RealOrdering::Relaxed) {
        return;
    }
    exec.op(me, |st, exec| {
        let id = exec.register(cell, st, |st| {
            st.mutexes.push(MutexState {
                held_by: None,
                clock: VClock::default(),
            });
            st.mutexes.len() - 1
        });
        debug_assert_eq!(st.mutexes[id].held_by, Some(me), "unlock by non-holder");
        st.mutexes[id].held_by = None;
        let clock = st.threads[me].clock.clone();
        st.mutexes[id].clock.join(&clock);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(id) {
                st.threads[t].status = Status::Runnable;
            }
        }
        st.trace.push(format!("t{me} unlock M{id}"));
    });
}

/// Condvar wait: atomically releases the mutex and blocks until
/// notified, then reacquires. The caller passes both registration
/// cells; the mutex must be held by the calling thread.
pub(crate) fn condvar_wait(cv_cell: &RegCell, mutex_cell: &RegCell) -> Option<()> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        std::panic::panic_any(Abort);
    }
    {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let cv_id = exec.register(cv_cell, &mut st, |st| {
            st.cond_waiters.push(VecDeque::new());
            st.cond_waiters.len() - 1
        });
        let m_id = exec.register(mutex_cell, &mut st, |st| {
            st.mutexes.push(MutexState {
                held_by: None,
                clock: VClock::default(),
            });
            st.mutexes.len() - 1
        });
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let cap = st.cfg.max_steps;
            st.fail(&exec, &format!("step cap {cap} exceeded — livelock?"));
        }
        debug_assert_eq!(st.mutexes[m_id].held_by, Some(me), "wait without the lock");
        // Atomically: release the mutex, enqueue as a waiter, block.
        st.mutexes[m_id].held_by = None;
        let clock = st.threads[me].clock.clone();
        st.mutexes[m_id].clock.join(&clock);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(m_id) {
                st.threads[t].status = Status::Runnable;
            }
        }
        st.cond_waiters[cv_id].push_back(me);
        st.threads[me].status = Status::BlockedCondvar(cv_id);
        st.trace
            .push(format!("t{me} wait C{cv_id} (released M{m_id})"));
        st.schedule(&exec, me);
        let st = exec.wait_for_turn(me, st);
        drop(st);
    }
    // Notified: reacquire the mutex through the normal blocking path.
    mutex_lock(mutex_cell)
}

/// Condvar notify. With several waiters, `notify_one` branches over
/// which waiter wakes.
pub(crate) fn condvar_notify(cell: &RegCell, all: bool) -> Option<()> {
    let (exec, me) = current()?;
    if exec.aborted.load(RealOrdering::Relaxed) {
        return None;
    }
    exec.op(me, |st, exec| {
        let id = exec.register(cell, st, |st| {
            st.cond_waiters.push(VecDeque::new());
            st.cond_waiters.len() - 1
        });
        if all {
            while let Some(t) = st.cond_waiters[id].pop_front() {
                st.threads[t].status = Status::Runnable;
            }
            st.trace.push(format!("t{me} notify_all C{id}"));
        } else if !st.cond_waiters[id].is_empty() {
            let pick = st.decide(st.cond_waiters[id].len());
            let t = st.cond_waiters[id].remove(pick).expect("picked waiter");
            st.threads[t].status = Status::Runnable;
            st.trace.push(format!("t{me} notify_one C{id} -> t{t}"));
        } else {
            st.trace
                .push(format!("t{me} notify_one C{id} (no waiters)"));
        }
    });
    Some(())
}

/// Marks the calling thread as yielded: the scheduler must run another
/// thread if any can run, and the switch is free. Spin loops in
/// harnesses must call this to stay explorable.
pub fn yield_now() {
    let Some((exec, me)) = current() else {
        std::thread::yield_now();
        return;
    };
    if exec.aborted.load(RealOrdering::Relaxed) {
        std::panic::panic_any(Abort);
    }
    exec.op(me, |st, _exec| {
        st.threads[me].yielded = true;
        st.trace.push(format!("t{me} yield"));
    });
}

/// Handle for a thread spawned with [`spawn`] inside a check.
#[derive(Debug)]
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Blocks (in model time) until the thread finishes; inherits its
    /// final clock (the usual join happens-before edge).
    pub fn join(self) {
        let (exec, me) = current().expect("join outside a model run");
        loop {
            if exec.aborted.load(RealOrdering::Relaxed) {
                std::panic::panic_any(Abort);
            }
            let mut st = exec.lock();
            if st.abort {
                drop(st);
                std::panic::panic_any(Abort);
            }
            st.steps += 1;
            if st.steps > st.cfg.max_steps {
                let cap = st.cfg.max_steps;
                st.fail(&exec, &format!("step cap {cap} exceeded — livelock?"));
            }
            if st.threads[self.tid].status == Status::Finished {
                let clock = st.threads[self.tid].clock.clone();
                st.threads[me].clock.join(&clock);
                st.trace.push(format!("t{me} joined t{}", self.tid));
                st.schedule(&exec, me);
                let st = exec.wait_for_turn(me, st);
                drop(st);
                return;
            }
            st.threads[me].status = Status::BlockedJoin(self.tid);
            st.trace.push(format!("t{me} block join t{}", self.tid));
            st.schedule(&exec, me);
            let st = exec.wait_for_turn(me, st);
            drop(st);
        }
    }
}

/// Spawns a harness thread inside the current check. The child inherits
/// the parent's clock (the spawn happens-before edge) and is scheduled
/// like any other thread.
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (exec, me) = current().expect("spawn outside a model run");
    if exec.aborted.load(RealOrdering::Relaxed) {
        std::panic::panic_any(Abort);
    }
    let tid = {
        let mut st = exec.lock();
        if st.abort {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let tid = st.threads.len();
        if tid >= st.cfg.max_threads {
            let cap = st.cfg.max_threads;
            st.fail(&exec, &format!("thread cap {cap} exceeded"));
        }
        let mut clock = st.threads[me].clock.clone();
        clock.set(tid, 1);
        st.threads.push(ThreadState {
            status: Status::Runnable,
            clock,
            pending_release: VClock::default(),
            pending_acquire: VClock::default(),
            yielded: false,
        });
        st.trace.push(format!("t{me} spawn t{tid}"));
        let child_exec = Arc::clone(&exec);
        let handle = std::thread::Builder::new()
            .name(format!("model-t{tid}"))
            .spawn(move || thread_main(child_exec, tid, f))
            .expect("spawn model thread");
        st.os_handles.push(handle);
        // The spawn itself is a scheduling point.
        st.schedule(&exec, me);
        let st = exec.wait_for_turn(me, st);
        drop(st);
        tid
    };
    JoinHandle { tid }
}

/// Body of every harness OS thread: wait to be scheduled, run the
/// closure, record any failure, retire.
fn thread_main(exec: Arc<Execution>, tid: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    {
        let st = exec.lock();
        // First activation; aborts unwind out through the catch below.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let st = exec.wait_for_turn(tid, st);
            drop(st);
        }));
        if outcome.is_err() {
            retire(&exec, tid, None);
            CTX.with(|c| *c.borrow_mut() = None);
            return;
        }
    }
    let outcome = catch_unwind(AssertUnwindSafe(f));
    let failure = match outcome {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<Abort>().is_some() {
                None
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("harness panicked with a non-string payload".to_string())
            }
        }
    };
    retire(&exec, tid, failure);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Marks a thread finished, records its failure (if any), wakes its
/// joiners, and hands control onward.
fn retire(exec: &Execution, tid: usize, failure: Option<String>) {
    let mut st = exec.lock();
    if let Some(msg) = failure {
        if st.failure.is_none() {
            let mut report = format!("model check failed: t{tid} panicked: {msg}\n--- trace ---\n");
            for line in &st.trace {
                report.push_str(line);
                report.push('\n');
            }
            st.failure = Some(report);
        }
        st.abort = true;
        exec.aborted.store(true, RealOrdering::SeqCst);
    }
    st.threads[tid].status = Status::Finished;
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::BlockedJoin(tid) {
            st.threads[t].status = Status::Runnable;
        }
    }
    if st.abort {
        st.active = None;
        exec.cv.notify_all();
        return;
    }
    // Not a failure path: pick whoever runs next (panics only if a
    // genuine deadlock remains, which `catch_unwind` below absorbs).
    let _ = catch_unwind(AssertUnwindSafe(|| st.schedule(exec, tid)));
}

/// Runs one execution with the given replay stack; returns the updated
/// stack and any failure.
fn run_one(
    cfg: Config,
    f: &(dyn Fn() + Sync),
    stack: Vec<Decision>,
) -> (Vec<Decision>, Option<String>) {
    let exec = Arc::new(Execution {
        state: Mutex::new(ExecState {
            cfg,
            threads: vec![ThreadState {
                status: Status::Runnable,
                clock: {
                    let mut c = VClock::default();
                    c.set(0, 1);
                    c
                },
                pending_release: VClock::default(),
                pending_acquire: VClock::default(),
                yielded: false,
            }],
            active: Some(0),
            preemptions: 0,
            steps: 0,
            abort: false,
            failure: None,
            decisions: stack,
            cursor: 0,
            locations: Vec::new(),
            mutexes: Vec::new(),
            cond_waiters: Vec::new(),
            sc_clock: VClock::default(),
            trace: Vec::new(),
            os_handles: Vec::new(),
        }),
        cv: Condvar::new(),
        aborted: AtomicBool::new(false),
        seq: EXEC_SEQ.fetch_add(1, RealOrdering::Relaxed),
    });
    // Thread 0 runs the harness closure itself; a scoped thread lets
    // it borrow `f` for just this execution.
    let exec0 = Arc::clone(&exec);
    std::thread::scope(|scope| {
        scope.spawn(move || thread_main(exec0, 0, f));
    });
    // Wait until every model thread has retired (spawned threads may
    // outlive thread 0).
    {
        let mut st = exec.lock();
        while !(st.threads.iter().all(|t| t.status == Status::Finished)) {
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    let handles = {
        let mut st = exec.lock();
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let mut st = exec.lock();
    (std::mem::take(&mut st.decisions), st.failure.take())
}

/// Exhaustively explores the harness under `cfg`; returns how many
/// executions ran and the first failure found (exploration stops at the
/// first failing interleaving).
pub fn explore(cfg: Config, f: impl Fn() + Sync) -> Outcome {
    let mut stack: Vec<Decision> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        assert!(
            executions <= cfg.max_executions,
            "model check exceeded {} executions — shrink the harness or the bounds",
            cfg.max_executions
        );
        let (new_stack, failure) = run_one(cfg, &f, stack);
        stack = new_stack;
        if failure.is_some() {
            return Outcome {
                executions,
                failure,
            };
        }
        // Depth-first backtrack to the deepest untried alternative.
        loop {
            match stack.last_mut() {
                None => {
                    return Outcome {
                        executions,
                        failure: None,
                    }
                }
                Some(d) if d.chosen + 1 < d.total => {
                    d.chosen += 1;
                    break;
                }
                Some(_) => {
                    stack.pop();
                }
            }
        }
    }
}

/// Checks the harness: explores exhaustively and panics with the
/// counterexample trace if any interleaving fails.
pub fn check(cfg: Config, f: impl Fn() + Sync) -> usize {
    let outcome = explore(cfg, f);
    if let Some(report) = outcome.failure {
        panic!("{report}");
    }
    outcome.executions
}

/// Checks a harness that is *expected* to fail (a seeded bug): panics
/// if exploration finds no failing interleaving, otherwise returns the
/// failure report. Keeps the checker itself from silently rotting.
pub fn check_expect_failure(cfg: Config, f: impl Fn() + Sync) -> String {
    let outcome = explore(cfg, f);
    outcome.failure.unwrap_or_else(|| {
        panic!(
            "seeded bug was NOT caught in {} executions — the model checker has rotted",
            outcome.executions
        )
    })
}
